//! Offline property-testing shim.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! range strategies over numeric primitives, `proptest::collection::vec`,
//! tuple strategies, `prop_map`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert!` / `prop_assert_eq!`.
//! Cases are generated from a deterministic RNG seeded by the test name, so
//! failures reproduce across runs. Shrinking is not implemented — a failing
//! case reports its index and message instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Deterministic per-test RNG: FNV-1a of the test name seeds the stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirrors proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the same value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; failure aborts only the current case loop with
/// a message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// The property-test declaration macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expand each test fn in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property `{}` failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u32..10, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn tuples_generate((a, b) in (0u64..5, 5u64..10)) {
            prop_assert!(a < 5 && (5..10).contains(&b), "got {} {}", a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let sa = crate::Strategy::generate(&(0u64..1000), &mut a);
        let sb = crate::Strategy::generate(&(0u64..1000), &mut b);
        assert_eq!(sa, sb);
    }
}
