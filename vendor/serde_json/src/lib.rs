//! Offline JSON text layer for the simplified serde model in `vendor/serde`:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over [`serde::Value`].
//!
//! Emits standard JSON (escaped strings, `null` for `None`, externally-tagged
//! enums from the derive macros), so cache files written by this shim remain
//! readable by real serde_json and vice versa.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialization/deserialization error, mirroring `serde_json::Error`.
pub use serde::Error as JsonError;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("3.0" not "3").
            out.push_str(&format!("{:.1}", f));
        } else {
            out.push_str(&format!("{}", f));
        }
    } else {
        // JSON has no NaN/inf; real serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                c as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| *c as char),
                self.i
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?}",
                                other.map(|c| *c as char)
                            )))
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.i;
                    let rest = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.b.get(self.i) {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{}`", text)))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.i))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.i))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1.5f64, -2.0, 3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let o: Option<usize> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<usize>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<usize>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(String::from("a"), 1.0f64), (String::from("b"), 2.0)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(String, f64)>>(&s).unwrap(), v);
    }
}
