//! The worker pool: a global injector queue of splittable index jobs.
//!
//! Design (DESIGN.md §9): one process-wide pool of detached workers parked
//! on a condvar. A parallel call packages its work as a single *splittable
//! job* — a closure over a dense index range `0..n` plus an atomic
//! next-index cursor — and enqueues one handle per helper it wants. Every
//! participant (the submitting thread included) claims indices with
//! `fetch_add` until the range is drained. Determinism needs no help from
//! the scheduler: each index is computed by exactly one thread from inputs
//! that do not depend on thread identity, and consumers that produce values
//! write them to per-index slots which the caller assembles in index order.
//!
//! Structured concurrency is enforced with a closed/inflight protocol: the
//! job's closure borrows the caller's stack, so before `run_indexed`
//! returns it sets a CLOSED bit and waits for the participant count to hit
//! zero. A worker registers (increments the count) strictly before first
//! touching the closure and never after CLOSED is set, so the borrow can
//! never dangle. Stale queue handles left behind by an already-finished job
//! fail registration and are dropped on pop.
//!
//! Panics in a job are caught per participant, recorded, and re-raised on
//! the calling thread after the job is fully quiesced — a panicking client
//! task propagates like sequential code and cannot deadlock or poison the
//! pool (workers survive and keep serving other jobs).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard upper bound on configured worker threads; values above this are
/// absurd for one process and are rejected by the CLI before they get here.
pub const MAX_THREADS: usize = 256;

/// Thread-count override; 0 means "not set, use the default".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// The CLOSED bit of [`Ticket::state`]; low bits count registered
/// participants.
const CLOSED: usize = 1 << (usize::BITS - 1);

/// `std::thread::available_parallelism()` with a 1-core fallback.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The default thread count when [`set_num_threads`] was never called:
/// `FEDCLUST_THREADS` if set to a valid count (the CLI validates it
/// strictly and reports malformed values; the library fallback here is
/// lenient), else the machine's available parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("FEDCLUST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| (1..=MAX_THREADS).contains(&n))
            .unwrap_or_else(available_parallelism)
    })
}

/// Set the worker-thread count for all subsequent parallel calls. Values
/// are clamped to `[1, MAX_THREADS]`; `1` is the exact-sequential escape
/// hatch (parallel calls run inline with no pool traffic). May be called
/// repeatedly — results are bit-identical at any setting, so switching
/// thread counts mid-process is safe (the equivalence suite does exactly
/// that).
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::SeqCst);
}

/// The currently effective thread count.
pub fn current_num_threads() -> usize {
    match CONFIGURED.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// One splittable job. `run` borrows the caller's stack; the
/// closed/inflight protocol on `state` bounds its lifetime (see module
/// docs).
struct Ticket {
    /// The job body, lifetime-erased. Only dereferenced between a
    /// successful [`Ticket::register`] and the matching deregister.
    run: *const (dyn Fn(usize) + Sync),
    /// Number of indices in the job.
    n: usize,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// CLOSED bit + count of participants currently inside `run`.
    state: AtomicUsize,
    /// A participant panicked; everyone stops claiming new indices.
    panicked: AtomicBool,
    /// First captured panic payload, re-raised by the owner.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Owner parks here until the last participant leaves.
    quiesce: Mutex<()>,
    cv: Condvar,
}

// SAFETY: `run` is only dereferenced by participants that registered
// before the CLOSED bit was set, and the owning thread does not return
// (keeping the borrow alive) until CLOSED is set *and* the participant
// count is zero. All other fields are Sync primitives.
unsafe impl Send for Ticket {}
// SAFETY: as above — shared access is mediated by atomics and mutexes.
unsafe impl Sync for Ticket {}

impl Ticket {
    /// Erase the job closure's lifetime. Caller (i.e. [`run_indexed`] /
    /// [`run_pair`]) must uphold the close-before-return protocol.
    fn new(run: &(dyn Fn(usize) + Sync), n: usize) -> Arc<Ticket> {
        // SAFETY: transmute only widens the reference's lifetime; the
        // closed/inflight protocol guarantees no dereference outlives the
        // true borrow.
        let run: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(run)
        };
        Arc::new(Ticket {
            run,
            n,
            next: AtomicUsize::new(0),
            state: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            quiesce: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Try to become a participant. Fails iff the job is already closed.
    fn register(&self) -> bool {
        self.state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                if s & CLOSED != 0 {
                    None
                } else {
                    Some(s + 1)
                }
            })
            .is_ok()
    }

    /// Claim-and-run loop. Must only be called after a successful
    /// [`Ticket::register`]; deregisters on exit and wakes the owner.
    fn work(&self) {
        // SAFETY: we are registered, so the owner is still blocked in
        // `close_and_wait` (or has not reached it) and the closure borrow
        // is alive.
        let run = unsafe { &*self.run };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // fedlint::allow(pool-discipline): `panicked` is a monotonic abort flag; a stale read only runs one extra task before shutdown.
            while !self.panicked.load(Ordering::Relaxed) {
                // fedlint::allow(pool-discipline): `next` is a pure claim counter; fetch_add atomicity alone guarantees each index is claimed once, and claim order never reaches results.
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n {
                    break;
                }
                run(i);
            }
        }));
        if let Err(payload) = result {
            self.panicked.store(true, Ordering::SeqCst);
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.state.fetch_sub(1, Ordering::AcqRel);
        // Take the quiesce lock before notifying so a wakeup can never
        // slip between the owner's state check and its wait.
        let _guard = lock(&self.quiesce);
        self.cv.notify_all();
    }

    /// Forbid new participants, then wait until the active ones have left.
    /// After this returns no thread can touch `run` again.
    fn close_and_wait(&self) {
        self.state.fetch_or(CLOSED, Ordering::SeqCst);
        let mut guard = lock(&self.quiesce);
        while self.state.load(Ordering::SeqCst) & !CLOSED != 0 {
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Re-raise a participant's panic on the calling thread, if any.
    fn propagate_panic(&self) {
        let payload = lock(&self.panic).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// Mutex lock that shrugs off poisoning: the pool's own critical sections
/// never panic, and job panics are captured before any lock is held, so a
/// poisoned mutex still guards consistent data.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The process-wide pool: an injector queue plus lazily spawned workers.
struct Pool {
    queue: Mutex<VecDeque<Arc<Ticket>>>,
    available: Condvar,
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

impl Pool {
    /// Enqueue `helpers` handles to `ticket` and make sure that many
    /// workers exist to pick them up.
    fn submit(&'static self, ticket: &Arc<Ticket>, helpers: usize) {
        self.ensure_workers(helpers);
        {
            let mut q = lock(&self.queue);
            for _ in 0..helpers {
                q.push_back(Arc::clone(ticket));
            }
        }
        self.available.notify_all();
    }

    /// Lazily grow the worker set to at least `want` threads (capped).
    /// Spawn failure degrades gracefully: the submitting thread still
    /// participates, so progress is guaranteed with zero workers.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_THREADS);
        loop {
            let cur = self.spawned.load(Ordering::SeqCst);
            if cur >= want {
                return;
            }
            if self
                .spawned
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name(format!("fedclust-worker-{cur}"))
                .spawn(move || self.worker_loop());
            if spawned.is_err() {
                self.spawned.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
    }

    /// Detached worker: pop a ticket, work it if still open, repeat.
    /// Workers never exit; job panics are contained by [`Ticket::work`].
    fn worker_loop(&'static self) {
        loop {
            let ticket = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = match self.available.wait(q) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            if ticket.register() {
                ticket.work();
            }
            // Stale handle to a finished job: just drop it.
        }
    }
}

/// How many threads a job over `n` indices will actually use.
pub fn effective_threads(n: usize) -> usize {
    current_num_threads().min(n.max(1))
}

/// Run `f(0..n)` with every index executed exactly once, fanning out over
/// the pool when more than one thread is configured. Blocks until all
/// indices completed; re-raises the first panic after quiescing. At
/// `threads == 1` this is exactly `for i in 0..n { f(i) }`.
pub fn run_indexed<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = effective_threads(n);
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let ticket = Ticket::new(&f, n);
    pool().submit(&ticket, threads - 1);
    if ticket.register() {
        ticket.work();
    }
    ticket.close_and_wait();
    ticket.propagate_panic();
}

/// Run `a` on the calling thread while offering `b` to the pool (the
/// caller claims `b` itself if no worker got there first) — the primitive
/// behind [`crate::join`]. Panics from either side propagate after both
/// are quiesced.
pub fn run_pair<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let b_fn = Mutex::new(Some(b));
    let b_out: Mutex<Option<RB>> = Mutex::new(None);
    let run_b = |_i: usize| {
        if let Some(f) = lock(&b_fn).take() {
            let out = f();
            *lock(&b_out) = Some(out);
        }
    };
    let ticket = Ticket::new(&run_b, 1);
    pool().submit(&ticket, 1);
    // Run `a` inline, but close the ticket before any unwind: the job
    // closure borrows this frame.
    let ra = catch_unwind(AssertUnwindSafe(a));
    if ticket.register() {
        ticket.work();
    }
    ticket.close_and_wait();
    let ra = match ra {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    };
    ticket.propagate_panic();
    let rb = lock(&b_out)
        .take()
        .expect("join: side B completed without a result or a panic");
    (ra, rb)
}

/// Serialise tests that reconfigure the global thread count.
#[cfg(test)]
pub(crate) fn config_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    lock(&GUARD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_each_run_exactly_once_at_any_thread_count() {
        let _g = config_guard();
        for threads in [1, 2, 4, 7] {
            set_num_threads(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            run_indexed(100, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "threads={threads}"
            );
        }
        set_num_threads(1);
    }

    #[test]
    fn panic_propagates_without_deadlock_and_pool_survives() {
        let _g = config_guard();
        set_num_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(64, |i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool still serves jobs afterwards.
        let count = AtomicUsize::new(0);
        run_indexed(32, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 32);
        set_num_threads(1);
    }

    #[test]
    fn run_pair_returns_both_and_propagates_panics() {
        let _g = config_guard();
        set_num_threads(2);
        let (a, b) = run_pair(|| 1 + 1, || "two".len());
        assert_eq!((a, b), (2, 3));
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_pair(|| 0, || panic!("side b"));
        }));
        assert!(r.is_err());
        set_num_threads(1);
    }

    #[test]
    fn thread_count_is_clamped_and_defaulted() {
        let _g = config_guard();
        set_num_threads(0);
        assert_eq!(current_num_threads(), 1);
        set_num_threads(MAX_THREADS + 100);
        assert_eq!(current_num_threads(), MAX_THREADS);
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(1);
    }

    #[test]
    fn nested_jobs_make_progress() {
        let _g = config_guard();
        set_num_threads(4);
        let total = AtomicUsize::new(0);
        run_indexed(8, |_| {
            run_indexed(8, |_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 64);
        set_num_threads(1);
    }
}
