//! Offline, hand-rolled implementation of the `rayon` parallel-iterator
//! surface this workspace uses — a **real** thread pool, not a sequential
//! stand-in.
//!
//! The build container has no crates.io access, so this crate implements
//! the needed API on `std::sync` alone: a process-wide injector-queue
//! worker pool ([`pool`]) executes splittable index jobs, and the iterator
//! layer ([`iter`]) maps `par_iter` / `into_par_iter` / `par_chunks_mut`
//! pipelines onto it with an **ordered-collection contract** — output
//! position `i` always holds the result of input index `i`, whatever
//! thread computed it. Combined with the workspace's stateless
//! `(seed, round, client)` RNG streams, every run is bit-identical at any
//! thread count; `--threads 1` (or `FEDCLUST_THREADS=1`) is the
//! exact-sequential escape hatch that runs inline with zero pool traffic.
//!
//! Differences from real rayon, by design:
//! * the adapter surface is the subset the workspace uses (`map`,
//!   `enumerate`, `for_each`, `collect`, `sum`);
//! * `sum` is collect-then-reduce in index order (deterministic float
//!   accumulation) rather than a parallel tree reduction;
//! * thread count is a mutable global ([`set_num_threads`]) so one
//!   process can compare counts — which the cross-thread-count
//!   equivalence suite does.

pub mod iter;
pub mod pool;

pub use pool::{available_parallelism, current_num_threads, set_num_threads, MAX_THREADS};

/// Run two closures in parallel: `a` on the calling thread while `b` is
/// offered to the pool (and reclaimed by the caller if no worker is free).
/// Returns both results; panics on either side propagate after both sides
/// have quiesced.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    pool::run_pair(a, b)
}

/// The rayon prelude: extension traits providing `par_iter` & friends.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_mut_covers_all() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..5usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "four".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "four");
    }
}
