//! Offline shim of the `rayon` parallel-iterator API.
//!
//! The build container has no crates.io access and exposes a single CPU, so
//! this shim maps every `par_*` entry point onto the equivalent sequential
//! `std` iterator. That keeps the workspace's parallel structure (and its
//! determinism guarantees) intact at zero cost on this hardware; swapping the
//! real rayon back in is a one-line change in the workspace manifest.
//!
//! Because the shim returns ordinary [`Iterator`]s / slices, the full adapter
//! surface (`map`, `enumerate`, `filter`, `sum`, `collect`, …) is available
//! exactly as with real rayon's `ParallelIterator`.

/// Run two closures "in parallel" (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The rayon prelude: extension traits providing `par_iter` & friends.
pub mod prelude {
    /// `par_iter()` / `par_chunks()` / `par_chunks_mut()` on slices and Vecs.
    pub trait ParallelSlice {
        /// Immutable element type.
        type Item;

        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;

        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, Self::Item>;
    }

    /// Mutable counterpart of [`ParallelSlice`].
    pub trait ParallelSliceMut {
        /// Element type.
        type Item;

        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;

        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, Self::Item>;
    }

    impl<T> ParallelSlice for [T] {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    impl<T> ParallelSliceMut for [T] {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    impl<T> ParallelSlice for Vec<T> {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_slice().iter()
        }
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.as_slice().chunks(size)
        }
    }

    impl<T> ParallelSliceMut for Vec<T> {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_mut_slice().iter_mut()
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.as_mut_slice().chunks_mut(size)
        }
    }

    /// `into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_mut_covers_all() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..5usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, 30);
    }
}
