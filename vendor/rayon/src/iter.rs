//! Indexed parallel iterators with an ordered-collection contract.
//!
//! Everything here is a thin pipeline over one abstraction: a [`Producer`]
//! maps a dense index range `0..len` to items, adapters wrap producers,
//! and the consumers ([`ParIter::collect`], [`ParIter::sum`],
//! [`ParIter::for_each`]) hand the range to [`crate::pool::run_indexed`].
//!
//! The determinism contract: `produce(i)` must depend only on `i` and the
//! captured inputs — never on thread identity or claim order — and
//! value-returning consumers write each item into its own index slot, then
//! assemble the output **in index order** on the calling thread. The
//! result is therefore byte-identical to the sequential evaluation
//! `(0..len).map(produce)` at every thread count, which is what lets the
//! FL engine reduce client updates with no behavioral drift. Consumers
//! that fold (`sum`) collect first and reduce sequentially in index order
//! for the same reason — see fedlint's `deterministic-reduction` rule.

use crate::pool::{effective_threads, run_indexed};
use std::marker::PhantomData;
use std::sync::Mutex;

/// A random-access source of items over the index range `0..len()`.
///
/// Implementations must be pure per index (no claim-order dependence);
/// `produce(i)` is called at most once per `i` per consumption.
pub trait Producer: Sync {
    /// The item type.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the range is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce item `i`. Called at most once per index, possibly
    /// concurrently for distinct indices.
    fn produce(&self, i: usize) -> Self::Item;
}

/// The user-facing parallel iterator: a producer plus adapter/consumer
/// methods. Mirrors the subset of rayon's `ParallelIterator` this
/// workspace uses.
pub struct ParIter<P> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(producer: P) -> Self {
        ParIter { producer }
    }

    /// Number of items this iterator will yield.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.producer.is_empty()
    }

    /// Map each item through `f` (applied on the worker that claims the
    /// item's index).
    pub fn map<R, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        ParIter::new(MapProducer {
            base: self.producer,
            f,
        })
    }

    /// Pair each item with its index. Indices are the *logical* positions
    /// `0..len`, independent of execution order.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter::new(EnumerateProducer {
            base: self.producer,
        })
    }

    /// Run `f` on every item in parallel. No result, no ordering
    /// obligations beyond "every index exactly once".
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let p = self.producer;
        run_indexed(p.len(), |i| f(p.produce(i)));
    }

    /// Collect into a container in **index order** — item `i` of the
    /// output is `produce(i)`, regardless of which thread computed it or
    /// when it finished.
    pub fn collect<C>(self) -> C
    where
        C: FromOrderedParIter<P::Item>,
    {
        C::from_ordered_par_iter(self)
    }

    /// Sum the items deterministically: collect in index order, then fold
    /// sequentially on the calling thread. Float accumulation order is
    /// therefore fixed at every thread count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item>,
    {
        let items: Vec<P::Item> = self.collect();
        items.into_iter().sum()
    }

    /// Evaluate all items into an index-ordered `Vec` (the common
    /// consumer; `collect`/`sum` build on it).
    fn into_ordered_vec(self) -> Vec<P::Item> {
        let p = self.producer;
        let n = p.len();
        if effective_threads(n) <= 1 {
            // Exact-sequential escape hatch: same index order, no slots.
            return (0..n).map(|i| p.produce(i)).collect();
        }
        let slots: Vec<Mutex<Option<P::Item>>> = (0..n).map(|_| Mutex::new(None)).collect();
        run_indexed(n, |i| {
            let item = p.produce(i);
            if let Ok(mut slot) = slots[i].lock() {
                *slot = Some(item);
            }
        });
        slots
            .into_iter()
            .map(|s| {
                match s.into_inner() {
                    Ok(Some(item)) => item,
                    // Unreachable: run_indexed ran every index or panicked
                    // (and then we never get here).
                    _ => unreachable!("parallel collect: index slot left empty"),
                }
            })
            .collect()
    }
}

/// Containers that can be built from a parallel iterator with the ordered
/// contract (output position == item index).
pub trait FromOrderedParIter<T: Send>: Sized {
    /// Build the container, preserving index order.
    fn from_ordered_par_iter<P>(iter: ParIter<P>) -> Self
    where
        P: Producer<Item = T>;
}

impl<T: Send> FromOrderedParIter<T> for Vec<T> {
    fn from_ordered_par_iter<P>(iter: ParIter<P>) -> Self
    where
        P: Producer<Item = T>,
    {
        iter.into_ordered_vec()
    }
}

/// `map` adapter producer.
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn produce(&self, i: usize) -> R {
        (self.f)(self.base.produce(i))
    }
}

/// `enumerate` adapter producer.
pub struct EnumerateProducer<P> {
    base: P,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn produce(&self, i: usize) -> (usize, P::Item) {
        (i, self.base.produce(i))
    }
}

/// Shared-slice producer (`par_iter`).
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn produce(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Shared-chunks producer (`par_chunks`).
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn produce(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Exclusive-element producer (`par_iter_mut`). Distinct indices alias
/// distinct elements, so handing out `&mut` per index is sound.
pub struct IterMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: each index is produced at most once (Producer contract) and maps
// to a unique element, so no two threads ever hold an alias.
unsafe impl<T: Send> Sync for IterMutProducer<'_, T> {}

impl<'a, T: Send> Producer for IterMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    fn produce(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        // SAFETY: i < len is in bounds of the borrowed slice, and the
        // at-most-once-per-index contract makes the &mut exclusive.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Exclusive-chunks producer (`par_chunks_mut`). Chunk `i` covers
/// `[i*size, min((i+1)*size, len))`; chunks are pairwise disjoint.
pub struct ChunksMutProducer<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunks for distinct indices are disjoint ranges of the borrowed
// slice and each index is produced at most once.
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn produce(&self, i: usize) -> &'a mut [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.len);
        assert!(start < end || (start == 0 && end == 0));
        // SAFETY: [start, end) is in bounds and disjoint from every other
        // chunk; at-most-once-per-index makes the &mut exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// Owned-items producer (`Vec::into_par_iter`). Items are parked in
/// per-slot mutexes and moved out exactly once.
pub struct OwnedProducer<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> Producer for OwnedProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.slots.len()
    }
    fn produce(&self, i: usize) -> T {
        match self.slots[i].lock() {
            Ok(mut slot) => match slot.take() {
                Some(item) => item,
                None => unreachable!("owned parallel item {i} produced twice"),
            },
            Err(_) => unreachable!("owned parallel slot lock poisoned"),
        }
    }
}

/// Integer-range producer (`(a..b).into_par_iter()`).
pub struct RangeProducer<T> {
    start: T,
    count: usize,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.count
            }
            fn produce(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let count = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter::new(RangeProducer {
                    start: self.start,
                    count,
                })
            }
        }
    )*};
}

range_producer!(usize, u64, u32, i32, i64);

/// `par_iter()` / `par_chunks()` on slices and `Vec`s.
pub trait ParallelSlice {
    /// Element type.
    type Item;

    /// Parallel shared iteration in index order.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, Self::Item>>;

    /// Parallel iteration over `size`-element chunks (last may be short).
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, Self::Item>>;
}

/// Mutable counterpart of [`ParallelSlice`].
pub trait ParallelSliceMut {
    /// Element type.
    type Item;

    /// Parallel exclusive iteration in index order.
    fn par_iter_mut(&mut self) -> ParIter<IterMutProducer<'_, Self::Item>>;

    /// Parallel iteration over disjoint `size`-element mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, Self::Item>>;
}

impl<T: Sync> ParallelSlice for [T] {
    type Item = T;
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer { slice: self })
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksProducer { slice: self, size })
    }
}

impl<T: Send> ParallelSliceMut for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIter<IterMutProducer<'_, T>> {
        ParIter::new(IterMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksMutProducer {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: PhantomData,
        })
    }
}

impl<T: Sync> ParallelSlice for Vec<T> {
    type Item = T;
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        self.as_slice().par_iter()
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        self.as_slice().par_chunks(size)
    }
}

impl<T: Send> ParallelSliceMut for Vec<T> {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIter<IterMutProducer<'_, T>> {
        self.as_mut_slice().par_iter_mut()
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        self.as_mut_slice().par_chunks_mut(size)
    }
}

/// `into_par_iter()` on owned collections and integer ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Convert into an indexed parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<OwnedProducer<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(OwnedProducer {
            slots: self.into_iter().map(|x| Mutex::new(Some(x))).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::set_num_threads;

    #[test]
    fn collect_preserves_index_order_at_any_thread_count() {
        let _g = crate::pool::config_guard();
        let v: Vec<usize> = (0..200).collect();
        let expect: Vec<usize> = v.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4] {
            set_num_threads(threads);
            let got: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
        set_num_threads(1);
    }

    #[test]
    fn owned_and_range_sources_match_sequential() {
        let _g = crate::pool::config_guard();
        set_num_threads(4);
        let owned: Vec<String> = vec!["a".to_string(), "bb".into(), "ccc".into()]
            .into_par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}:{s}"))
            .collect();
        assert_eq!(owned, vec!["0:a", "1:bb", "2:ccc"]);
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
        set_num_threads(1);
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        let _g = crate::pool::config_guard();
        let xs: Vec<f32> = (0..1000).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        set_num_threads(1);
        let s1: f32 = xs.par_iter().map(|&x| x).sum();
        set_num_threads(4);
        let s4: f32 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s1.to_bits(), s4.to_bits(), "collect-then-reduce is ordered");
        set_num_threads(1);
    }

    #[test]
    fn chunks_mut_cover_disjointly() {
        let _g = crate::pool::config_guard();
        set_num_threads(4);
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        set_num_threads(1);
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let _g = crate::pool::config_guard();
        set_num_threads(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.par_iter_mut().for_each(|x| *x += 1000);
        assert_eq!(v, (1000..1050).collect::<Vec<_>>());
        set_num_threads(1);
    }
}
