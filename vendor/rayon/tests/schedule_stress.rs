//! Schedule-stress: deterministic pool-hammer over seeded job mixes.
//!
//! The pool's contract (DESIGN.md §7) is that scheduling order may vary
//! freely but observable results may not: every job runs exactly once, and
//! float outputs written by index are bit-identical at any thread count.
//! These tests hammer `run_indexed` and `join` with seeded job mixes at
//! 1/2/4/7 threads and assert both properties — covering exactly the code
//! paths the fedlint v4 concurrency rules reason about (queue mutex,
//! condvar hand-off, ticket atomics).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serializes tests that touch the global thread-count knob. (The pool's
/// own `config_guard` is crate-private, so integration tests carry their
/// own.)
static GLOBAL: Mutex<()> = Mutex::new(());

fn config_lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic 64-bit LCG (Knuth constants) — the test's only source of
/// "randomness", so every mix replays bit-identically.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Per-job float churn: a few dozen fused multiply-adds parameterized only
/// by the job index and its seeded weight. Identical on every thread.
fn churn(i: usize, weight: u64) -> f32 {
    let mut x = (i as f32).mul_add(0.12345, 1.0);
    for k in 0..(weight % 61 + 3) {
        x = x.mul_add(1.000_011_9, (k as f32) * 1.5e-4);
    }
    x
}

/// Run one seeded mix at `threads`, returning (per-slot bits, per-slot run
/// counts). Slots are written by index (the deterministic-reduction
/// discipline) so the later sequential fold is order-fixed.
fn run_mix(seed: u64, jobs: usize, threads: usize) -> (Vec<u32>, Vec<usize>) {
    let mut state = seed;
    let weights: Vec<u64> = (0..jobs).map(|_| lcg(&mut state) >> 16).collect();
    let slots: Vec<AtomicU32> = (0..jobs).map(|_| AtomicU32::new(0)).collect();
    let counts: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
    rayon::set_num_threads(threads);
    rayon::pool::run_indexed(jobs, |i| {
        let v = churn(i, weights[i]);
        slots[i].store(v.to_bits(), Ordering::SeqCst);
        counts[i].fetch_add(1, Ordering::SeqCst);
    });
    (
        slots.iter().map(|s| s.load(Ordering::SeqCst)).collect(),
        counts.iter().map(|c| c.load(Ordering::SeqCst)).collect(),
    )
}

#[test]
fn seeded_mixes_run_exactly_once_with_bit_identical_sums() {
    let _g = config_lock();
    for (seed, jobs) in [(0x5EED_0001u64, 64), (0x5EED_0002, 97), (0x5EED_0003, 130)] {
        let (baseline_bits, baseline_counts) = run_mix(seed, jobs, 1);
        assert!(
            baseline_counts.iter().all(|&c| c == 1),
            "seed {seed:#x}: single-thread run must execute every job exactly once"
        );
        // The order-fixed fold over indexed slots — the sum the workspace's
        // deterministic-reduction rule mandates.
        let baseline_sum: f32 = baseline_bits.iter().map(|&b| f32::from_bits(b)).sum();
        for threads in [2, 4, 7] {
            let (bits, counts) = run_mix(seed, jobs, threads);
            assert!(
                counts.iter().all(|&c| c == 1),
                "seed {seed:#x} at {threads} threads: every job must run exactly once, got {counts:?}"
            );
            assert_eq!(
                bits, baseline_bits,
                "seed {seed:#x} at {threads} threads: per-slot float bits must be identical"
            );
            let sum: f32 = bits.iter().map(|&b| f32::from_bits(b)).sum();
            assert_eq!(
                sum.to_bits(),
                baseline_sum.to_bits(),
                "seed {seed:#x} at {threads} threads: fold must be bit-identical"
            );
        }
    }
}

#[test]
fn join_results_are_bit_identical_across_thread_counts() {
    let _g = config_lock();
    let halves = |jobs: usize| {
        rayon::join(
            || (0..jobs).map(|i| churn(i, 7)).sum::<f32>(),
            || (jobs..2 * jobs).map(|i| churn(i, 11)).sum::<f32>(),
        )
    };
    rayon::set_num_threads(1);
    let (a1, b1) = halves(53);
    for threads in [2, 4, 7] {
        rayon::set_num_threads(threads);
        let (a, b) = halves(53);
        assert_eq!(a.to_bits(), a1.to_bits(), "{threads} threads: left half");
        assert_eq!(b.to_bits(), b1.to_bits(), "{threads} threads: right half");
    }
}
