//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! exact surface it uses: [`Rng::gen`], [`Rng::gen_range`] over half-open and
//! inclusive ranges, [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom::shuffle`]. `SmallRng` is xoshiro256++, the same
//! generator family the real crate uses on 64-bit targets; streams are
//! deterministic per seed, which is all the reproduction's RNG-derivation
//! scheme (see `fedclust-tensor::rng`) relies on.

/// Uniform sampling support for [`Rng::gen_range`] argument types.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The minimal core-RNG object-safe interface.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value of `Self`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<RNG: RngCore + ?Sized>(self, rng: &mut RNG) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the sub-2^32 spans this
                // workspace draws (client counts, label indices).
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<RNG: RngCore + ?Sized>(self, rng: &mut RNG) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<RNG: RngCore + ?Sized>(self, rng: &mut RNG) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<RNG: RngCore + ?Sized>(self, rng: &mut RNG) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                s + <$t as Standard>::draw(rng) * (e - s)
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// User-facing RNG extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f32`/`f64` in `[0,1)`, full-width ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 expansion (matches the upstream
    /// contract that distinct `u64` seeds give unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator `rand` uses for `SmallRng`
    /// on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
