//! Offline micro-benchmark harness with a criterion-compatible API.
//!
//! Supports the surface this workspace's benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is wall-clock: each benchmark warms up
//! for `--warm-up-time` seconds, then collects `sample_size` samples within
//! `--measurement-time` seconds and reports mean / min / max per iteration.
//!
//! Accepted CLI flags (others, like cargo's `--bench`, are ignored):
//! `--warm-up-time <s>`, `--measurement-time <s>`, `--sample-size <n>`,
//! and an optional positional substring filter of benchmark names.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`group/function/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/param` id.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function, param),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Collected per-iteration mean times (seconds), one per sample.
    samples: Vec<f64>,
}

impl<'a> Bencher<'a> {
    /// Benchmark `f`, timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.cfg.warm_up_time {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

        // Split the measurement budget into `sample_size` samples of
        // `batch` iterations each.
        let budget = self.cfg.measurement_time.as_secs_f64();
        let samples = self.cfg.sample_size.max(2);
        let batch = ((budget / samples as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{:.3} s", secs)
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_secs_f64(1.0),
            measurement_time: Duration::from_secs_f64(3.0),
            filter: None,
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Apply `--warm-up-time` / `--measurement-time` / `--sample-size` and a
    /// positional name filter from the process arguments.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let next_f64 = |v: Option<&String>| v.and_then(|s| s.parse::<f64>().ok());
            match args[i].as_str() {
                "--warm-up-time" => {
                    if let Some(s) = next_f64(args.get(i + 1)) {
                        self.cfg.warm_up_time = Duration::from_secs_f64(s);
                        i += 1;
                    }
                }
                "--measurement-time" => {
                    if let Some(s) = next_f64(args.get(i + 1)) {
                        self.cfg.measurement_time = Duration::from_secs_f64(s);
                        i += 1;
                    }
                }
                "--sample-size" => {
                    if let Some(s) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        self.cfg.sample_size = s;
                        i += 1;
                    }
                }
                a if !a.starts_with('-') => {
                    self.cfg.filter = Some(a.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.cfg, &id.to_string(), &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            cfg: self.cfg.clone(),
            _parent: self,
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(cfg: &Config, name: &str, f: &mut F) {
    if let Some(filter) = &cfg.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        cfg,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{:<40} (no samples)", name);
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{:<40} time: [{} {} {}]  ({} samples)",
        name,
        format_time(min),
        format_time(mean),
        format_time(max),
        b.samples.len()
    );
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&self.cfg, &full, &mut f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&self.cfg, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let cfg = Config {
            sample_size: 5,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            filter: None,
        };
        let mut b = Bencher {
            cfg: &cfg,
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
        assert!(count > 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
