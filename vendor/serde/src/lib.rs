//! Offline simplified serde: a JSON-shaped [`Value`] data model with
//! [`Serialize`]/[`Deserialize`] traits and derive macros.
//!
//! The build container has no crates.io access, so this crate replaces the
//! real serde with the minimal contract the workspace needs: derived structs
//! and enums round-trip through [`Value`], and `serde_json` renders/parses
//! that tree. The derive macros generate externally-tagged enum encodings,
//! matching real serde's default, so cached JSON stays format-compatible.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped tree, the single intermediate representation between typed
/// values and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }
}

/// Deserialization failure: a path-less message, enough for cache files.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A "missing field" error.
    pub fn missing(field: &str) -> Self {
        Error(format!("missing field `{}`", field))
    }

    /// A "wrong type" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {}, got {:?}", what, got))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the [`Value`] tree.
pub trait Serialize {
    /// Serialize to the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => Ok(u as $t),
                    Value::I64(i) if i >= 0 => Ok(i as $t),
                    // fedlint::allow(float-eq): fract() == 0.0 is the exact integer-valued test; any tolerance would accept lossy conversions.
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(u) => Ok(u as $t),
                    Value::I64(i) => Ok(i as $t),
                    // fedlint::allow(float-eq): fract() == 0.0 is the exact integer-valued test; any tolerance would accept lossy conversions.
                    Value::F64(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::expected(stringify!($t), v))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::expected("2-tuple", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::expected("3-tuple", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 4 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
                D::from_value(&items[3])?,
            )),
            _ => Err(Error::expected("4-tuple", v)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<usize> = Vec::from_value(&vec![1usize, 2, 3].to_value()).unwrap();
        assert_eq!(v, [1, 2, 3]);
        let o: Option<f64> = Option::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }
}
