//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! simplified serde data model in `vendor/serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote, which the
//! offline container cannot fetch). Supports the shapes this workspace
//! derives: non-generic structs with named fields, unit structs, newtype
//! structs, and enums whose variants are unit, newtype, or struct-like —
//! encoded externally tagged exactly like real serde's default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a token list on top-level commas, tracking `<...>` depth so commas
/// inside generic arguments don't split.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut pending = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if pending {
                    items += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        items += 1;
    }
    items
}

/// Parse the fields of a brace-delimited body: `name: Type, ...`.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < group.len() {
        i = skip_meta(group, i);
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {:?}", other),
        };
        i += 1;
        match group.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field, got {:?}", other),
        }
        // Skip the type up to a top-level comma (angle-bracket aware).
        let mut depth = 0i32;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {:?}", other),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {:?}", other),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive: generic types are not supported offline (derive on `{}`)",
                name
            );
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&body))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_top_level_items(&body))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unsupported struct body {:?}", other),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<TokenTree>>()
                }
                other => panic!("serde_derive: expected enum body, got {:?}", other),
            };
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < body.len() {
                j = skip_meta(&body, j);
                let vname = match body.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => panic!("serde_derive: expected variant, got {:?}", other),
                };
                j += 1;
                let fields = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Named(parse_named_fields(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Fields::Tuple(count_top_level_items(&inner))
                    }
                    _ => Fields::Unit,
                };
                if let Some(TokenTree::Punct(p)) = body.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive on `{}` items", other),
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("serde::Value::Str(String::from(\"{}\"))", name),
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f}))",
                                f = f
                            )
                        })
                        .collect();
                    format!("serde::Value::Obj(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{})", k))
                        .collect();
                    format!("serde::Value::Arr(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}",
                name = name,
                body = body
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{n}::{v} => serde::Value::Str(String::from(\"{v}\")),",
                        n = name,
                        v = v
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), serde::Serialize::to_value({f}))",
                                    f = f
                                )
                            })
                            .collect();
                        format!(
                            "{n}::{v} {{ {binds} }} => serde::Value::Obj(vec![(String::from(\"{v}\"), serde::Value::Obj(vec![{entries}]))]),",
                            n = name,
                            v = v,
                            binds = binds,
                            entries = entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{n}::{v}(x0) => serde::Value::Obj(vec![(String::from(\"{v}\"), serde::Serialize::to_value(x0))]),",
                        n = name,
                        v = v
                    ),
                    Fields::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("x{}", i)).collect();
                        let entries: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({})", b))
                            .collect();
                        format!(
                            "{n}::{v}({binds}) => serde::Value::Obj(vec![(String::from(\"{v}\"), serde::Value::Arr(vec![{entries}]))]),",
                            n = name,
                            v = v,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({})", name),
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(match v.get(\"{f}\") {{ Some(x) => x, None => &serde::Value::Null }})?",
                                f = f
                            )
                        })
                        .collect();
                    format!("Ok({} {{ {} }})", name, inits.join(", "))
                }
                Fields::Tuple(1) => {
                    format!("Ok({}(serde::Deserialize::from_value(v)?))", name)
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| {
                            format!(
                                "serde::Deserialize::from_value(match v {{ serde::Value::Arr(a) => &a[{k}], _ => return Err(serde::Error::expected(\"array\", v)) }})?",
                                k = k
                            )
                        })
                        .collect();
                    format!("Ok({}({}))", name, inits.join(", "))
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}",
                name = name,
                body = body
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({n}::{v}),", v = v, n = name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(match __inner.get(\"{f}\") {{ Some(x) => x, None => &serde::Value::Null }})?",
                                    f = f
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => Ok({n}::{v} {{ {inits} }}),",
                            v = v,
                            n = name,
                            inits = inits.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => Ok({n}::{v}(serde::Deserialize::from_value(__inner)?)),",
                        v = v,
                        n = name
                    ),
                    Fields::Tuple(k) => {
                        let inits: Vec<String> = (0..*k)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(match __inner {{ serde::Value::Arr(a) => &a[{i}], _ => return Err(serde::Error::expected(\"array\", __inner)) }})?",
                                    i = i
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => Ok({n}::{v}({inits})),",
                            v = v,
                            n = name,
                            inits = inits.join(", ")
                        )
                    }
                    Fields::Unit => unreachable!(),
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(serde::Error(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }},\n\
                             serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__fields[0];\n\
                                 let _ = __inner;\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(serde::Error(format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::Error::expected(\"enum encoding\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = name,
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
