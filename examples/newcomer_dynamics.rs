//! Client dynamics: incorporating newcomers after federation
//! (the paper's Algorithm 2 / Table 6 scenario).
//!
//! 16 clients in two latent groups federate with FedClust; 4 more clients
//! join afterwards. Each newcomer briefly trains the initial model, uploads
//! its final-layer weights, is matched to the nearest cluster (Eq. 4), and
//! personalizes the received cluster model for a few epochs.
//!
//! ```sh
//! cargo run --release --example newcomer_dynamics
//! ```

use fedclust::newcomer::incorporate_all;
use fedclust::proximity::WeightSelection;
use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset};
use fedclust_fl::FlConfig;
use fedclust_nn::models::ModelSpec;
use fedclust_tensor::distance::Metric;

fn main() {
    // 20 clients in two ground-truth groups (classes 0-4 vs 5-9).
    let groups: Vec<Vec<usize>> = (0..20)
        .map(|c| {
            if c % 2 == 0 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let full = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_data::federated::FederatedConfig {
            num_clients: 20,
            samples_per_class: 100,
            train_fraction: 0.8,
            seed: 5,
        },
    );
    let truth = full.ground_truth_groups();
    let newcomer_truth: Vec<usize> = truth[16..].to_vec();
    let (fd, newcomers) = full.split_newcomers(4);

    let cfg = FlConfig {
        model: ModelSpec::LeNet5,
        rounds: 8,
        sample_rate: 0.5,
        local_epochs: 3,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        eval_every: 4,
        seed: 5,
        dropout_rate: 0.0,
        faults: fedclust_fl::FaultPlan::none(),
        codec: fedclust_fl::CodecSpec::none(),
    };

    println!("federating {} clients…", fd.num_clients());
    let (result, federation) = FedClust::default().run_detailed(&fd, &cfg);
    println!(
        "federation done: {} clusters, avg local test accuracy {:.2}%",
        federation.outcome.num_clusters,
        result.final_acc * 100.0
    );

    println!(
        "\nincorporating {} newcomers (Algorithm 2)…",
        newcomers.len()
    );
    let outcomes = incorporate_all(
        &federation,
        &newcomers,
        &cfg,
        WeightSelection::FinalLayer,
        Metric::L2,
        1, // warm-up epochs before the partial-weight upload
        5, // personalization epochs on the received cluster model
    );
    println!(
        "{:<10} {:>14} {:>12} {:>12}",
        "newcomer", "true group", "assigned", "accuracy"
    );
    for (i, o) in outcomes.iter().enumerate() {
        println!(
            "{:<10} {:>14} {:>12} {:>11.2}%",
            format!("client {}", fd.num_clients() + i),
            newcomer_truth[i],
            o.cluster,
            o.accuracy * 100.0
        );
    }
    let avg = outcomes.iter().map(|o| o.accuracy as f64).sum::<f64>() / outcomes.len() as f64;
    println!("\naverage newcomer accuracy: {:.2}%", avg * 100.0);
}
