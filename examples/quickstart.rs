//! Quickstart: run FedClust on a small synthetic federation and compare it
//! against FedAvg.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::FedAvg;
use fedclust_fl::{FlConfig, FlMethod};
use fedclust_nn::models::ModelSpec;

fn main() {
    // 1. Build a federated dataset: 20 clients, each holding only 20 % of
    //    the label space (the paper's "Non-IID label skew (20%)" setting).
    let dataset = FederatedDataset::build(
        DatasetProfile::Cifar10Like,
        Partition::LabelSkew { fraction: 0.2 },
        &fedclust_data::federated::FederatedConfig {
            num_clients: 20,
            samples_per_class: 100,
            train_fraction: 0.8,
            seed: 7,
        },
    );
    println!(
        "federation: {} clients, {} training samples total",
        dataset.num_clients(),
        dataset.total_train_samples()
    );

    // 2. Configure the FL loop (shared by both methods).
    let cfg = FlConfig {
        model: ModelSpec::LeNet5,
        rounds: 10,
        sample_rate: 0.25,
        local_epochs: 3,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        eval_every: 2,
        seed: 7,
        dropout_rate: 0.0,
        faults: fedclust_fl::FaultPlan::none(),
        codec: fedclust_fl::CodecSpec::none(),
    };

    // 3. Run FedClust (one-shot weight-driven clustering, then per-cluster
    //    FedAvg) and plain FedAvg on identical data and initialisation.
    let (fedclust_result, federation) = FedClust::default().run_detailed(&dataset, &cfg);
    let fedavg_result = FedAvg.run(&dataset, &cfg);

    println!(
        "\nFedClust formed {} clusters (auto λ = {:.4})",
        federation.outcome.num_clusters, federation.outcome.lambda
    );
    println!("\n{:<10} {:>12} {:>14}", "method", "accuracy", "comm (Mb)");
    for r in [&fedclust_result, &fedavg_result] {
        println!(
            "{:<10} {:>11.2}% {:>14.2}",
            r.method,
            r.final_acc * 100.0,
            r.total_mb
        );
    }
    println!("\naccuracy trajectory (round, FedClust, FedAvg):");
    for (a, b) in fedclust_result.history.iter().zip(&fedavg_result.history) {
        println!(
            "  round {:>2}: {:>6.2}%  vs  {:>6.2}%",
            a.round,
            a.avg_acc * 100.0,
            b.avg_acc * 100.0
        );
    }
}
