//! Heterogeneity study: how the *kind and degree* of non-IID-ness changes
//! which FL strategy wins.
//!
//! Sweeps three partitions (IID, label skew 30 %, Dirichlet 0.1) over three
//! representative methods (FedAvg = fully global, Local = fully
//! personalized, FedClust = clustered middle ground) and prints the
//! resulting accuracy matrix — the paper's §1 motivation in one table.
//!
//! ```sh
//! cargo run --release --example heterogeneity_study
//! ```

use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{FedAvg, LocalOnly};
use fedclust_fl::{FlConfig, FlMethod};
use fedclust_nn::models::ModelSpec;

fn main() {
    let partitions: [(&str, Partition); 3] = [
        ("IID", Partition::Iid),
        ("skew 30%", Partition::LabelSkew { fraction: 0.3 }),
        ("Dir(0.1)", Partition::Dirichlet { alpha: 0.1 }),
    ];
    let cfg = FlConfig {
        model: ModelSpec::LeNet5,
        rounds: 8,
        sample_rate: 0.25,
        local_epochs: 3,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        eval_every: 4,
        seed: 3,
        dropout_rate: 0.0,
        faults: fedclust_fl::FaultPlan::none(),
        codec: fedclust_fl::CodecSpec::none(),
    };
    let methods: Vec<Box<dyn FlMethod>> = vec![
        Box::new(FedAvg),
        Box::new(LocalOnly::default()),
        Box::new(FedClust::default()),
    ];

    println!(
        "{:<10} {:>10} {:>10} {:>10}   (FMNIST-like, 20 clients)",
        "partition", "FedAvg", "Local", "FedClust"
    );
    for (name, partition) in partitions {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            partition,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 20,
                samples_per_class: 100,
                train_fraction: 0.8,
                seed: 3,
            },
        );
        print!("{:<10}", name);
        for method in &methods {
            let r = method.run(&fd, &cfg);
            print!(" {:>9.2}%", r.final_acc * 100.0);
        }
        println!();
    }
    println!(
        "\nReading: under IID a single global model is competitive; as heterogeneity\n\
         grows, Local overtakes FedAvg, and FedClust keeps the best of both by\n\
         sharing models only within similar-distribution clusters."
    );
}
