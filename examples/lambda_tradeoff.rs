//! The generalization ↔ personalization dial: sweep the clustering
//! threshold λ (the paper's Fig. 4 in miniature).
//!
//! Small λ → every client is its own cluster (fully personalized, like
//! the `Local` baseline); large λ → one cluster (fully global, FedAvg).
//! The sweet spot sits at the data's true group structure.
//!
//! ```sh
//! cargo run --release --example lambda_tradeoff
//! ```

use fedclust::lambda_sweep::{lambda_grid, sweep};
use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::FlConfig;
use fedclust_nn::models::ModelSpec;

fn main() {
    let fd = FederatedDataset::build(
        DatasetProfile::Cifar10Like,
        Partition::LabelSkew { fraction: 0.2 },
        &fedclust_data::federated::FederatedConfig {
            num_clients: 16,
            samples_per_class: 100,
            train_fraction: 0.8,
            seed: 9,
        },
    );
    let cfg = FlConfig {
        model: ModelSpec::LeNet5,
        rounds: 6,
        sample_rate: 0.5,
        local_epochs: 3,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        eval_every: 6,
        seed: 9,
        dropout_rate: 0.0,
        faults: fedclust_fl::FaultPlan::none(),
        codec: fedclust_fl::CodecSpec::none(),
    };
    let method = FedClust::default();

    let lambdas = lambda_grid(&fd, &cfg, &method, 6);
    println!(
        "sweeping {} λ values on CIFAR-10-like / label skew 20%…\n",
        lambdas.len()
    );
    let points = sweep(&fd, &cfg, &method, &lambdas);

    println!("{:>10} {:>10} {:>10}", "λ", "#clusters", "accuracy");
    for p in &points {
        let bar = "#".repeat((p.final_acc * 40.0) as usize);
        println!(
            "{:>10.4} {:>10} {:>9.2}% {}",
            p.lambda,
            p.num_clusters,
            p.final_acc * 100.0,
            bar
        );
    }
    let best = points
        .iter()
        .max_by(|a, b| a.final_acc.partial_cmp(&b.final_acc).unwrap())
        .unwrap();
    println!(
        "\nbest trade-off: λ = {:.4} → {} clusters at {:.2}% \
         (1 cluster = pure globalization, {} clusters = pure personalization)",
        best.lambda,
        best.num_clusters,
        best.final_acc * 100.0,
        fd.num_clients()
    );
}
