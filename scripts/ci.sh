#!/usr/bin/env bash
# Tier-1 verification plus a quick benchmark smoke: exactly what a CI job
# runs. Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== lints =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fedlint =="
# Scans crates/*/src plus vendor/*/src (pool-discipline audits the
# hand-rolled rayon pool); the coverage meta-test then proves every
# registered rule has positive and negative fixtures. The workspace-global
# lock-set fixpoint (v4) must stay cheap enough to gate every PR, so the
# scan gets a generous-but-real wall-time budget.
lint_budget_s=120
lint_start=$(date +%s)
cargo run -q -p lint --release -- --deny --baseline results/lint_baseline.json
lint_elapsed=$(($(date +%s) - lint_start))
echo "fedlint: --deny completed in ${lint_elapsed}s (budget ${lint_budget_s}s)"
if [ "$lint_elapsed" -ge "$lint_budget_s" ]; then
    echo "fedlint: workspace scan blew its ${lint_budget_s}s budget — the lock-set engine (or a rule) has a perf regression" >&2
    exit 1
fi
cargo test -q -p lint --test coverage

echo "== tests =="
cargo test -q

echo "== fault tolerance =="
cargo test -q --test fault_tolerance

echo "== crash recovery =="
cargo test -q --test crash_recovery
scripts/kill_resume_smoke.sh

echo "== codec conformance =="
cargo test -q --test codec_conformance
cargo test -q --test comm_accounting

echo "== networked federation =="
# Wire-protocol hostile-frame fuzzing, then the real binaries end to end:
# server + worker fleet over localhost TCP (plain, codec-compressed,
# through the chaos proxy, across a server SIGKILL + resume, and under
# worker crashes) must be byte-identical to the in-process simulation.
cargo test -q -p fedclust-proto
cargo test -q -p fedclust-cli --test net_cli
scripts/net_smoke.sh

echo "== thread equivalence =="
# The suite itself sweeps thread counts inside each test; running the whole
# binary under two different pool defaults additionally proves the
# FEDCLUST_THREADS path and that the surrounding harness (checkpoint I/O,
# fault telemetry) is count-independent too. Includes the pool's
# panic-propagation tests via the vendored rayon crate.
FEDCLUST_THREADS=1 cargo test -q --test thread_equivalence
FEDCLUST_THREADS=4 cargo test -q --test thread_equivalence
cargo test -q -p rayon

echo "== thread sanitizer (best effort) =="
# Dynamic double-check of the pool and wire suites when a nightly
# toolchain with TSan support is available; exits 0 with a skip message
# otherwise, and never gates the pipeline either way — fedlint's static
# concurrency rules are the gate.
scripts/tsan.sh || echo "tsan: failed (non-gating)"

echo "== quick benchmarks =="
scripts/bench_quick.sh
