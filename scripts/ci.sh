#!/usr/bin/env bash
# Tier-1 verification plus a quick benchmark smoke: exactly what a CI job
# runs. Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== lints =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fedlint =="
# Scans crates/*/src plus vendor/*/src (pool-discipline audits the
# hand-rolled rayon pool); the coverage meta-test then proves every
# registered rule has positive and negative fixtures.
cargo run -q -p lint --release -- --deny --baseline results/lint_baseline.json
cargo test -q -p lint --test coverage

echo "== tests =="
cargo test -q

echo "== fault tolerance =="
cargo test -q --test fault_tolerance

echo "== crash recovery =="
cargo test -q --test crash_recovery
scripts/kill_resume_smoke.sh

echo "== codec conformance =="
cargo test -q --test codec_conformance
cargo test -q --test comm_accounting

echo "== networked federation =="
# Wire-protocol hostile-frame fuzzing, then the real binaries end to end:
# server + worker fleet over localhost TCP (plain, codec-compressed,
# through the chaos proxy, across a server SIGKILL + resume, and under
# worker crashes) must be byte-identical to the in-process simulation.
cargo test -q -p fedclust-proto
cargo test -q -p fedclust-cli --test net_cli
scripts/net_smoke.sh

echo "== thread equivalence =="
# The suite itself sweeps thread counts inside each test; running the whole
# binary under two different pool defaults additionally proves the
# FEDCLUST_THREADS path and that the surrounding harness (checkpoint I/O,
# fault telemetry) is count-independent too. Includes the pool's
# panic-propagation tests via the vendored rayon crate.
FEDCLUST_THREADS=1 cargo test -q --test thread_equivalence
FEDCLUST_THREADS=4 cargo test -q --test thread_equivalence
cargo test -q -p rayon

echo "== quick benchmarks =="
scripts/bench_quick.sh
