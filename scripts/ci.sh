#!/usr/bin/env bash
# Tier-1 verification plus a quick benchmark smoke: exactly what a CI job
# runs. Fails on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== quick benchmarks =="
scripts/bench_quick.sh
