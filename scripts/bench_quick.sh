#!/usr/bin/env bash
# Quick-feedback benchmark sweep: short warm-up and measurement windows so a
# full micro pass finishes in well under a minute. Extra args (e.g. a name
# filter like `conv2d`) are forwarded to the bench binary.
#
# Usage: scripts/bench_quick.sh [filter] [-- extra cargo args]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p fedclust-bench --bench micro -- \
    --warm-up-time 0.5 --measurement-time 1 "$@"
