#!/usr/bin/env bash
# Quick-feedback benchmark sweep: short warm-up and measurement windows so a
# full micro pass finishes in well under a minute. Extra args (e.g. a name
# filter like `conv2d`) are forwarded to the bench binary.
#
# Usage: scripts/bench_quick.sh [filter] [-- extra cargo args]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p fedclust-bench --bench micro -- \
    --warm-up-time 0.5 --measurement-time 1 "$@"

# End-to-end train_round throughput at 1/2/4 worker threads; writes
# results/BENCH_parallel.json so the perf trajectory is machine-readable.
# FEDCLUST_FAST=1 keeps the sweep inside the quick-feedback budget (unset
# FEDCLUST_FAST or export FEDCLUST_FAST=0 and run the bin directly for the
# full grid shape).
FEDCLUST_FAST="${FEDCLUST_FAST:-1}" \
    cargo run -q --release -p fedclust-bench --bin bench_parallel

# Communication-efficiency sweep across upload codecs; writes
# results/BENCH_comm.json and asserts every codec bills strictly fewer
# bytes than `none` while replaying bit-identically.
FEDCLUST_FAST="${FEDCLUST_FAST:-1}" \
    cargo run -q --release -p fedclust-bench --bin bench_comm
