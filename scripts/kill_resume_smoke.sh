#!/usr/bin/env bash
# Kill-and-resume smoke test: run a checkpointed federation, SIGKILL it
# mid-flight, resume in a fresh process, and require the resumed --json
# output to be byte-identical to an uninterrupted reference run
# (EXPERIMENTS.md "Kill-and-resume"). Exits nonzero on any divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fedclust-kill-resume.XXXXXX")
trap 'rm -rf "$WORK"; [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true' EXIT
CKPT="$WORK/ckpt"

ARGS=(run --method fedclust --dataset fmnist --partition skew50
  --clients 20 --rounds 40 --epochs 3 --samples-per-class 200
  --seed 11 --json)

cargo build --release -q -p fedclust-cli
BIN=target/release/fedclust-cli

echo "-- reference run (uninterrupted)"
"$BIN" "${ARGS[@]}" > "$WORK/reference.json"

echo "-- checkpointed run, SIGKILL mid-flight"
"$BIN" "${ARGS[@]}" --checkpoint-dir "$CKPT" --checkpoint-every 1 --keep 8 \
  > "$WORK/interrupted.json" 2>/dev/null &
PID=$!
# Wait until a few checkpoint generations land, then kill hard mid-run.
for _ in $(seq 1 3000); do
  gens=$(ls "$CKPT" 2>/dev/null | grep -c '^ckpt-.*\.bin$' || true)
  if [ "$gens" -ge 3 ]; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then break; fi
  sleep 0.02
done
if kill -9 "$PID" 2>/dev/null; then
  echo "   killed pid $PID"
else
  echo "   run finished before the kill (machine too fast) — resume still exercised"
fi
wait "$PID" 2>/dev/null || true
PID=""

if ! ls "$CKPT"/ckpt-*.bin >/dev/null 2>&1; then
  echo "ERROR: no checkpoint generation was written" >&2
  exit 1
fi

echo "-- resume in a fresh process"
"$BIN" "${ARGS[@]}" --checkpoint-dir "$CKPT" --keep 8 --resume \
  > "$WORK/resumed.json"

if diff -q "$WORK/reference.json" "$WORK/resumed.json" >/dev/null; then
  echo "OK: resumed output is byte-identical to the uninterrupted run"
else
  echo "ERROR: resumed output diverged from the reference run" >&2
  diff "$WORK/reference.json" "$WORK/resumed.json" >&2 || true
  exit 1
fi
