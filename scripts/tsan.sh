#!/usr/bin/env bash
# Best-effort ThreadSanitizer pass over the concurrency-heavy suites: the
# hand-rolled pool (vendor/rayon, including the schedule-stress tests) and
# the networked-federation wire tests. TSan needs a nightly toolchain with
# `-Zsanitizer=thread` plus the rebuilt std (`-Zbuild-std`); the pinned CI
# container ships stable only, so this script probes for support and exits
# 0 with a skip message when it's absent. fedlint's static concurrency
# rules (lock-order-global, guard-across-blocking, atomic-ordering-pairing)
# remain the always-on gate; TSan is the dynamic double-check wherever the
# toolchain allows it.
set -euo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "tsan: skipped — $1"
    exit 0
}

command -v cargo >/dev/null 2>&1 || skip "cargo not on PATH"

# TSan is a nightly-only -Z flag; `cargo +nightly` must resolve.
if ! cargo +nightly --version >/dev/null 2>&1; then
    skip "no nightly toolchain installed (-Zsanitizer=thread requires nightly)"
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
case "$host" in
x86_64-unknown-linux-gnu | aarch64-unknown-linux-gnu | x86_64-apple-darwin | aarch64-apple-darwin) ;;
*) skip "host triple $host has no TSan runtime" ;;
esac

# rust-src is needed to rebuild std with the sanitizer (-Zbuild-std).
if ! cargo +nightly rustc -p rayon --lib -- --emit=metadata >/dev/null 2>&1; then
    skip "nightly toolchain present but cannot compile the workspace"
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src (installed)'; then
    skip "nightly rust-src component not installed (needed for -Zbuild-std)"
fi

echo "tsan: running pool + proto suites under ThreadSanitizer ($host)"
export RUSTFLAGS="-Zsanitizer=thread"
export RUSTDOCFLAGS="-Zsanitizer=thread"
# A dedicated target dir keeps sanitized artifacts out of the normal cache.
export CARGO_TARGET_DIR="target/tsan"
export TSAN_OPTIONS="halt_on_error=1"

cargo +nightly test -Zbuild-std --target "$host" -q -p rayon
cargo +nightly test -Zbuild-std --target "$host" -q -p fedclust-proto

echo "tsan: clean"
