#!/usr/bin/env bash
# Networked-federation smoke test: run FedClust through the real
# `fedclustd` server with a fleet of `fedclust-worker` processes over
# localhost TCP, SIGKILL the server mid-round, resume it on the same port
# (the surviving workers reconnect), and require the resumed --json output
# to be byte-identical to the in-process simulation at the same seed
# (DESIGN.md §11, EXPERIMENTS.md "Networked federation"). Exits nonzero
# on any divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d "${TMPDIR:-/tmp}/fedclust-net-smoke.XXXXXX")
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT
CKPT="$WORK/ckpt"

# Small enough to finish in seconds in release, big enough that the kill
# lands mid-run (4 clients x 6 rounds, per-round checkpoints).
ARGS=(--method fedclust --dataset fmnist --partition skew50
  --clients 4 --rounds 6 --epochs 1 --samples-per-class 50
  --seed 11 --json)

cargo build --release -q -p fedclust-cli
CLI=target/release/fedclust-cli
SERVER=target/release/fedclustd
WORKER=target/release/fedclust-worker

echo "-- reference run (in-process simulation)"
"$CLI" run "${ARGS[@]}" > "$WORK/reference.json"

echo "-- networked run: server + 4 workers over localhost TCP"
"$SERVER" --listen 127.0.0.1:0 --min-workers 2 \
  --checkpoint-dir "$CKPT" --checkpoint-every 1 --keep 8 \
  "${ARGS[@]}" > "$WORK/interrupted.json" 2> "$WORK/server.err" &
SRV=$!
PIDS+=("$SRV")
disown "$SRV"

ADDR=""
for _ in $(seq 1 500); do
  ADDR=$(sed -n 's/^fedclustd: listening on //p' "$WORK/server.err" | head -n1)
  [ -n "$ADDR" ] && break
  sleep 0.02
done
if [ -z "$ADDR" ]; then
  echo "ERROR: server never printed its listen address" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi
echo "   server at $ADDR"

for _ in 1 2 3 4; do
  "$WORKER" --connect "$ADDR" --io-timeout 1 --backoff-base 0.01 \
    >/dev/null 2>&1 &
  PIDS+=("$!")
  disown "$!"
done

echo "-- SIGKILL the server after the first durable checkpoint"
for _ in $(seq 1 3000); do
  gens=$(ls "$CKPT" 2>/dev/null | grep -c '^ckpt-.*\.bin$' || true)
  if [ "$gens" -ge 1 ]; then break; fi
  if ! kill -0 "$SRV" 2>/dev/null; then break; fi
  sleep 0.02
done
if kill -9 "$SRV" 2>/dev/null; then
  echo "   killed pid $SRV"
else
  echo "   run finished before the kill (machine too fast) — resume still exercised"
fi
wait "$SRV" 2>/dev/null || true

if ! ls "$CKPT"/ckpt-*.bin >/dev/null 2>&1; then
  echo "ERROR: no checkpoint generation was written" >&2
  exit 1
fi

echo "-- resume on the same port; surviving workers reconnect"
OUT=""
for _ in $(seq 1 50); do
  if "$SERVER" --listen "$ADDR" --min-workers 1 \
      --checkpoint-dir "$CKPT" --keep 8 --resume \
      "${ARGS[@]}" > "$WORK/resumed.json" 2> "$WORK/resume.err"; then
    OUT="$WORK/resumed.json"
    break
  fi
  # Bind likely failed while the freed port settles; retry shortly.
  sleep 0.2
done
if [ -z "$OUT" ]; then
  echo "ERROR: could not rebind $ADDR for the resumed server" >&2
  cat "$WORK/resume.err" >&2
  exit 1
fi

if diff -q "$WORK/reference.json" "$OUT" >/dev/null; then
  echo "OK: resumed networked output is byte-identical to the simulation"
else
  echo "ERROR: networked run diverged from the in-process simulation" >&2
  diff "$WORK/reference.json" "$OUT" >&2 || true
  exit 1
fi
