//! Codec conformance battery: every compression codec honors its
//! round-trip error bound, `none` stays a byte-identical pass-through,
//! compressed runs replay bit-identically, and top-k error-feedback
//! residuals stay finite over long horizons (persisted through the
//! checkpoint codec, PR 4's durability contract).

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::checkpoint::load_latest;
use fedclust_repro::fl::codec::{self, topk_k, CodecSpec};
use fedclust_repro::fl::engine::ClientUpdate;
use fedclust_repro::fl::methods::FedAvg;
use fedclust_repro::fl::{Checkpointer, FlConfig, FlMethod, Transport};
use std::path::PathBuf;

fn fd(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 6,
            samples_per_class: 12,
            train_fraction: 0.8,
            seed,
        },
    )
}

fn cfg_with_codec(seed: u64, rounds: usize, spec: &str) -> FlConfig {
    let mut cfg = FlConfig::tiny(seed);
    cfg.rounds = rounds;
    cfg.codec = CodecSpec::parse(spec).expect("codec spec parses");
    cfg
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedclust-codec-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic non-trivial payload spanning positive/negative values.
fn payload(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 37 % 19) as f32) * 0.3 - 2.5).collect()
}

#[test]
fn quantizer_round_trip_error_is_bounded_by_half_a_step() {
    let p = payload(257);
    let lo = p.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    for (s, levels) in [("q8", 255.0f64), ("q4", 15.0f64)] {
        let spec = CodecSpec::parse(s).unwrap();
        let enc = spec.encode(&p, None, None, None);
        let dec = codec::decode(&enc.wire, None).expect("decodes");
        assert_eq!(dec, enc.decoded, "{}: decoder drifted from encoder", s);
        let step = (hi - lo) / levels;
        for (x, d) in p.iter().zip(&dec) {
            assert!(
                ((*x as f64) - (*d as f64)).abs() <= step / 2.0 + 1e-6,
                "{}: |{} - {}| exceeds scale/2 = {}",
                s,
                x,
                d,
                step / 2.0
            );
        }
    }
}

#[test]
fn delta_quantizers_bound_error_on_the_delta_stream() {
    // Delta-coded quantization derives its grid from `payload − reference`,
    // so the round-trip bound holds on the reconstruction too.
    let p = payload(100);
    let reference: Vec<f32> = (0..100).map(|i| (i as f32) * 0.01 - 0.5).collect();
    let deltas: Vec<f64> = p
        .iter()
        .zip(&reference)
        .map(|(x, r)| (*x as f64) - (*r as f64))
        .collect();
    let lo = deltas.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = deltas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for (s, levels) in [("delta+q8", 255.0f64), ("delta+q4", 15.0f64)] {
        let spec = CodecSpec::parse(s).unwrap();
        let enc = spec.encode(&p, Some(&reference), None, None);
        let dec = codec::decode(&enc.wire, Some(&reference)).expect("decodes");
        assert_eq!(dec, enc.decoded, "{}", s);
        let step = (hi - lo) / levels;
        for (x, d) in p.iter().zip(&dec) {
            assert!(
                ((*x as f64) - (*d as f64)).abs() <= step / 2.0 + 1e-5,
                "{}: |{} - {}| exceeds scale/2",
                s,
                x,
                d
            );
        }
    }
}

#[test]
fn topk_reconstructs_kept_coordinates_exactly() {
    let p = payload(64);
    for frac in [0.05f32, 0.25, 0.5, 1.0] {
        let spec = CodecSpec::parse(&format!("topk:{}", frac)).unwrap();
        let enc = spec.encode(&p, None, None, None);
        let kept = codec::decode_kept_indices(&enc.wire).expect("kept indices");
        assert_eq!(kept.len(), topk_k(frac, p.len()), "frac {}", frac);
        assert!(kept.windows(2).all(|w| w[0] < w[1]), "indices ascend");
        let dec = codec::decode(&enc.wire, None).expect("decodes");
        // Kept coordinates round-trip bit-exactly (no residual, no
        // reference: the accumulated value IS the payload value); unsent
        // coordinates are exactly zero.
        for (i, (x, d)) in p.iter().zip(&dec).enumerate() {
            if kept.contains(&(i as u32)) {
                assert_eq!(x.to_bits(), d.to_bits(), "kept coord {} moved", i);
            } else {
                assert_eq!(*d, 0.0, "unsent coord {} must be zero", i);
            }
        }
    }
}

#[test]
fn topk_unsent_coordinates_revert_to_the_reference_exactly() {
    let p = payload(40);
    let reference: Vec<f32> = (0..40).map(|i| (i as f32) * 0.05 - 1.0).collect();
    let spec = CodecSpec::parse("topk:0.2").unwrap();
    let enc = spec.encode(&p, Some(&reference), None, None);
    let kept = codec::decode_kept_indices(&enc.wire).expect("kept indices");
    let dec = codec::decode(&enc.wire, Some(&reference)).expect("decodes");
    for (i, (r, d)) in reference.iter().zip(&dec).enumerate() {
        if !kept.contains(&(i as u32)) {
            assert_eq!(r.to_bits(), d.to_bits(), "unsent coord {} drifted", i);
        }
    }
}

#[test]
fn none_codec_is_a_byte_identical_pass_through() {
    // The identity codec must not touch the payload, draw randomness, or
    // change the legacy 4-bytes-per-scalar accounting.
    let mut cfg = FlConfig::tiny(0);
    cfg.codec = CodecSpec::none();
    let mut t = Transport::new(&cfg);
    let original = payload(50);
    let mut up = original.clone();
    let reference = vec![0.25f32; 50];
    assert!(t.uplink(0, 3, &mut up, Some(&reference), None));
    let bits: Vec<u32> = up.iter().map(|v| v.to_bits()).collect();
    let orig_bits: Vec<u32> = original.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, orig_bits, "payload bytes changed under codec none");
    assert_eq!(t.meter().total_mb(), 50.0 * 4.0 / 1.0e6);
    assert!(t.codec_residuals().is_empty());

    // The batch path keeps updates untouched and in order too.
    let updates: Vec<ClientUpdate> = (0..3)
        .map(|c| ClientUpdate {
            client: c,
            state: payload(50),
            weight: 1.0,
            steps: 1,
        })
        .collect();
    let kept = t.receive(1, updates.clone(), Some(&reference), None);
    assert_eq!(kept.len(), 3);
    for (a, b) in kept.iter().zip(&updates) {
        assert_eq!(a.client, b.client);
        let ab: Vec<u32> = a.state.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b.state.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }
}

#[test]
fn compressed_runs_replay_bit_identically() {
    let fd = fd(21);
    for spec in ["q8", "q4", "topk:0.1", "delta+q8"] {
        let cfg = cfg_with_codec(21, 3, spec);
        let a = FedAvg.run(&fd, &cfg);
        let b = FedAvg.run(&fd, &cfg);
        assert_eq!(a, b, "FedAvg replay diverged under codec {}", spec);
        let c = FedClust::default().run(&fd, &cfg);
        let d = FedClust::default().run(&fd, &cfg);
        assert_eq!(c, d, "FedClust replay diverged under codec {}", spec);
    }
}

#[test]
fn stochastic_rounding_replays_bit_identically_too() {
    let fd = fd(23);
    let cfg = cfg_with_codec(23, 3, "delta+q8+sr");
    let a = FedAvg.run(&fd, &cfg);
    let b = FedAvg.run(&fd, &cfg);
    assert_eq!(a, b, "q8+sr replay diverged");
}

#[test]
fn error_feedback_residuals_stay_finite_over_twenty_rounds() {
    // A long top-k horizon: the residual accumulator must neither blow up
    // nor go non-finite. The final checkpoint is the witness — it persists
    // the transport's exact residual state.
    let fd = fd(25);
    let cfg = cfg_with_codec(25, 20, "topk:0.1");
    let dir = tmpdir("ef-horizon");
    let mut ckpt = Checkpointer::new(&dir).keep(2);
    let result = FedAvg
        .run_resumable(&fd, &cfg, &mut ckpt)
        .expect("compressed run succeeds");
    assert!(result.final_acc.is_finite());

    let (cp, _) = load_latest(&dir).expect("final checkpoint loads");
    let cp = cp.expect("a checkpoint generation exists");
    assert_eq!(cp.next_round, 20);
    assert!(
        !cp.residuals.is_empty(),
        "top-k must have accumulated residual state"
    );
    for (client, res) in &cp.residuals {
        let norm: f64 = res.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        assert!(
            norm.is_finite(),
            "client {} residual norm went non-finite",
            client
        );
        assert!(res.iter().all(|v| v.is_finite()), "client {}", client);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
