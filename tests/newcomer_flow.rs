//! End-to-end newcomer incorporation (Algorithm 2) across crates: the
//! Table 6 scenario in miniature, including the comparison against handing
//! newcomers a plain global model.

use fedclust_repro::data::{DatasetProfile, FederatedDataset};
use fedclust_repro::fedclust::newcomer::{assign_cluster, incorporate_all};
use fedclust_repro::fedclust::proximity::WeightSelection;
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::methods::global::{train_global_model, GlobalVariant};
use fedclust_repro::fl::FlConfig;
use fedclust_repro::tensor::distance::Metric;

/// 12 federating clients + 4 newcomers, two clean groups, alternating.
fn setup() -> (
    FederatedDataset,
    Vec<fedclust_repro::data::ClientData>,
    Vec<usize>,
    FlConfig,
) {
    let groups: Vec<Vec<usize>> = (0..16)
        .map(|c| {
            if c % 2 == 0 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let full = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 16,
            samples_per_class: 60,
            train_fraction: 0.8,
            seed: 21,
        },
    );
    let truth = full.ground_truth_groups();
    let newcomer_truth = truth[12..].to_vec();
    let (fd, newcomers) = full.split_newcomers(4);
    let mut cfg = FlConfig::tiny(21);
    cfg.rounds = 5;
    cfg.sample_rate = 0.5;
    (fd, newcomers, newcomer_truth, cfg)
}

#[test]
fn newcomers_match_their_distribution_cluster() {
    let (fd, newcomers, newcomer_truth, cfg) = setup();
    let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
    assert_eq!(
        federation.outcome.num_clusters, 2,
        "setup requires 2 clusters"
    );
    let outcomes = incorporate_all(
        &federation,
        &newcomers,
        &cfg,
        WeightSelection::FinalLayer,
        Metric::L2,
        2,
        3,
    );
    // Clients alternate groups; federation.labels[0] is group 0's cluster.
    let cluster_of_group = [federation.labels[0], federation.labels[1]];
    for (o, &g) in outcomes.iter().zip(&newcomer_truth) {
        assert_eq!(o.cluster, cluster_of_group[g], "newcomer mis-assigned");
    }
}

#[test]
fn cluster_model_beats_global_model_for_newcomers() {
    let (fd, newcomers, _, cfg) = setup();
    let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
    let outcomes = incorporate_all(
        &federation,
        &newcomers,
        &cfg,
        WeightSelection::FinalLayer,
        Metric::L2,
        2,
        3,
    );
    let fedclust_avg: f64 =
        outcomes.iter().map(|o| o.accuracy as f64).sum::<f64>() / outcomes.len() as f64;

    // Baseline: newcomers receive the FedAvg global model, unpersonalized
    // (how the paper's Table 6 treats global methods).
    let global = train_global_model(&fd, &cfg, GlobalVariant::FedAvg);
    let mut template = federation.template.clone();
    template.set_state_vec(&global);
    let mut global_avg = 0.0f64;
    for nc in &newcomers {
        let idx: Vec<usize> = (0..nc.test.len()).collect();
        let (x, y) = nc.test.batch(&idx);
        global_avg += template.evaluate(x, &y).1 as f64;
    }
    global_avg /= newcomers.len() as f64;

    assert!(
        fedclust_avg > global_avg,
        "FedClust newcomers {:.3} must beat plain global {:.3}",
        fedclust_avg,
        global_avg
    );
}

#[test]
fn assign_cluster_is_consistent_with_membership() {
    let (fd, _, _, cfg) = setup();
    let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
    // Feeding a cluster's own representative back must return that cluster.
    for (ci, rep) in federation.representatives.iter().enumerate() {
        assert_eq!(assign_cluster(&federation, rep, Metric::L2), ci);
    }
}
