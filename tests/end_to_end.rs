//! End-to-end integration: every method runs on the same federation and
//! produces sane, deterministic telemetry; the paper's headline ordering
//! (clustered > global under label skew) holds on a small instance.

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::methods::{baselines, FlMethod};
use fedclust_repro::fl::FlConfig;

fn small_fd(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.2 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 8,
            samples_per_class: 40,
            train_fraction: 0.8,
            seed,
        },
    )
}

#[test]
fn all_ten_methods_run_and_report_sane_results() {
    let fd = small_fd(0);
    let mut cfg = FlConfig::tiny(0);
    cfg.rounds = 3;
    let mut methods = baselines();
    methods.push(Box::new(FedClust::default()));
    assert_eq!(methods.len(), 10);
    for method in &methods {
        let r = method.run(&fd, &cfg);
        assert_eq!(r.method, method.name());
        assert!(
            r.final_acc.is_finite() && (0.0..=1.0).contains(&r.final_acc),
            "{}: acc {}",
            r.method,
            r.final_acc
        );
        assert_eq!(r.per_client_acc.len(), fd.num_clients(), "{}", r.method);
        assert!(!r.history.is_empty(), "{}: empty history", r.method);
        for w in r.history.windows(2) {
            assert!(
                w[0].round < w[1].round,
                "{}: rounds not ascending",
                r.method
            );
            assert!(
                w[0].cum_mb <= w[1].cum_mb,
                "{}: comm not monotone",
                r.method
            );
        }
        if r.method == "Local" {
            assert_eq!(r.total_mb, 0.0, "Local must not communicate");
        } else {
            assert!(r.total_mb > 0.0, "{} must report communication", r.method);
        }
    }
}

#[test]
fn runs_are_bitwise_deterministic() {
    let fd = small_fd(1);
    let cfg = FlConfig::tiny(1);
    let method = FedClust::default();
    let a = method.run(&fd, &cfg);
    let b = method.run(&fd, &cfg);
    assert_eq!(a.final_acc, b.final_acc);
    assert_eq!(a.per_client_acc, b.per_client_acc);
    assert_eq!(a.num_clusters, b.num_clusters);
    let history_a: Vec<(usize, f64)> = a.history.iter().map(|r| (r.round, r.avg_acc)).collect();
    let history_b: Vec<(usize, f64)> = b.history.iter().map(|r| (r.round, r.avg_acc)).collect();
    assert_eq!(history_a, history_b);
}

#[test]
fn different_seeds_give_different_runs() {
    let cfg0 = FlConfig::tiny(100);
    let mut cfg1 = cfg0;
    cfg1.seed = 101;
    let fd0 = small_fd(100);
    let a = FedClust::default().run(&fd0, &cfg0);
    let b = FedClust::default().run(&fd0, &cfg1);
    assert_ne!(a.per_client_acc, b.per_client_acc);
}

#[test]
fn clustered_beats_global_under_strong_skew() {
    // The paper's central claim in miniature: with two clean client groups
    // a clustered method must beat a single global model.
    let groups: Vec<Vec<usize>> = (0..8)
        .map(|c| {
            if c < 4 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let fd = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 8,
            samples_per_class: 60,
            train_fraction: 0.8,
            seed: 2,
        },
    );
    let mut cfg = FlConfig::tiny(2);
    cfg.rounds = 6;
    cfg.sample_rate = 0.5;
    let fedclust = FedClust::default().run(&fd, &cfg);
    let fedavg = fedclust_repro::fl::methods::FedAvg.run(&fd, &cfg);
    assert!(
        fedclust.final_acc > fedavg.final_acc,
        "FedClust {:.3} must beat FedAvg {:.3} on two-group skew",
        fedclust.final_acc,
        fedavg.final_acc
    );
}
