//! Quality ablations for the design choices DESIGN.md §5 calls out:
//! weight selection, linkage criterion, distance metric, warm-up depth.
//! (The *cost* side of these ablations lives in `benches/ablation.rs`.)

use fedclust_repro::cluster::hac::Linkage;
use fedclust_repro::cluster::metrics::adjusted_rand_index;
use fedclust_repro::data::{DatasetProfile, FederatedDataset};
use fedclust_repro::fedclust::clustering::{cluster_clients, LambdaSelect};
use fedclust_repro::fedclust::proximity::{
    collect_partial_weights, proximity_matrix, WeightSelection,
};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::engine::init_model;
use fedclust_repro::fl::FlConfig;
use fedclust_repro::fl::FlMethod;
use fedclust_repro::tensor::distance::Metric;

/// 12 clients, two clean groups.
fn fd(seed: u64) -> (FederatedDataset, Vec<usize>) {
    let groups: Vec<Vec<usize>> = (0..12)
        .map(|c| {
            if c < 6 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let fd = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 12,
            samples_per_class: 50,
            train_fraction: 0.8,
            seed,
        },
    );
    let truth = fd.ground_truth_groups();
    (fd, truth)
}

fn weights(
    fd: &FederatedDataset,
    selection: WeightSelection,
    epochs: usize,
    seed: u64,
) -> Vec<Vec<f32>> {
    let mut cfg = FlConfig::tiny(seed);
    cfg.local_epochs = epochs;
    let template = init_model(fd, &cfg);
    let init = template.state_vec();
    collect_partial_weights(fd, &cfg, &template, &init, epochs, selection)
}

#[test]
fn every_linkage_recovers_two_clean_groups() {
    let (fd, truth) = fd(0);
    let w = weights(&fd, WeightSelection::FinalLayer, 2, 0);
    let m = proximity_matrix(&w, Metric::L2);
    for linkage in Linkage::ALL {
        let o = cluster_clients(&m, linkage, LambdaSelect::Auto);
        let ari = adjusted_rand_index(&o.labels, &truth);
        assert!(ari > 0.8, "{:?}: ARI {}", linkage, ari);
    }
}

#[test]
fn l2_and_cosine_both_separate_clean_groups() {
    // Metric ablation: both metrics must make the two groups separable —
    // assessed with a fixed 2-cut, independent of the λ heuristic (which
    // is calibrated on L2's distance scale; the paper's Eq. 3 uses L2).
    let (fd, truth) = fd(1);
    let w = weights(&fd, WeightSelection::FinalLayer, 2, 1);
    for metric in [Metric::L2, Metric::Cosine] {
        let m = proximity_matrix(&w, metric);
        let labels = fedclust_repro::cluster::hac::cluster_k(&m, Linkage::Average, 2);
        let ari = adjusted_rand_index(&labels, &truth);
        assert!(ari > 0.8, "{:?}: ARI {}", metric, ari);
    }
}

#[test]
fn auto_selection_beats_or_matches_gap_selection() {
    // On clean data both should be perfect; the relative-gap default must
    // never be the worse of the two.
    let (fd, truth) = fd(2);
    let w = weights(&fd, WeightSelection::FinalLayer, 2, 2);
    let m = proximity_matrix(&w, Metric::L2);
    let gap = cluster_clients(&m, Linkage::Average, LambdaSelect::AutoGap);
    let sil = cluster_clients(&m, Linkage::Average, LambdaSelect::Auto);
    let ari_gap = adjusted_rand_index(&gap.labels, &truth);
    let ari_sil = adjusted_rand_index(&sil.labels, &truth);
    assert!(ari_sil >= ari_gap - 1e-9, "sil {} gap {}", ari_sil, ari_gap);
}

#[test]
fn one_warmup_epoch_is_enough_on_clean_groups() {
    let (fd, truth) = fd(3);
    let w = weights(&fd, WeightSelection::FinalLayer, 1, 3);
    let m = proximity_matrix(&w, Metric::L2);
    let o = cluster_clients(&m, Linkage::Average, LambdaSelect::Auto);
    assert!(adjusted_rand_index(&o.labels, &truth) > 0.8);
}

#[test]
fn fedclust_full_weights_ablation_not_better_than_partial() {
    // End-to-end ablation: running FedClust with full-model uploads must
    // not beat the final-layer default (and costs ~4× the upload).
    let (fd, _) = fd(4);
    let mut cfg = FlConfig::tiny(4);
    cfg.rounds = 4;
    cfg.sample_rate = 0.5;
    let partial = FedClust::default().run(&fd, &cfg);
    let full = FedClust {
        selection: WeightSelection::FullModel,
        ..FedClust::default()
    }
    .run(&fd, &cfg);
    assert!(
        partial.final_acc >= full.final_acc - 0.05,
        "partial {} full {}",
        partial.final_acc,
        full.final_acc
    );
    assert!(partial.total_mb < full.total_mb);
}
