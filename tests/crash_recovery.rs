//! Crash-safe checkpointing: a run that checkpoints every round is
//! observationally identical to one that doesn't, a resumed run is
//! bit-identical to an uninterrupted one — in results *and* in the final
//! checkpoint bytes — and corrupted or truncated generations are detected
//! and skipped without panicking.

use std::path::PathBuf;

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::checkpoint::generation_file;
use fedclust_repro::fl::methods::{
    Cfl, FedAvg, FedDyn, FedNova, FedProx, Ifca, LgFedAvg, Pacfl, PerFedAvg, Scaffold,
};
use fedclust_repro::fl::{CheckpointError, Checkpointer, FlConfig, FlMethod, RunResult};

fn fd(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 6,
            samples_per_class: 12,
            train_fraction: 0.8,
            seed,
        },
    )
}

fn cfg(seed: u64, rounds: usize) -> FlConfig {
    let mut cfg = FlConfig::tiny(seed);
    cfg.rounds = rounds;
    cfg
}

/// Fresh per-test temp directory (removed on entry so reruns start clean).
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedclust-ckpt-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn all_methods() -> Vec<Box<dyn FlMethod>> {
    vec![
        Box::new(FedAvg),
        Box::new(FedProx::default()),
        Box::new(FedNova),
        Box::new(LgFedAvg::default()),
        Box::new(PerFedAvg::default()),
        Box::new(Cfl::default()),
        Box::new(Ifca::default()),
        Box::new(Pacfl::default()),
        Box::new(Scaffold::default()),
        Box::new(FedDyn::default()),
        Box::new(FedClust::default()),
    ]
}

/// Run `rounds` rounds with per-round checkpointing into `dir`.
fn run_checkpointed(
    m: &dyn FlMethod,
    fd: &FederatedDataset,
    cfg: &FlConfig,
    dir: &PathBuf,
    resume: bool,
) -> (Result<RunResult, CheckpointError>, Checkpointer) {
    let mut ckpt = Checkpointer::new(dir).keep(8).resume(resume);
    let result = m.run_resumable(fd, cfg, &mut ckpt);
    (result, ckpt)
}

#[test]
fn checkpointing_is_transparent_for_every_method() {
    let fd = fd(3);
    let cfg = cfg(3, 2);
    for m in all_methods() {
        let dir = tmpdir(&format!("transparent-{}", m.name().to_lowercase()));
        let plain = m.run(&fd, &cfg);
        let (checked, _) = run_checkpointed(m.as_ref(), &fd, &cfg, &dir, false);
        let checked = checked.expect("checkpointed run succeeds");
        assert_eq!(
            plain,
            checked,
            "{}: checkpointing changed the run",
            m.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_is_bit_identical_for_every_method() {
    let fd = fd(5);
    let full = cfg(5, 4);
    let partial = cfg(5, 2);
    for m in all_methods() {
        let name = m.name().to_lowercase();
        let dir_a = tmpdir(&format!("resume-a-{}", name));
        let dir_b = tmpdir(&format!("resume-b-{}", name));

        // Uninterrupted reference run, checkpointing every round.
        let (reference, _) = run_checkpointed(m.as_ref(), &fd, &full, &dir_a, false);
        let reference = reference.expect("reference run succeeds");

        // Interrupted run: stop after 2 of 4 rounds (simulating a kill at a
        // round boundary), then resume to the full horizon in what stands
        // in for a fresh process.
        let (partial_result, _) = run_checkpointed(m.as_ref(), &fd, &partial, &dir_b, false);
        partial_result.expect("partial run succeeds");
        let (resumed, ckpt) = run_checkpointed(m.as_ref(), &fd, &full, &dir_b, true);
        let resumed = resumed.expect("resumed run succeeds");
        assert!(
            ckpt.diagnostics().iter().any(|d| d.contains("resuming")),
            "{}: no resume diagnostic: {:?}",
            m.name(),
            ckpt.diagnostics()
        );

        assert_eq!(reference, resumed, "{}: resume diverged", m.name());

        // The final checkpoint generation must match byte for byte: same
        // model state, same meters, same history, same encoding.
        let last_a = std::fs::read(dir_a.join(generation_file(4))).expect("final gen in dir_a");
        let last_b = std::fs::read(dir_b.join(generation_file(4))).expect("final gen in dir_b");
        assert_eq!(
            last_a,
            last_b,
            "{}: final checkpoint bytes differ",
            m.name()
        );

        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

#[test]
fn fedclust_resume_restores_the_federation_itself() {
    let fd = fd(7);
    let full = cfg(7, 4);
    let partial = cfg(7, 2);
    let method = FedClust::default();
    let dir = tmpdir("fedclust-detailed");

    let mut off = Checkpointer::disabled();
    let (reference, federation) = method
        .run_detailed_resumable(&fd, &full, &mut off)
        .expect("reference run succeeds");

    let mut first = Checkpointer::new(&dir).keep(8);
    method
        .run_detailed_resumable(&fd, &partial, &mut first)
        .expect("partial run succeeds");
    let mut second = Checkpointer::new(&dir).keep(8).resume(true);
    let (resumed, restored) = method
        .run_detailed_resumable(&fd, &full, &mut second)
        .expect("resumed run succeeds");

    assert_eq!(reference, resumed);
    assert_eq!(federation.labels, restored.labels);
    assert_eq!(federation.cluster_states, restored.cluster_states);
    assert_eq!(federation.representatives, restored.representatives);
    assert_eq!(federation.init_state, restored.init_state);
    assert_eq!(federation.outcome, restored.outcome);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_newest_generation_falls_back_to_the_previous_one() {
    let fd = fd(9);
    let full = cfg(9, 3);
    let dir = tmpdir("fallback-corrupt");
    let (reference, _) = run_checkpointed(&FedAvg, &fd, &full, &dir, false);
    let reference = reference.expect("reference run succeeds");

    // Flip bytes in the middle of the newest generation: the checksum must
    // catch it and the loader must fall back to generation 2.
    let newest = dir.join(generation_file(3));
    let mut bytes = std::fs::read(&newest).expect("newest generation readable");
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 4] {
        *b ^= 0xFF;
    }
    std::fs::write(&newest, &bytes).expect("rewrite corrupted generation");

    let (resumed, ckpt) = run_checkpointed(&FedAvg, &fd, &full, &dir, true);
    let resumed = resumed.expect("resume after corruption succeeds");
    assert_eq!(reference, resumed);
    assert!(
        ckpt.diagnostics()
            .iter()
            .any(|d| d.contains("falling back")),
        "no fallback diagnostic: {:?}",
        ckpt.diagnostics()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_newest_generation_falls_back_to_the_previous_one() {
    let fd = fd(11);
    let full = cfg(11, 3);
    let dir = tmpdir("fallback-truncate");
    let (reference, _) = run_checkpointed(&Scaffold::default(), &fd, &full, &dir, false);
    let reference = reference.expect("reference run succeeds");

    // A torn write that the atomic rename would normally prevent: the
    // newest generation ends mid-payload.
    let newest = dir.join(generation_file(3));
    let bytes = std::fs::read(&newest).expect("newest generation readable");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("truncate generation");

    let (resumed, ckpt) = run_checkpointed(&Scaffold::default(), &fd, &full, &dir, true);
    let resumed = resumed.expect("resume after truncation succeeds");
    assert_eq!(reference, resumed);
    assert!(
        ckpt.diagnostics()
            .iter()
            .any(|d| d.contains("falling back")),
        "no fallback diagnostic: {:?}",
        ckpt.diagnostics()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_generations_corrupt_starts_fresh_and_still_matches() {
    let fd = fd(13);
    let full = cfg(13, 3);
    let dir = tmpdir("fallback-all-corrupt");
    let (reference, _) = run_checkpointed(&FedAvg, &fd, &full, &dir, false);
    let reference = reference.expect("reference run succeeds");

    for gen in 1..=3 {
        let path = dir.join(generation_file(gen));
        std::fs::write(&path, b"not a checkpoint").expect("clobber generation");
    }

    let (resumed, ckpt) = run_checkpointed(&FedAvg, &fd, &full, &dir, true);
    let resumed = resumed.expect("fresh start after total corruption succeeds");
    assert_eq!(reference, resumed);
    assert!(
        ckpt.diagnostics()
            .iter()
            .any(|d| d.contains("starting fresh")),
        "no fresh-start diagnostic: {:?}",
        ckpt.diagnostics()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_mismatch_is_rejected_not_silently_resumed() {
    let fd = fd(15);
    let dir = tmpdir("seed-mismatch");
    let (first, _) = run_checkpointed(&FedAvg, &fd, &cfg(15, 2), &dir, false);
    first.expect("first run succeeds");

    let mut ckpt = Checkpointer::new(&dir).resume(true);
    let err = FedAvg
        .run_resumable(&fd, &cfg(16, 2), &mut ckpt)
        .expect_err("resuming under a different seed must fail");
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "unexpected error: {:?}",
        err
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retention_keeps_only_the_newest_generations() {
    let fd = fd(17);
    let full = cfg(17, 5);
    let dir = tmpdir("retention");
    let mut ckpt = Checkpointer::new(&dir).keep(2);
    FedAvg
        .run_resumable(&fd, &full, &mut ckpt)
        .expect("run succeeds");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("checkpoint dir readable")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert_eq!(names, vec![generation_file(4), generation_file(5)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compressed_resume_is_bit_identical_including_residuals() {
    // Top-k error feedback threads mutable residual state through the
    // transport; a kill-and-resume must restore it exactly, or the
    // resumed trajectory (and the final checkpoint bytes, which embed
    // the residuals) silently drifts from the uninterrupted one.
    let fd = fd(23);
    for spec in ["topk:0.3", "delta+q8"] {
        let mut full = cfg(23, 4);
        full.codec = fedclust_repro::fl::CodecSpec::parse(spec).expect("codec spec parses");
        let mut partial = full;
        partial.rounds = 2;
        for m in [
            Box::new(FedAvg) as Box<dyn FlMethod>,
            Box::new(FedClust::default()),
        ] {
            let name = m.name().to_lowercase();
            let tag = spec.replace([':', '+', '.'], "-");
            let dir_a = tmpdir(&format!("codec-a-{tag}-{name}"));
            let dir_b = tmpdir(&format!("codec-b-{tag}-{name}"));

            let (reference, _) = run_checkpointed(m.as_ref(), &fd, &full, &dir_a, false);
            let reference = reference.expect("reference compressed run succeeds");

            let (partial_result, _) = run_checkpointed(m.as_ref(), &fd, &partial, &dir_b, false);
            partial_result.expect("partial compressed run succeeds");
            let (resumed, _) = run_checkpointed(m.as_ref(), &fd, &full, &dir_b, true);
            let resumed = resumed.expect("resumed compressed run succeeds");

            assert_eq!(
                reference,
                resumed,
                "{} ({}): compressed resume diverged",
                m.name(),
                spec
            );
            let last_a = std::fs::read(dir_a.join(generation_file(4))).expect("final gen in dir_a");
            let last_b = std::fs::read(dir_b.join(generation_file(4))).expect("final gen in dir_b");
            assert_eq!(
                last_a,
                last_b,
                "{} ({}): final checkpoint bytes (incl. residuals) differ",
                m.name(),
                spec
            );
            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
        }
    }
}
