//! Property-based tests over the cross-crate invariants the simulation
//! relies on. Per-crate structural properties live in each crate's own
//! `tests/` directory; these cover the composition points.

use fedclust_repro::cluster::hac::{agglomerative, Linkage};
use fedclust_repro::cluster::metrics::{adjusted_rand_index, normalized_mutual_info, purity};
use fedclust_repro::cluster::ProximityMatrix;
use fedclust_repro::data::Partition;
use fedclust_repro::fedclust::clustering::ClusteringOutcome;
use fedclust_repro::fedclust::SavedFederation;
use fedclust_repro::fl::engine::weighted_average;
use fedclust_repro::nn::models::ModelSpec;
use fedclust_repro::tensor::rng::{derive, streams};
use proptest::prelude::*;
use rand::SeedableRng;

fn labelings(n: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        proptest::collection::vec(0usize..4, n),
        proptest::collection::vec(0usize..4, n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted averages are convex combinations: every output coordinate
    /// lies within the min/max of the inputs.
    #[test]
    fn weighted_average_is_convex(
        states in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 5), 1..6),
        weights in proptest::collection::vec(0.1f32..5.0, 6),
    ) {
        let items: Vec<(&[f32], f32)> = states
            .iter()
            .zip(&weights)
            .map(|(s, &w)| (s.as_slice(), w))
            .collect();
        let avg = weighted_average(&items);
        for dim in 0..5 {
            let lo = states.iter().map(|s| s[dim]).fold(f32::INFINITY, f32::min);
            let hi = states.iter().map(|s| s[dim]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[dim] >= lo - 1e-4 && avg[dim] <= hi + 1e-4,
                "dim {}: {} outside [{}, {}]", dim, avg[dim], lo, hi);
        }
    }

    /// Averaging identical states is the identity.
    #[test]
    fn weighted_average_of_identical_states_is_identity(
        state in proptest::collection::vec(-10.0f32..10.0, 8),
        w1 in 0.1f32..5.0,
        w2 in 0.1f32..5.0,
    ) {
        let avg = weighted_average(&[(&state, w1), (&state, w2)]);
        for (a, b) in avg.iter().zip(&state) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Cutting a dendrogram at increasing λ never increases cluster count,
    /// and the extremes are n singletons / one cluster.
    #[test]
    fn dendrogram_cuts_are_monotone(points in proptest::collection::vec(-100.0f32..100.0, 2..12)) {
        let m = ProximityMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs());
        let d = agglomerative(&m, Linkage::Average);
        let max_dist = d.merges().last().map_or(0.0, |m| m.distance);
        let mut prev = usize::MAX;
        for step in 0..8 {
            let lambda = max_dist * step as f32 / 7.0;
            let k = d.num_clusters_at(lambda);
            prop_assert!(k <= prev, "λ {} gave {} clusters after {}", lambda, k, prev);
            prev = k;
        }
        prop_assert!(d.cut_at(max_dist + 1.0).iter().all(|&l| l == 0));
        let fine = d.cut_at(-1.0);
        let k_fine = fine.iter().copied().max().unwrap_or(0) + 1;
        prop_assert_eq!(k_fine, points.len());
    }

    /// Cluster metrics are symmetric in their arguments (ARI, NMI) and
    /// bounded; purity of a labeling against itself is 1.
    #[test]
    fn cluster_metric_axioms((a, b) in labelings(10)) {
        let ari_ab = adjusted_rand_index(&a, &b);
        let ari_ba = adjusted_rand_index(&b, &a);
        prop_assert!((ari_ab - ari_ba).abs() < 1e-9);
        prop_assert!(ari_ab <= 1.0 + 1e-9);

        let nmi_ab = normalized_mutual_info(&a, &b);
        let nmi_ba = normalized_mutual_info(&b, &a);
        prop_assert!((nmi_ab - nmi_ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi_ab));

        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((purity(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!(purity(&a, &b) > 0.0 && purity(&a, &b) <= 1.0 + 1e-9);
    }

    /// Every partition strategy produces an exact partition of the sample
    /// indices with no empty client, for any label layout.
    #[test]
    fn partitions_are_exact_and_nonempty(
        labels in proptest::collection::vec(0usize..5, 30..120),
        num_clients in 2usize..8,
        seed in 0u64..1000,
        strategy in 0usize..3,
    ) {
        let partition = match strategy {
            0 => Partition::Iid,
            1 => Partition::LabelSkew { fraction: 0.4 },
            _ => Partition::Dirichlet { alpha: 0.3 },
        };
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let assignment = partition.assign(&labels, 5, num_clients, &mut rng);
        prop_assert_eq!(assignment.len(), num_clients);
        let mut all: Vec<usize> = assignment.concat();
        all.sort_unstable();
        let expect: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(all, expect);
        prop_assert!(assignment.iter().all(|c| !c.is_empty()));
    }

    /// A [`SavedFederation`] survives serialize → deserialize → restore
    /// bit-identically, for arbitrary model specs, dataset geometries and
    /// cluster counts. This is the persistence contract the checkpoint
    /// subsystem's FedClust snapshots lean on.
    #[test]
    fn saved_federation_round_trips_bit_identically(
        hidden in 4usize..32,
        c in 1usize..4,
        h in 6usize..17,
        w in 6usize..17,
        classes in 2usize..11,
        k in 1usize..5,
        num_clients in 1usize..10,
        fills in proptest::collection::vec(-1000.0f32..1000.0, 6),
        lambda in 0.0f32..10.0,
    ) {
        let spec = ModelSpec::Mlp { hidden };
        // The RNG only seeds throwaway initial weights; restore overwrites
        // every parameter from the snapshot.
        let mut rng = derive(0, &[streams::MODEL_INIT]);
        let template = spec.build(c, h, w, classes, &mut rng);
        let state_len = template.state_len();
        // Deterministic per-slot values so equal vectors can't mask a
        // shuffled round trip.
        let fill = |len: usize, which: usize| -> Vec<f32> {
            let base = fills[which % fills.len()];
            (0..len).map(|i| base + i as f32 * 1.0e-3).collect()
        };
        let labels: Vec<usize> = (0..num_clients).map(|i| i % k).collect();
        let saved = SavedFederation {
            model_spec: spec,
            geometry: (c, h, w, classes),
            init_state: fill(state_len, 0),
            labels: labels.clone(),
            cluster_states: (0..k).map(|i| fill(state_len, i + 1)).collect(),
            representatives: (0..k).map(|i| fill(hidden + 1, i + 2)).collect(),
            outcome: ClusteringOutcome {
                labels,
                num_clusters: k,
                lambda,
            },
        };
        let back = SavedFederation::from_json(&saved.to_json()).unwrap();
        let restored = back.restore().unwrap();
        prop_assert_eq!(&restored.init_state, &saved.init_state);
        prop_assert_eq!(&restored.template.state_vec(), &saved.init_state);
        prop_assert_eq!(&restored.cluster_states, &saved.cluster_states);
        prop_assert_eq!(&restored.representatives, &saved.representatives);
        prop_assert_eq!(&restored.labels, &saved.labels);
        prop_assert_eq!(&restored.outcome, &saved.outcome);
        prop_assert_eq!(restored.model_spec, saved.model_spec);
        prop_assert_eq!(restored.geometry, saved.geometry);
    }
}
