//! Cross-crate clustering pipeline tests: warm-up training → partial
//! weights → proximity matrix → hierarchical clustering → ground-truth
//! agreement. This is the paper's §3.3 observation and §4.1 design choice
//! verified end to end.

use fedclust_repro::cluster::hac::Linkage;
use fedclust_repro::cluster::metrics::{adjusted_rand_index, normalized_mutual_info};
use fedclust_repro::data::{DatasetProfile, FederatedDataset};
use fedclust_repro::fedclust::clustering::{cluster_clients, LambdaSelect};
use fedclust_repro::fedclust::proximity::{
    collect_partial_weights, proximity_matrix, WeightSelection,
};
use fedclust_repro::fl::engine::init_model;
use fedclust_repro::fl::FlConfig;
use fedclust_repro::tensor::distance::Metric;

/// 12 clients in three label groups.
fn three_group_fd(seed: u64) -> (FederatedDataset, Vec<usize>) {
    let groups: Vec<Vec<usize>> = (0..12)
        .map(|c| match c % 3 {
            0 => (0..4).collect(),
            1 => (4..7).collect(),
            _ => (7..10).collect(),
        })
        .collect();
    let fd = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 12,
            samples_per_class: 60,
            train_fraction: 0.8,
            seed,
        },
    );
    let truth = fd.ground_truth_groups();
    (fd, truth)
}

fn ari_for_selection(
    fd: &FederatedDataset,
    truth: &[usize],
    selection: WeightSelection,
    epochs: usize,
) -> f64 {
    let mut cfg = FlConfig::tiny(7);
    cfg.local_epochs = epochs;
    let template = init_model(fd, &cfg);
    let init = template.state_vec();
    let weights = collect_partial_weights(fd, &cfg, &template, &init, epochs, selection);
    let m = proximity_matrix(&weights, Metric::L2);
    let outcome = cluster_clients(&m, Linkage::Average, LambdaSelect::AutoGap);
    adjusted_rand_index(&outcome.labels, truth)
}

#[test]
fn final_layer_clustering_recovers_three_groups() {
    let (fd, truth) = three_group_fd(0);
    let ari = ari_for_selection(&fd, &truth, WeightSelection::FinalLayer, 2);
    assert!(ari > 0.8, "final-layer ARI {}", ari);
}

#[test]
fn final_layer_is_at_least_as_good_as_full_model() {
    // §4.1's claim: the final layer alone carries the distribution signal;
    // mixing in the (much larger, more task-agnostic) lower-layer weights
    // must not be necessary for correct clustering.
    let (fd, truth) = three_group_fd(1);
    let partial = ari_for_selection(&fd, &truth, WeightSelection::FinalLayer, 2);
    let full = ari_for_selection(&fd, &truth, WeightSelection::FullModel, 2);
    assert!(
        partial >= full - 0.05,
        "partial ARI {} vs full ARI {}",
        partial,
        full
    );
}

#[test]
fn early_conv_block_is_less_informative_than_final_layer() {
    // Fig. 1's contrast: the first conv block's weights should separate the
    // groups worse than the classifier head.
    let (fd, truth) = three_group_fd(2);
    let final_ari = ari_for_selection(&fd, &truth, WeightSelection::FinalLayer, 2);
    let conv_ari = ari_for_selection(&fd, &truth, WeightSelection::Block(0), 2);
    assert!(
        final_ari >= conv_ari,
        "final {} must be >= early-conv {}",
        final_ari,
        conv_ari
    );
    assert!(final_ari > 0.5, "final-layer ARI too low: {}", final_ari);
}

#[test]
fn more_warmup_does_not_destroy_clustering() {
    let (fd, truth) = three_group_fd(3);
    for epochs in [1usize, 2, 4] {
        let ari = ari_for_selection(&fd, &truth, WeightSelection::FinalLayer, epochs);
        assert!(ari > 0.5, "epochs {}: ARI {}", epochs, ari);
    }
}

#[test]
fn nmi_agrees_with_ari_on_good_clusterings() {
    let (fd, truth) = three_group_fd(4);
    let mut cfg = FlConfig::tiny(4);
    cfg.local_epochs = 2;
    let template = init_model(&fd, &cfg);
    let init = template.state_vec();
    let weights =
        collect_partial_weights(&fd, &cfg, &template, &init, 2, WeightSelection::FinalLayer);
    let m = proximity_matrix(&weights, Metric::L2);
    let outcome = cluster_clients(&m, Linkage::Average, LambdaSelect::AutoGap);
    let ari = adjusted_rand_index(&outcome.labels, &truth);
    let nmi = normalized_mutual_info(&outcome.labels, &truth);
    if ari > 0.9 {
        assert!(nmi > 0.8, "high ARI {} but low NMI {}", ari, nmi);
    }
}
