//! End-to-end resilience: federations finish — finitely and
//! deterministically — under lossy uplinks, stragglers, and corrupted
//! updates, and the fault-free plan changes nothing.

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::methods::FedAvg;
use fedclust_repro::fl::{FaultPlan, FlConfig, FlMethod};

fn fd(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 8,
            samples_per_class: 20,
            train_fraction: 0.8,
            seed,
        },
    )
}

/// The ISSUE scenario: 30 % uplink loss, stragglers against a tight
/// deadline, and NaN/Inf/stale corruption, all at once.
fn stormy(seed: u64) -> FlConfig {
    let mut cfg = FlConfig::tiny(seed);
    cfg.rounds = 4;
    cfg.sample_rate = 0.75;
    cfg.faults = FaultPlan {
        uplink_loss: 0.3,
        straggler_rate: 0.4,
        straggler_mean_delay: 2.0,
        round_deadline: 1.0,
        corruption_rate: 0.4,
        downlink_loss: 0.2,
        max_downlink_retries: 1,
    };
    cfg
}

#[test]
fn fedavg_survives_the_storm_deterministically() {
    let fd = fd(0);
    let cfg = stormy(0);
    let a = FedAvg.run(&fd, &cfg);
    let b = FedAvg.run(&fd, &cfg);
    assert!(a.final_acc.is_finite(), "acc {}", a.final_acc);
    assert!(!a.history.is_empty());
    assert!(a.history.iter().all(|r| r.avg_acc.is_finite()));
    assert!(
        a.faults.faults_injected > 0,
        "the storm must actually inject faults: {:?}",
        a.faults
    );
    assert!(
        a.faults.updates_quarantined > 0,
        "NaN/Inf corruption must trip the quarantine: {:?}",
        a.faults
    );
    // Bit-identical replay: accuracies, history, comm bytes, telemetry.
    assert_eq!(a.per_client_acc, b.per_client_acc);
    assert_eq!(a.final_acc, b.final_acc);
    assert_eq!(a.history, b.history);
    assert_eq!(a.total_mb, b.total_mb);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn fedclust_survives_the_storm_deterministically() {
    let fd = fd(1);
    let cfg = stormy(1);
    let method = FedClust::default();
    let a = method.run(&fd, &cfg);
    let b = method.run(&fd, &cfg);
    assert!(a.final_acc.is_finite(), "acc {}", a.final_acc);
    assert!(!a.history.is_empty());
    assert!(a.history.iter().all(|r| r.avg_acc.is_finite()));
    assert!(a.num_clusters.unwrap() >= 1);
    assert!(a.faults.faults_injected > 0, "{:?}", a.faults);
    assert_eq!(a.per_client_acc, b.per_client_acc);
    assert_eq!(a.history, b.history);
    assert_eq!(a.total_mb, b.total_mb);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn fedclust_clusters_even_when_round0_uploads_are_lost() {
    // A third of the warm-up partial uploads never arrive; the one-shot
    // clustering must still produce a full client → cluster assignment.
    let fd = fd(2);
    let mut cfg = FlConfig::tiny(2);
    cfg.rounds = 2;
    cfg.faults = FaultPlan {
        uplink_loss: 0.35,
        ..FaultPlan::none()
    };
    let (result, federation) = FedClust::default().run_detailed(&fd, &cfg);
    assert_eq!(federation.labels.len(), fd.num_clients());
    let k = result.num_clusters.unwrap();
    assert!(k >= 1);
    assert!(federation.labels.iter().all(|&l| l < k));
    assert!(result.final_acc.is_finite());
    assert!(result.faults.uplink_losses > 0, "{:?}", result.faults);
}

#[test]
fn none_plan_matches_the_default_config_exactly() {
    let fd = fd(3);
    let mut with_plan = FlConfig::tiny(3);
    with_plan.rounds = 3;
    with_plan.faults = FaultPlan::none();
    let mut baseline = FlConfig::tiny(3);
    baseline.rounds = 3;

    for (a, b) in [
        (FedAvg.run(&fd, &with_plan), FedAvg.run(&fd, &baseline)),
        (
            FedClust::default().run(&fd, &with_plan),
            FedClust::default().run(&fd, &baseline),
        ),
    ] {
        assert_eq!(a.per_client_acc, b.per_client_acc);
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.history, b.history);
        assert_eq!(a.total_mb, b.total_mb);
        assert_eq!(a.faults, Default::default());
    }
}
