//! Exact communication accounting: each protocol's reported bytes must
//! match its analytic cost model. Tables 4 and 5 rest on these numbers.

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::proximity::WeightSelection;
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::engine::init_model;
use fedclust_repro::fl::methods::{FedAvg, Ifca, LgFedAvg, Pacfl};
use fedclust_repro::fl::{FaultPlan, FlConfig, FlMethod};

fn fd(seed: u64, clients: usize) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: clients,
            samples_per_class: 30,
            train_fraction: 0.8,
            seed,
        },
    )
}

const BYTES: f64 = 4.0;
const MB: f64 = 1.0e6;

#[test]
fn fedavg_cost_is_rounds_times_clients_times_two_states() {
    let fd = fd(0, 8);
    let mut cfg = FlConfig::tiny(0);
    cfg.rounds = 4;
    cfg.sample_rate = 0.5; // 4 clients per round
    let state = init_model(&fd, &cfg).state_len() as f64;
    let r = FedAvg.run(&fd, &cfg);
    let expected = 4.0 * 4.0 * 2.0 * state * BYTES / MB;
    assert!(
        (r.total_mb - expected).abs() < 1e-9,
        "reported {} expected {}",
        r.total_mb,
        expected
    );
}

#[test]
fn ifca_downlink_scales_with_k() {
    let fd = fd(1, 8);
    let mut cfg = FlConfig::tiny(1);
    cfg.rounds = 3;
    cfg.sample_rate = 0.5;
    let state = init_model(&fd, &cfg).state_len() as f64;
    for k in [2usize, 4] {
        let r = Ifca { k }.run(&fd, &cfg);
        let expected = 3.0 * 4.0 * (k as f64 + 1.0) * state * BYTES / MB;
        assert!(
            (r.total_mb - expected).abs() < 1e-9,
            "k={}: reported {} expected {}",
            k,
            r.total_mb,
            expected
        );
    }
}

#[test]
fn lg_cost_counts_only_global_blocks() {
    let fd = fd(2, 8);
    let mut cfg = FlConfig::tiny(2);
    cfg.rounds = 3;
    cfg.sample_rate = 0.5;
    let template = init_model(&fd, &cfg);
    let blocks = template.param_blocks();
    let split = blocks[blocks.len() - 2].offset;
    let comm_len = (template.num_params() - split) + template.extra_state_len();
    let r = LgFedAvg::default().run(&fd, &cfg);
    let expected = 3.0 * 4.0 * 2.0 * comm_len as f64 * BYTES / MB;
    assert!(
        (r.total_mb - expected).abs() < 1e-9,
        "reported {} expected {}",
        r.total_mb,
        expected
    );
}

#[test]
fn fedclust_round0_costs_broadcast_plus_partial_uploads() {
    let fd = fd(3, 8);
    let mut cfg = FlConfig::tiny(3);
    cfg.rounds = 2;
    cfg.sample_rate = 0.5;
    let template = init_model(&fd, &cfg);
    let state = template.state_len() as f64;
    let partial = WeightSelection::FinalLayer.upload_len(&template) as f64;
    let r = FedClust::default().run(&fd, &cfg);
    // Round 0: 8 × (state down + partial up). Rounds 1..2: 4 × 2 × state.
    let expected = (8.0 * (state + partial) + 2.0 * 4.0 * 2.0 * state) * BYTES / MB;
    assert!(
        (r.total_mb - expected).abs() < 1e-9,
        "reported {} expected {}",
        r.total_mb,
        expected
    );
}

#[test]
fn pacfl_upfront_cost_is_p_vectors_per_client() {
    let fd = fd(4, 6);
    let mut cfg = FlConfig::tiny(4);
    cfg.rounds = 0; // isolate the pre-federation cost
    let feature_dim = fd.channels * fd.height * fd.width;
    let r = Pacfl::default().run(&fd, &cfg);
    let expected = 6.0 * 3.0 * feature_dim as f64 * BYTES / MB;
    assert!(
        (r.total_mb - expected).abs() < 1e-9,
        "reported {} expected {}",
        r.total_mb,
        expected
    );
}

#[test]
fn failed_downlink_attempts_are_all_charged() {
    // Total downlink loss with r retries: every sampled client is attempted
    // 1 + r times (all charged); liveness then resurrects exactly one
    // client per round, which trains and uploads one state vector.
    let fd = fd(6, 8);
    let mut cfg = FlConfig::tiny(6);
    cfg.rounds = 3;
    cfg.sample_rate = 0.5; // 4 clients per round
    let retries = 2usize;
    cfg.faults = FaultPlan {
        downlink_loss: 1.0,
        max_downlink_retries: retries,
        ..FaultPlan::none()
    };
    let state = init_model(&fd, &cfg).state_len() as f64;
    let r = FedAvg.run(&fd, &cfg);
    let down = 3.0 * 4.0 * (1 + retries) as f64 * state;
    let up = 3.0 * 1.0 * state;
    let expected = (down + up) * BYTES / MB;
    assert!(
        (r.total_mb - expected).abs() < 1e-9,
        "reported {} expected {}",
        r.total_mb,
        expected
    );
    assert_eq!(r.faults.retries, 3 * 4 * retries);
    // 3 of the 4 clients stay unreachable each round (one is resurrected).
    assert_eq!(r.faults.downlink_failures, 3 * 3);
}

#[test]
fn lost_uplinks_cost_the_same_as_delivered_ones() {
    // Total uplink loss: the client transmitted either way, so the bill is
    // identical to the fault-free run — but nothing aggregates and the
    // model never moves.
    let fd = fd(7, 8);
    let mut cfg = FlConfig::tiny(7);
    cfg.rounds = 3;
    cfg.sample_rate = 0.5;
    let clean = FedAvg.run(&fd, &cfg);
    cfg.faults = FaultPlan {
        uplink_loss: 1.0,
        ..FaultPlan::none()
    };
    let lossy = FedAvg.run(&fd, &cfg);
    assert!(
        (lossy.total_mb - clean.total_mb).abs() < 1e-9,
        "lossy {} clean {}",
        lossy.total_mb,
        clean.total_mb
    );
    assert_eq!(lossy.faults.uplink_losses, 3 * 4);
    assert_eq!(lossy.faults.faults_injected, 3 * 4);
}

#[test]
fn fedclust_partial_upload_is_cheaper_than_one_fedavg_round() {
    // The one-shot clustering round must cost less than a full FedAvg
    // round over the same client set — the efficiency claim of §4.1.
    let fd = fd(5, 8);
    let cfg = FlConfig::tiny(5);
    let template = init_model(&fd, &cfg);
    let partial = WeightSelection::FinalLayer.upload_len(&template);
    assert!(partial * 4 < template.state_len());
}

#[test]
fn compressed_fedavg_wire_bytes_match_the_codec_layout() {
    // With a codec active the uplink is charged at encoded wire bytes
    // (header + payload + checksum), while the broadcast stays raw f32s.
    // Both sides are exactly predictable from the state length.
    let fd = fd(8, 8);
    for spec in ["q8", "q4", "topk:0.1", "delta+q8"] {
        let mut cfg = FlConfig::tiny(8);
        cfg.rounds = 4;
        cfg.sample_rate = 0.5; // 4 clients per round
        cfg.codec = fedclust_repro::fl::CodecSpec::parse(spec).expect("codec spec parses");
        let state = init_model(&fd, &cfg).state_len();
        let r = FedAvg.run(&fd, &cfg);
        let down = 4.0 * 4.0 * state as f64 * BYTES;
        let up = 4.0 * 4.0 * cfg.codec.wire_len(state) as f64;
        let expected = (down + up) / MB;
        assert!(
            (r.total_mb - expected).abs() < 1e-9,
            "{}: reported {} expected {}",
            spec,
            r.total_mb,
            expected
        );
    }
}

#[test]
fn compression_strictly_shrinks_the_bill() {
    // Every non-identity codec must beat raw f32 uploads on a real
    // grid-shaped run — for FedAvg and for FedClust's two-phase protocol.
    let fd = fd(9, 8);
    let mut base = FlConfig::tiny(9);
    base.rounds = 3;
    base.sample_rate = 0.5;
    let exact_avg = FedAvg.run(&fd, &base);
    let exact_clust = FedClust::default().run(&fd, &base);
    for spec in ["q8", "q4", "topk:0.1", "delta+q8"] {
        let mut cfg = base;
        cfg.codec = fedclust_repro::fl::CodecSpec::parse(spec).expect("codec spec parses");
        let avg = FedAvg.run(&fd, &cfg);
        assert!(
            avg.total_mb < exact_avg.total_mb,
            "{}: FedAvg compressed {} !< exact {}",
            spec,
            avg.total_mb,
            exact_avg.total_mb
        );
        let clust = FedClust::default().run(&fd, &cfg);
        assert!(
            clust.total_mb < exact_clust.total_mb,
            "{}: FedClust compressed {} !< exact {}",
            spec,
            clust.total_mb,
            exact_clust.total_mb
        );
    }
}
