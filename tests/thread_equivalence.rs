//! Cross-thread-count equivalence: the worker pool must be invisible.
//!
//! The parallel engine's contract (DESIGN.md §9) is that a run's every
//! observable — `RunResult` history, CommMeter totals, fault telemetry,
//! and the final checkpoint bytes — is **bit-identical** at any thread
//! count, because all randomness derives from `(seed, round, client)`
//! streams and every parallel reduction collects to index-ordered slots
//! before folding. These tests pin that contract for all 11 resumable
//! methods plus the Local baseline, including under an active fault plan
//! and across a kill-and-resume that switches thread counts, so the pool
//! cannot silently break the PR 2 (fault injection) or PR 4
//! (checkpointing) invariants.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use fedclust_repro::data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_repro::fedclust::FedClust;
use fedclust_repro::fl::checkpoint::generation_file;
use fedclust_repro::fl::methods::{
    Cfl, FedAvg, FedDyn, FedNova, FedProx, Ifca, LgFedAvg, LocalOnly, Pacfl, PerFedAvg, Scaffold,
};
use fedclust_repro::fl::{Checkpointer, FaultPlan, FlConfig, FlMethod, RunResult};

/// Serialise tests in this binary: the thread count is process-global, so
/// interleaved tests would blur which count a run used (results would
/// still match — that is the whole point — but failure diagnostics
/// wouldn't name the offending count).
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn fd(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_repro::data::federated::FederatedConfig {
            num_clients: 6,
            samples_per_class: 12,
            train_fraction: 0.8,
            seed,
        },
    )
}

fn cfg(seed: u64, rounds: usize) -> FlConfig {
    let mut cfg = FlConfig::tiny(seed);
    cfg.rounds = rounds;
    cfg
}

/// The 11 methods with resumable server state, plus FedClust's paper rig.
fn resumable_methods() -> Vec<Box<dyn FlMethod>> {
    vec![
        Box::new(FedAvg),
        Box::new(FedProx::default()),
        Box::new(FedNova),
        Box::new(LgFedAvg::default()),
        Box::new(PerFedAvg::default()),
        Box::new(Cfl::default()),
        Box::new(Ifca::default()),
        Box::new(Pacfl::default()),
        Box::new(Scaffold::default()),
        Box::new(FedDyn::default()),
        Box::new(FedClust::default()),
    ]
}

/// Everything, for plain-run equivalence (Local has no server state).
fn all_methods() -> Vec<Box<dyn FlMethod>> {
    let mut ms = resumable_methods();
    ms.push(Box::new(LocalOnly::default()));
    ms
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedclust-threads-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_at(threads: usize, m: &dyn FlMethod, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
    rayon::set_num_threads(threads);
    let r = m.run(fd, cfg);
    rayon::set_num_threads(1);
    r
}

/// Run with per-round checkpointing and return (result, newest checkpoint
/// file bytes).
fn run_checkpointed_at(
    threads: usize,
    m: &dyn FlMethod,
    fd: &FederatedDataset,
    cfg: &FlConfig,
    dir: &PathBuf,
    resume: bool,
) -> (RunResult, Vec<u8>) {
    rayon::set_num_threads(threads);
    let mut ckpt = Checkpointer::new(dir).keep(8).resume(resume);
    let result = m
        .run_resumable(fd, cfg, &mut ckpt)
        .expect("checkpointed run succeeds");
    rayon::set_num_threads(1);
    let newest = dir.join(generation_file(cfg.rounds));
    let bytes = std::fs::read(&newest).expect("final checkpoint generation reads");
    (result, bytes)
}

#[test]
fn every_method_is_bit_identical_across_thread_counts() {
    let _g = config_lock();
    let fd = fd(11);
    let cfg = cfg(11, 2);
    for m in all_methods() {
        let reference = run_at(1, m.as_ref(), &fd, &cfg);
        for threads in [2, 4] {
            let got = run_at(threads, m.as_ref(), &fd, &cfg);
            assert_eq!(
                reference,
                got,
                "{}: RunResult diverged between threads=1 and threads={}",
                m.name(),
                threads
            );
        }
        // Telemetry equality is implied by RunResult equality; assert the
        // interesting fields explicitly so a future RunResult refactor
        // cannot quietly drop them from the comparison.
        assert_eq!(
            reference.total_mb,
            run_at(4, m.as_ref(), &fd, &cfg).total_mb
        );
    }
}

#[test]
fn faulty_runs_are_bit_identical_across_thread_counts() {
    let _g = config_lock();
    let fd = fd(13);
    let mut cfg = cfg(13, 3);
    cfg.dropout_rate = 0.2;
    cfg.faults = FaultPlan {
        downlink_loss: 0.2,
        max_downlink_retries: 2,
        uplink_loss: 0.2,
        straggler_rate: 0.3,
        straggler_mean_delay: 0.8,
        round_deadline: 1.0,
        corruption_rate: 0.1,
    };
    for m in [
        Box::new(FedAvg) as Box<dyn FlMethod>,
        Box::new(FedClust::default()),
        Box::new(Scaffold::default()),
    ] {
        let reference = run_at(1, m.as_ref(), &fd, &cfg);
        let parallel = run_at(4, m.as_ref(), &fd, &cfg);
        assert_eq!(
            reference,
            parallel,
            "{}: faulty run diverged across thread counts",
            m.name()
        );
        assert_eq!(
            reference.faults,
            parallel.faults,
            "{}: fault telemetry diverged",
            m.name()
        );
    }
}

#[test]
fn final_checkpoint_bytes_are_identical_across_thread_counts() {
    let _g = config_lock();
    let fd = fd(17);
    let cfg = cfg(17, 2);
    for m in resumable_methods() {
        let name = m.name().to_lowercase();
        let dir1 = tmpdir(&format!("ckpt1-{name}"));
        let dir4 = tmpdir(&format!("ckpt4-{name}"));
        let (r1, bytes1) = run_checkpointed_at(1, m.as_ref(), &fd, &cfg, &dir1, false);
        let (r4, bytes4) = run_checkpointed_at(4, m.as_ref(), &fd, &cfg, &dir4, false);
        assert_eq!(r1, r4, "{}: checkpointed results diverged", m.name());
        assert_eq!(
            bytes1,
            bytes4,
            "{}: final checkpoint bytes diverged across thread counts",
            m.name()
        );
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir4);
    }
}

#[test]
fn kill_and_resume_across_a_thread_count_switch_is_bit_identical() {
    let _g = config_lock();
    let fd = fd(19);
    let full = cfg(19, 4);
    let partial = cfg(19, 2);
    for m in [
        Box::new(FedAvg) as Box<dyn FlMethod>,
        Box::new(FedClust::default()),
        Box::new(FedDyn::default()),
    ] {
        let name = m.name().to_lowercase();
        let dir_ref = tmpdir(&format!("resume-ref-{name}"));
        let dir_sw = tmpdir(&format!("resume-switch-{name}"));

        // Uninterrupted sequential reference.
        let (reference, ref_bytes) =
            run_checkpointed_at(1, m.as_ref(), &fd, &full, &dir_ref, false);

        // Kill at a round boundary while running parallel, then resume in
        // "a fresh process" at a *different* thread count.
        let (_partial, _) = run_checkpointed_at(4, m.as_ref(), &fd, &partial, &dir_sw, false);
        let (resumed, resumed_bytes) =
            run_checkpointed_at(2, m.as_ref(), &fd, &full, &dir_sw, true);

        assert_eq!(
            reference,
            resumed,
            "{}: resume across thread counts diverged",
            m.name()
        );
        assert_eq!(
            ref_bytes,
            resumed_bytes,
            "{}: final checkpoint bytes diverged after thread-switch resume",
            m.name()
        );
        let _ = std::fs::remove_dir_all(&dir_ref);
        let _ = std::fs::remove_dir_all(&dir_sw);
    }
}

#[test]
fn compressed_runs_are_bit_identical_across_thread_counts() {
    // The codec path adds per-client rng draws (stochastic rounding) and
    // mutable residual state; both key on `(seed, round, client)` and are
    // folded in client-index order, so the worker pool must stay
    // invisible under compression too.
    let _g = config_lock();
    let fd = fd(29);
    for spec in ["topk:0.3", "delta+q8+sr"] {
        let mut cfg = cfg(29, 3);
        cfg.codec = fedclust_repro::fl::CodecSpec::parse(spec).expect("codec spec parses");
        for m in [
            Box::new(FedAvg) as Box<dyn FlMethod>,
            Box::new(FedClust::default()),
        ] {
            let name = m.name().to_lowercase();
            let tag = spec.replace([':', '+', '.'], "-");
            let dir1 = tmpdir(&format!("codec1-{tag}-{name}"));
            let dir4 = tmpdir(&format!("codec4-{tag}-{name}"));
            let (r1, bytes1) = run_checkpointed_at(1, m.as_ref(), &fd, &cfg, &dir1, false);
            let (r4, bytes4) = run_checkpointed_at(4, m.as_ref(), &fd, &cfg, &dir4, false);
            assert_eq!(
                r1,
                r4,
                "{} ({}): compressed run diverged across thread counts",
                m.name(),
                spec
            );
            assert_eq!(
                bytes1,
                bytes4,
                "{} ({}): compressed checkpoint bytes diverged",
                m.name(),
                spec
            );
            let _ = std::fs::remove_dir_all(&dir1);
            let _ = std::fs::remove_dir_all(&dir4);
        }
    }
}
