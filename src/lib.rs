//! Workspace umbrella crate: re-exports the FedClust reproduction stack so
//! examples and integration tests can use a single dependency.
pub use fedclust;
pub use fedclust_cluster as cluster;
pub use fedclust_data as data;
pub use fedclust_fl as fl;
pub use fedclust_nn as nn;
pub use fedclust_tensor as tensor;
