//! Table formatting: render grids as the paper's tables.

use crate::runner::GridResults;
use fedclust_data::DatasetProfile;

/// Method ordering used by the paper's tables.
pub const METHOD_ORDER: [&str; 10] = [
    "Local",
    "FedAvg",
    "FedProx",
    "FedNova",
    "LG",
    "PerFedAvg",
    "CFL",
    "IFCA",
    "PACFL",
    "FedClust",
];

/// Dataset column order used by the paper's tables.
pub fn dataset_order() -> Vec<&'static str> {
    DatasetProfile::ALL.iter().map(|p| p.name()).collect()
}

/// Render the accuracy table (Tables 1–3): mean ± std of the final average
/// local test accuracy, in percent.
pub fn accuracy_table(grid: &GridResults, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", title));
    out.push_str(&format!(
        "| {:<9} | {:>16} | {:>16} | {:>16} | {:>16} |\n",
        "Method", "CIFAR-10", "CIFAR-100", "FMNIST", "SVHN"
    ));
    out.push_str(&format!(
        "|{}|{}|{}|{}|{}|\n",
        "-".repeat(11),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(18)
    ));
    for method in METHOD_ORDER {
        out.push_str(&format!("| {:<9} |", method));
        for dataset in dataset_order() {
            match grid.aggregate(dataset, method) {
                Some(agg) => out.push_str(&format!(
                    " {:>7.2} ± {:>5.2} |",
                    agg.mean_acc * 100.0,
                    agg.std_acc * 100.0
                )),
                None => out.push_str(&format!(" {:>16} |", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// Per-dataset target accuracy for the rounds/Mb-to-target tables. The
/// paper uses absolute targets (e.g. 80 % on CIFAR-10); since the synthetic
/// datasets have a different accuracy range, the target is set to 90 % of
/// the best method's mean final accuracy, which preserves the *ordering*
/// comparison the tables make.
pub fn targets(grid: &GridResults) -> Vec<(String, f64)> {
    dataset_order()
        .iter()
        .map(|&dataset| {
            let best = METHOD_ORDER
                .iter()
                .filter_map(|m| grid.aggregate(dataset, m))
                .map(|a| a.mean_acc)
                .fold(0.0f64, f64::max)
                .clamp(0.0, 1.0);
            (dataset.to_string(), (best * 0.9 * 100.0).floor() / 100.0)
        })
        .collect()
}

/// Render Table 4: communication rounds needed to reach the target
/// accuracy ("--" if a method never reaches it).
pub fn rounds_table(grid: &GridResults, title: &str) -> String {
    let targets = targets(grid);
    let mut out = String::new();
    out.push_str(&format!("{}\n", title));
    out.push_str(&format!(
        "| {:<9} | {:>9} | {:>9} | {:>9} | {:>9} |\n",
        "Method", "CIFAR-10", "CIFAR-100", "FMNIST", "SVHN"
    ));
    out.push_str(&format!("| {:<9} |", "Target"));
    for (_, t) in &targets {
        out.push_str(&format!(" {:>8.0}% |", t * 100.0));
    }
    out.push('\n');
    for method in METHOD_ORDER {
        out.push_str(&format!("| {:<9} |", method));
        for (dataset, target) in &targets {
            let cell = grid
                .aggregate(dataset, method)
                .and_then(|a| a.rounds_to_target(*target));
            match cell {
                Some(r) => out.push_str(&format!(" {:>9} |", r)),
                None => out.push_str(&format!(" {:>9} |", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render Table 5: communication cost in Mb to reach the target accuracy.
pub fn comm_table(grid: &GridResults, title: &str) -> String {
    let targets = targets(grid);
    let mut out = String::new();
    out.push_str(&format!("{}\n", title));
    out.push_str(&format!(
        "| {:<9} | {:>10} | {:>10} | {:>10} | {:>10} |\n",
        "Method", "CIFAR-10", "CIFAR-100", "FMNIST", "SVHN"
    ));
    out.push_str(&format!("| {:<9} |", "Target"));
    for (_, t) in &targets {
        out.push_str(&format!(" {:>9.0}% |", t * 100.0));
    }
    out.push('\n');
    for method in METHOD_ORDER {
        out.push_str(&format!("| {:<9} |", method));
        for (dataset, target) in &targets {
            let cell = grid
                .aggregate(dataset, method)
                .and_then(|a| a.mb_to_target(*target));
            match cell {
                Some(mb) => out.push_str(&format!(" {:>10.2} |", mb)),
                None => out.push_str(&format!(" {:>10} |", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render Fig. 3 as text series: per dataset, one `(round, accuracy)`
/// series per method.
pub fn fig3_series(grid: &GridResults) -> String {
    let mut out = String::new();
    for dataset in dataset_order() {
        out.push_str(&format!(
            "## {} — accuracy vs communication rounds\n",
            dataset
        ));
        for method in METHOD_ORDER {
            if let Some(agg) = grid.aggregate(dataset, method) {
                // Average the histories point-wise across seeds (rounds align
                // because eval cadence is deterministic).
                let first = &agg.runs[0].history;
                let series: Vec<String> = first
                    .iter()
                    .enumerate()
                    .map(|(i, rec)| {
                        let mean: f64 = agg
                            .runs
                            .iter()
                            .filter_map(|r| r.history.get(i))
                            .map(|r| r.avg_acc)
                            .sum::<f64>()
                            / agg.runs.len() as f64;
                        format!("({}, {:.3})", rec.round, mean)
                    })
                    .collect();
                out.push_str(&format!("  {:<9}: {}\n", method, series.join(" ")));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::GridEntry;
    use fedclust_fl::metrics::{RoundRecord, RunResult};

    fn grid() -> GridResults {
        let mut entries = Vec::new();
        for dataset in dataset_order() {
            for method in ["FedAvg", "FedClust"] {
                for seed in [1u64, 2] {
                    entries.push(GridEntry {
                        dataset: dataset.to_string(),
                        seed,
                        result: RunResult {
                            method: method.to_string(),
                            final_acc: if method == "FedClust" { 0.9 } else { 0.5 },
                            per_client_acc: vec![],
                            history: vec![
                                RoundRecord {
                                    round: 2,
                                    avg_acc: 0.4,
                                    cum_mb: 1.0,
                                },
                                RoundRecord {
                                    round: 4,
                                    avg_acc: if method == "FedClust" { 0.9 } else { 0.5 },
                                    cum_mb: 2.0,
                                },
                            ],
                            num_clusters: None,
                            total_mb: 2.0,
                            faults: Default::default(),
                        },
                    });
                }
            }
        }
        GridResults {
            partition: "skew20".into(),
            entries,
        }
    }

    #[test]
    fn accuracy_table_contains_all_rows() {
        let t = accuracy_table(&grid(), "Table 1");
        assert!(t.contains("FedClust"));
        assert!(t.contains("90.00"));
        assert!(t.contains("--"), "missing methods render as --");
    }

    #[test]
    fn targets_follow_best_method() {
        let ts = targets(&grid());
        for (_, t) in ts {
            assert!((t - 0.81).abs() < 0.011, "target {}", t);
        }
    }

    #[test]
    fn rounds_table_marks_unreachable() {
        let t = rounds_table(&grid(), "Table 4");
        // FedAvg (0.5) never reaches 0.81 target: row shows --.
        let fedavg_line = t.lines().find(|l| l.contains("FedAvg")).unwrap();
        assert!(fedavg_line.contains("--"));
        let fedclust_line = t.lines().find(|l| l.contains("FedClust")).unwrap();
        assert!(fedclust_line.contains("4"));
    }

    #[test]
    fn comm_table_reports_mb() {
        let t = comm_table(&grid(), "Table 5");
        let fedclust_line = t.lines().find(|l| l.contains("FedClust")).unwrap();
        assert!(fedclust_line.contains("2.00"));
    }

    #[test]
    fn fig3_series_renders_points() {
        let s = fig3_series(&grid());
        assert!(s.contains("(2, 0.400)"));
        assert!(s.contains("(4, 0.900)"));
    }
}
