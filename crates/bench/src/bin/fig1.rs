//! Fig. 1: layer-wise client distance matrices.
//!
//! Reproduces the paper's §3.3 observation study: 10 clients in two label
//! groups (classes {0..5} and {5..10}) each briefly train a VGG-style CNN;
//! for four layers (early conv, late conv, hidden FC, final FC) we print
//! the 10×10 pairwise L2 distance matrix of that layer's weights. The
//! block structure — invisible in conv layers, obvious in the final FC —
//! is FedClust's motivating observation. Each matrix also reports the ARI
//! of clustering on that layer alone.

use fedclust::clustering::{cluster_clients, LambdaSelect};
use fedclust::proximity::{collect_partial_weights, proximity_matrix, WeightSelection};
use fedclust_cluster::hac::Linkage;
use fedclust_cluster::metrics::adjusted_rand_index;
use fedclust_data::{DatasetProfile, FederatedDataset};
use fedclust_fl::engine::init_model;
use fedclust_fl::FlConfig;
use fedclust_nn::models::ModelSpec;

fn main() {
    let profile = DatasetProfile::Cifar10Like;
    let groups: Vec<Vec<usize>> = (0..10)
        .map(|c| {
            if c < 5 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let fd = FederatedDataset::build_grouped(
        profile,
        &groups,
        &fedclust_data::federated::FederatedConfig {
            num_clients: 10,
            samples_per_class: 100,
            train_fraction: 0.8,
            seed: 42,
        },
    );
    let cfg = FlConfig {
        model: ModelSpec::VggMini,
        local_epochs: 3,
        ..FlConfig::default()
    };
    let template = init_model(&fd, &cfg);
    let init_state = template.state_vec();
    let truth = fd.ground_truth_groups();

    // VGG-mini parameter blocks: conv1 conv2 conv3 conv4 fc1 fc2(final).
    let blocks = template.param_blocks();
    let picks: [(usize, &str); 4] = [
        (0, "(a) CL 1 (early conv)"),
        (2, "(b) CL 3 (late conv)"),
        (blocks.len() - 2, "(c) FC 1 (hidden fc)"),
        (blocks.len() - 1, "(d) FC 2 (final layer)"),
    ];

    println!(
        "Fig. 1: distance matrices from different layer weights (VGG-mini, 10 clients, 2 groups)"
    );
    println!("Ground-truth groups: clients 0-4 hold classes 0-4; clients 5-9 hold classes 5-9.\n");
    for (block, label) in picks {
        let weights = collect_partial_weights(
            &fd,
            &cfg,
            &template,
            &init_state,
            cfg.local_epochs,
            WeightSelection::Block(block),
        );
        let m = proximity_matrix(&weights, fedclust_tensor::distance::Metric::L2);
        let outcome = cluster_clients(&m, Linkage::Average, LambdaSelect::AutoGap);
        let ari = adjusted_rand_index(&outcome.labels, &truth);
        let max = m.max_distance().max(1e-9);

        println!(
            "{} — {} weights; HC clusters: {}, ARI vs truth: {:.2}",
            label, blocks[block].len, outcome.num_clusters, ari
        );
        // Normalised distances ×100 for a compact readable heat map.
        print!("      ");
        for j in 0..10 {
            print!(" c{:<3}", j);
        }
        println!();
        for i in 0..10 {
            print!("  c{:<3}", i);
            for j in 0..10 {
                print!(" {:>4.0}", m.get(i, j) / max * 100.0);
            }
            println!();
        }
        println!();
    }
    println!("(Distances are normalised to [0,100] per matrix; lower = more similar.)");
    println!("Expected shape: no block structure in (a)/(b); clear 5x5 blocks in (d).");
}
