//! Diagnostic: inspect FedClust's one-shot clustering on each dataset at
//! benchmark scale — the merge-distance profile of the dendrogram, the
//! cluster count each λ heuristic would choose, and its agreement (ARI)
//! with the ground-truth label-set groups.

use fedclust::clustering::{cluster_clients, LambdaSelect};
use fedclust::proximity::{collect_partial_weights, proximity_matrix};
use fedclust::FedClust;
use fedclust_bench::scale::Scale;
use fedclust_cluster::hac::agglomerative;
use fedclust_cluster::metrics::adjusted_rand_index;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::engine::init_model;

fn main() {
    let partition = Partition::LabelSkew { fraction: 0.2 };
    for profile in DatasetProfile::ALL {
        for seed in [42u64, 1042] {
            let scale = Scale::for_profile(profile, seed);
            let fd = FederatedDataset::build(profile, partition, &scale.federated);
            let cfg = scale.fl;
            let method = FedClust::default();
            let template = init_model(&fd, &cfg);
            let init = template.state_vec();
            let truth = fd.ground_truth_groups();
            let n_truth = truth.iter().copied().max().unwrap_or(0) + 1;

            let weights = collect_partial_weights(
                &fd,
                &cfg,
                &template,
                &init,
                method.warmup_epochs,
                method.selection,
            );
            let matrix = proximity_matrix(&weights, method.metric);
            let dendro = agglomerative(&matrix, method.linkage);
            println!(
                "## {} — {} clients, {} ground-truth groups",
                profile.name(),
                fd.num_clients(),
                n_truth
            );
            let d: Vec<f32> = dendro.merges().iter().map(|m| m.distance).collect();
            println!(
                "merge distances: min {:.3} q25 {:.3} median {:.3} q75 {:.3} max {:.3}",
                d.first().copied().unwrap_or(0.0),
                d[d.len() / 4],
                d[d.len() / 2],
                d[3 * d.len() / 4],
                d.last().copied().unwrap_or(0.0),
            );
            print!("profile: ");
            for v in d.iter() {
                print!("{:.3} ", v);
            }
            println!();
            for (name, select) in [
                ("auto-gap", LambdaSelect::AutoGap),
                ("auto-relgap", LambdaSelect::Auto),
            ] {
                let o = cluster_clients(&matrix, method.linkage, select);
                let ari = adjusted_rand_index(&o.labels, &truth);
                println!(
                    "{}: λ={:.3} → {} clusters, ARI {:.3}",
                    name, o.lambda, o.num_clusters, ari
                );
            }
            // Best achievable over all k-cuts, for reference.
            let mut best = (0usize, -1.0f64);
            for k in 1..fd.num_clients() {
                let labels = dendro.cut_k(k);
                let ari = adjusted_rand_index(&labels, &truth);
                if ari > best.1 {
                    best = (k, ari);
                }
            }
            println!(
                "seed {}: best k-cut vs truth: k={} ARI {:.3}\n",
                seed, best.0, best.1
            );
        }
    }
}
