//! Quick sanity check of the CIFAR-100-like column: runs FedAvg, Local
//! and FedClust at benchmark scale and prints their final accuracy — a
//! fast way to probe scale/difficulty changes without a full grid.

use fedclust::FedClust;
use fedclust_bench::scale::Scale;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{FedAvg, LocalOnly};
use fedclust_fl::FlMethod;
fn main() {
    let scale = Scale::for_profile(DatasetProfile::Cifar100Like, 42);
    let fd = FederatedDataset::build(
        DatasetProfile::Cifar100Like,
        Partition::LabelSkew { fraction: 0.2 },
        &scale.federated,
    );
    for m in [
        &FedAvg as &dyn FlMethod,
        &LocalOnly::default(),
        &FedClust::default(),
    ] {
        let r = m.run(&fd, &scale.fl);
        println!(
            "{}: {:.3} (k={:?}, {:.1} Mb)",
            r.method, r.final_acc, r.num_clusters, r.total_mb
        );
    }
}
