//! Fig. 4: test accuracy and number of clusters versus the clustering
//! threshold λ (non-IID label skew 20 %), one panel per dataset.
//!
//! Demonstrates the generalization/personalization trade-off: large λ
//! merges all clients into one cluster (FedAvg-like), small λ fragments
//! them into singletons (Local-like), and the best accuracy sits at an
//! intermediate cluster count.

use fedclust::lambda_sweep::{lambda_grid, sweep};
use fedclust::FedClust;
use fedclust_bench::scale::Scale;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};

fn main() {
    let partition = Partition::LabelSkew { fraction: 0.2 };
    println!("Fig. 4: accuracy and #clusters vs clustering threshold λ (Non-IID label skew 20%)\n");
    for profile in DatasetProfile::ALL {
        let seed = 42;
        let scale = Scale::for_profile(profile, seed);
        let fd = FederatedDataset::build(profile, partition, &scale.federated);
        let mut cfg = scale.fl;
        // The sweep retrains per λ; halve the rounds to keep it affordable.
        cfg.rounds = (cfg.rounds / 2).max(4);
        let method = FedClust::default();
        let grid = lambda_grid(&fd, &cfg, &method, 6);
        eprintln!(
            "[fig4] {}: sweeping {} λ values",
            profile.name(),
            grid.len()
        );
        let points = sweep(&fd, &cfg, &method, &grid);
        println!("## {}", profile.name());
        println!(
            "| {:>10} | {:>9} | {:>12} |",
            "λ", "#clusters", "accuracy (%)"
        );
        for p in &points {
            println!(
                "| {:>10.4} | {:>9} | {:>12.2} |",
                p.lambda,
                p.num_clusters,
                p.final_acc * 100.0
            );
        }
        let best = points
            .iter()
            .max_by(|a, b| a.final_acc.partial_cmp(&b.final_acc).unwrap())
            .unwrap();
        println!(
            "best: λ = {:.4} with {} clusters at {:.2}%\n",
            best.lambda,
            best.num_clusters,
            best.final_acc * 100.0
        );
    }
}
