//! Table 6: average local test accuracy of *newcomer* clients that join
//! after federation (non-IID label skew 20 %).
//!
//! Setup mirrors the paper: 80 % of clients federate; the remaining 20 %
//! join afterwards, receive a model according to each method's protocol,
//! personalize for 5 epochs where the method prescribes it (cluster and
//! personalized methods), and are evaluated on their local test sets.
//! Global baselines hand over the global model unpersonalized, as in the
//! paper. CFL is omitted from this table, as in the paper.

use fedclust::newcomer::incorporate_all;
use fedclust::proximity::WeightSelection;
use fedclust::FedClust;
use fedclust_bench::scale::{seeds, Scale};
use fedclust_data::{ClientData, DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::engine::{init_model, local_train};
use fedclust_fl::methods::global::{train_global_model, GlobalVariant};
use fedclust_fl::methods::{Ifca, LgFedAvg, Pacfl, PerFedAvg};
use fedclust_fl::FlConfig;
use fedclust_nn::optim::{Sgd, SgdConfig};
use fedclust_nn::Model;
use fedclust_tensor::distance::Metric;
use fedclust_tensor::linalg::subspace_distance_deg;

const PERSONALIZE_EPOCHS: usize = 5;

/// Start from `state`, personalize `epochs` on the newcomer's train split,
/// and return local test accuracy.
fn personalize_and_eval(
    template: &Model,
    state: &[f32],
    nc: &ClientData,
    cfg: &FlConfig,
    epochs: usize,
    id: usize,
) -> f32 {
    let mut model = template.clone();
    model.set_state_vec(state);
    if epochs > 0 {
        let mut opt = Sgd::new(SgdConfig {
            lr: cfg.lr,
            momentum: 0.5, // the paper's personalized-method momentum
            weight_decay: cfg.weight_decay,
        });
        local_train(
            &mut model,
            nc,
            &mut opt,
            epochs,
            cfg.batch_size,
            cfg.seed,
            3_000_000 + id,
            0,
        );
    }
    let idx: Vec<usize> = (0..nc.test.len()).collect();
    if idx.is_empty() {
        return 0.0;
    }
    let (x, y) = nc.test.batch(&idx);
    model.evaluate(x, &y).1
}

fn mean(v: &[f32]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
}

fn main() {
    let partition = Partition::LabelSkew { fraction: 0.2 };
    let methods = [
        "Local",
        "FedAvg",
        "FedProx",
        "FedNova",
        "LG",
        "PerFedAvg",
        "IFCA",
        "PACFL",
        "FedClust",
    ];
    // accs[method][dataset] = per-seed means
    let mut accs: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); DatasetProfile::ALL.len()]; methods.len()];

    for (di, profile) in DatasetProfile::ALL.into_iter().enumerate() {
        for &seed in &seeds() {
            let scale = Scale::for_profile(profile, seed);
            let full = FederatedDataset::build(profile, partition, &scale.federated);
            let n_new = (full.num_clients() / 5).max(1);
            let (fd, newcomers) = full.split_newcomers(n_new);
            let cfg = scale.fl;
            let template = init_model(&fd, &cfg);
            let init_state = template.state_vec();
            eprintln!(
                "[table6] {} seed {}: {} federated, {} newcomers",
                profile.name(),
                seed,
                fd.num_clients(),
                newcomers.len()
            );

            let mut record = |mi: usize, vals: Vec<f32>| {
                accs[mi][di].push(mean(&vals));
            };

            // Local: newcomers train alone from θ⁰ with a budget comparable
            // to a federated client's expected training.
            let budget = ((cfg.rounds as f32 * cfg.sample_rate * cfg.local_epochs as f32).round()
                as usize)
                .max(1);
            let local: Vec<f32> = newcomers
                .iter()
                .enumerate()
                .map(|(i, nc)| personalize_and_eval(&template, &init_state, nc, &cfg, budget, i))
                .collect();
            record(0, local);

            // Global baselines: newcomers evaluate the global model directly.
            for (mi, variant) in [
                (1, GlobalVariant::FedAvg),
                (2, GlobalVariant::FedProx { mu: 0.01 }),
                (3, GlobalVariant::FedNova),
            ] {
                let global = train_global_model(&fd, &cfg, variant);
                let vals: Vec<f32> = newcomers
                    .iter()
                    .enumerate()
                    .map(|(i, nc)| personalize_and_eval(&template, &global, nc, &cfg, 0, i))
                    .collect();
                record(mi, vals);
            }

            // LG: newcomer uses fresh local layers + trained global head.
            {
                let (_, art) = LgFedAvg::default().run_detailed(&fd, &cfg);
                let mut state = init_state.clone();
                state[art.split..].copy_from_slice(&art.global_part);
                let vals: Vec<f32> = newcomers
                    .iter()
                    .enumerate()
                    .map(|(i, nc)| {
                        personalize_and_eval(&template, &state, nc, &cfg, PERSONALIZE_EPOCHS, i)
                    })
                    .collect();
                record(4, vals);
            }

            // Per-FedAvg: personalize the meta-model.
            {
                let (_, global) = PerFedAvg::default().run_detailed(&fd, &cfg);
                let vals: Vec<f32> = newcomers
                    .iter()
                    .enumerate()
                    .map(|(i, nc)| {
                        personalize_and_eval(&template, &global, nc, &cfg, PERSONALIZE_EPOCHS, i)
                    })
                    .collect();
                record(5, vals);
            }

            // IFCA: newcomer picks the best of the k models by train loss.
            {
                let (_, states) = Ifca::default().run_detailed(&fd, &cfg);
                let vals: Vec<f32> = newcomers
                    .iter()
                    .enumerate()
                    .map(|(i, nc)| {
                        let best = (0..states.len())
                            .min_by(|&a, &b| {
                                let idx: Vec<usize> = (0..nc.train.len()).collect();
                                let (x, y) = nc.train.batch(&idx);
                                let la = {
                                    let mut m = template.clone();
                                    m.set_state_vec(&states[a]);
                                    m.evaluate(x.clone(), &y).0
                                };
                                let lb = {
                                    let mut m = template.clone();
                                    m.set_state_vec(&states[b]);
                                    m.evaluate(x, &y).0
                                };
                                la.partial_cmp(&lb).unwrap()
                            })
                            .unwrap_or(0);
                        personalize_and_eval(
                            &template,
                            &states[best],
                            nc,
                            &cfg,
                            PERSONALIZE_EPOCHS,
                            i,
                        )
                    })
                    .collect();
                record(6, vals);
            }

            // PACFL: newcomer's subspace vs member subspaces per cluster.
            {
                let pacfl = Pacfl::default();
                let (_, art) = pacfl.run_detailed(&fd, &cfg);
                let nc_fd_bases = {
                    // Compute newcomer bases via a temporary dataset view.
                    let tmp = FederatedDataset {
                        clients: newcomers.clone(),
                        ..fd.clone()
                    };
                    pacfl.client_bases(&tmp)
                };
                let k = art.states.len();
                let vals: Vec<f32> = newcomers
                    .iter()
                    .enumerate()
                    .map(|(i, nc)| {
                        let best = (0..k)
                            .min_by(|&a, &b| {
                                let da = cluster_distance(&nc_fd_bases[i], a, &art);
                                let db = cluster_distance(&nc_fd_bases[i], b, &art);
                                da.partial_cmp(&db).unwrap()
                            })
                            .unwrap_or(0);
                        personalize_and_eval(
                            &template,
                            &art.states[best],
                            nc,
                            &cfg,
                            PERSONALIZE_EPOCHS,
                            i,
                        )
                    })
                    .collect();
                record(7, vals);
            }

            // FedClust: Algorithm 2.
            {
                let (_, federation) = FedClust::default().run_detailed(&fd, &cfg);
                let outcomes = incorporate_all(
                    &federation,
                    &newcomers,
                    &cfg,
                    WeightSelection::FinalLayer,
                    Metric::L2,
                    1,
                    PERSONALIZE_EPOCHS,
                );
                record(8, outcomes.iter().map(|o| o.accuracy).collect());
            }
        }
    }

    println!(
        "Table 6: Average local test accuracy (%) of newcomer clients (Non-IID label skew 20%)"
    );
    println!(
        "| {:<9} | {:>16} | {:>16} | {:>16} | {:>16} |",
        "Method", "CIFAR-10", "CIFAR-100", "FMNIST", "SVHN"
    );
    for (mi, m) in methods.iter().enumerate() {
        print!("| {:<9} |", m);
        for xs in &accs[mi] {
            let (mean, std) = fedclust_fl::metrics::mean_std(xs);
            print!(" {:>7.2} ± {:>5.2} |", mean * 100.0, std * 100.0);
        }
        println!();
    }
}

/// Mean subspace distance from a newcomer basis to a cluster's members.
fn cluster_distance(
    basis: &fedclust_tensor::Tensor,
    cluster: usize,
    art: &fedclust_fl::methods::pacfl::PacflArtifacts,
) -> f32 {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for (ci, b) in art.labels.iter().zip(&art.bases) {
        if *ci == cluster {
            sum += subspace_distance_deg(basis, b);
            n += 1;
        }
    }
    if n == 0 {
        f32::INFINITY
    } else {
        sum / n as f32
    }
}
