//! Table 2: test accuracy of all methods under non-IID label skew (30 %).

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::accuracy_table;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::LabelSkew { fraction: 0.3 });
    print!(
        "{}",
        accuracy_table(
            &grid,
            "Table 2: Test accuracy (%) for Non-IID label skew (30%)"
        )
    );
}
