//! End-to-end `train_round` throughput: rounds/sec for FedAvg and
//! FedClust at 1, 2, and 4 worker threads, at the grid's default shape
//! (`Scale::for_profile`; `FEDCLUST_FAST=1` shrinks it for smoke runs).
//!
//! Emits `results/BENCH_parallel.json` so the perf trajectory is
//! machine-readable across PRs. On a single-core machine the sweep still
//! runs — the pool degrades gracefully — but no speedup is expected; the
//! JSON records `available_parallelism` so consumers can tell the two
//! apart. As a free cross-check, the run asserts that every thread count
//! produced a bit-identical `RunResult`.

use std::time::Instant;

use fedclust::FedClust;
use fedclust_bench::runner::results_dir;
use fedclust_bench::Scale;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{FedAvg, FlMethod};
use serde::Serialize;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct Sample {
    method: String,
    threads: usize,
    rounds: usize,
    seconds: f64,
    rounds_per_sec: f64,
    /// Throughput relative to the same method at 1 thread.
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// What the host offers; speedups only materialise when this exceeds 1.
    available_parallelism: usize,
    clients: usize,
    sample_rate: f32,
    rounds: usize,
    samples: Vec<Sample>,
}

fn main() {
    let seed = 42;
    let scale = Scale::for_profile(DatasetProfile::FmnistLike, seed);
    let fd = FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.2 },
        &scale.federated,
    );
    let methods: Vec<Box<dyn FlMethod>> = vec![Box::new(FedAvg), Box::new(FedClust::default())];

    let mut samples = Vec::new();
    for method in &methods {
        let mut baseline_rps = 0.0f64;
        let mut reference = None;
        for threads in THREAD_COUNTS {
            rayon::set_num_threads(threads);
            let t = Instant::now();
            let result = method.run(&fd, &scale.fl);
            let seconds = t.elapsed().as_secs_f64();
            let rounds_per_sec = scale.fl.rounds as f64 / seconds.max(1e-9);
            if threads == 1 {
                baseline_rps = rounds_per_sec;
            }
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(
                    r,
                    &result,
                    "{} diverged at {} threads — determinism contract broken",
                    method.name(),
                    threads
                ),
            }
            let speedup = rounds_per_sec / baseline_rps.max(1e-9);
            eprintln!(
                "[parallel] {} threads={}: {} rounds in {:.2}s ({:.3} rounds/s, {:.2}x vs 1 thread)",
                method.name(),
                threads,
                scale.fl.rounds,
                seconds,
                rounds_per_sec,
                speedup,
            );
            samples.push(Sample {
                method: method.name().to_string(),
                threads,
                rounds: scale.fl.rounds,
                seconds,
                rounds_per_sec,
                speedup_vs_1: speedup,
            });
        }
    }
    rayon::set_num_threads(1);

    let report = BenchReport {
        available_parallelism: rayon::available_parallelism(),
        clients: scale.federated.num_clients,
        sample_rate: scale.fl.sample_rate,
        rounds: scale.fl.rounds,
        samples,
    };
    let path = results_dir().join("BENCH_parallel.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write bench report");
    eprintln!("[parallel] wrote {}", path.display());
}
