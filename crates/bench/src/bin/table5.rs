//! Table 5: communication cost (Mb) needed to reach the target accuracy
//! under non-IID label skew (30 %). Shares the cached grid with `table2`.

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::comm_table;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::LabelSkew { fraction: 0.3 });
    print!(
        "{}",
        comm_table(
            &grid,
            "Table 5: Communication cost (Mb) to reach target accuracy (Non-IID label skew 30%)"
        )
    );
}
