//! Table 3: test accuracy of all methods under non-IID Dirichlet (0.1).

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::accuracy_table;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::Dirichlet { alpha: 0.1 });
    print!(
        "{}",
        accuracy_table(&grid, "Table 3: Test accuracy (%) for Non-IID Dir (0.1)")
    );
}
