//! Table 4: communication rounds needed to reach the target accuracy
//! under non-IID label skew (20 %). Shares the cached grid with `table1`
//! and `fig3`.

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::rounds_table;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::LabelSkew { fraction: 0.2 });
    print!(
        "{}",
        rounds_table(
            &grid,
            "Table 4: Rounds to reach target top-1 average local test accuracy (Non-IID 20%)"
        )
    );
}
