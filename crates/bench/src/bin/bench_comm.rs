//! Communication-efficiency sweep: wall-clock throughput and wire bytes
//! per round for FedAvg and FedClust under each upload codec, at the
//! grid's default shape (`Scale::for_profile`; `FEDCLUST_FAST=1` shrinks
//! it for smoke runs).
//!
//! Emits `results/BENCH_comm.json` so the compression trajectory is
//! machine-readable across PRs. As a free cross-check the run asserts
//! every non-identity codec bills strictly fewer bytes than `none` and
//! that each codec'd run replays bit-identically.

use std::time::Instant;

use fedclust::FedClust;
use fedclust_bench::runner::results_dir;
use fedclust_bench::Scale;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{FedAvg, FlMethod};
use fedclust_fl::CodecSpec;
use serde::Serialize;

const CODECS: [&str; 5] = ["none", "q8", "q4", "topk:0.1", "delta+q8"];

#[derive(Serialize)]
struct Sample {
    method: String,
    codec: String,
    rounds: usize,
    seconds: f64,
    rounds_per_sec: f64,
    total_mb: f64,
    bytes_per_round: f64,
    /// Wire bytes relative to the same method under codec `none`.
    ratio_vs_none: f64,
    final_acc: f64,
}

#[derive(Serialize)]
struct BenchReport {
    clients: usize,
    sample_rate: f32,
    rounds: usize,
    samples: Vec<Sample>,
}

fn main() {
    let seed = 42;
    let scale = Scale::for_profile(DatasetProfile::FmnistLike, seed);
    let fd = FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.2 },
        &scale.federated,
    );
    let methods: Vec<Box<dyn FlMethod>> = vec![Box::new(FedAvg), Box::new(FedClust::default())];

    let mut samples = Vec::new();
    for method in &methods {
        let mut exact_mb = 0.0f64;
        for codec in CODECS {
            let mut cfg = scale.fl;
            cfg.codec = CodecSpec::parse(codec).expect("codec spec parses");
            let t = Instant::now();
            let result = method.run(&fd, &cfg);
            let seconds = t.elapsed().as_secs_f64();
            assert_eq!(
                result,
                method.run(&fd, &cfg),
                "{} ({}): replay diverged — determinism contract broken",
                method.name(),
                codec
            );
            if codec == "none" {
                exact_mb = result.total_mb;
            } else {
                assert!(
                    result.total_mb < exact_mb,
                    "{} ({}): compressed bill {} not below exact {}",
                    method.name(),
                    codec,
                    result.total_mb,
                    exact_mb
                );
            }
            let rounds_per_sec = cfg.rounds as f64 / seconds.max(1e-9);
            let bytes_per_round = result.total_mb * 1.0e6 / cfg.rounds.max(1) as f64;
            let ratio = result.total_mb / exact_mb.max(1e-12);
            eprintln!(
                "[comm] {} codec={}: {:.3} MB total ({:.0} B/round, {:.2}x vs none), {:.3} rounds/s, acc {:.3}",
                method.name(),
                codec,
                result.total_mb,
                bytes_per_round,
                ratio,
                rounds_per_sec,
                result.final_acc,
            );
            samples.push(Sample {
                method: method.name().to_string(),
                codec: codec.to_string(),
                rounds: cfg.rounds,
                seconds,
                rounds_per_sec,
                total_mb: result.total_mb,
                bytes_per_round,
                ratio_vs_none: ratio,
                final_acc: result.final_acc,
            });
        }
    }

    let report = BenchReport {
        clients: scale.federated.num_clients,
        sample_rate: scale.fl.sample_rate,
        rounds: scale.fl.rounds,
        samples,
    };
    let path = results_dir().join("BENCH_comm.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write bench report");
    eprintln!("[comm] wrote {}", path.display());
}
