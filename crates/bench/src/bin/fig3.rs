//! Fig. 3: test accuracy versus communication rounds for non-IID label
//! skew (20 %), one series per method per dataset. Shares the cached grid
//! with `table1` and `table4`.

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::fig3_series;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::LabelSkew { fraction: 0.2 });
    println!("Fig. 3: Test accuracy vs communication rounds (Non-IID label skew 20%)\n");
    print!("{}", fig3_series(&grid));
}
