//! Table 1: test accuracy of all methods under non-IID label skew (20 %).

use fedclust_bench::runner::run_grid;
use fedclust_bench::tables::accuracy_table;
use fedclust_data::Partition;

fn main() {
    let grid = run_grid(Partition::LabelSkew { fraction: 0.2 });
    print!(
        "{}",
        accuracy_table(
            &grid,
            "Table 1: Test accuracy (%) for Non-IID label skew (20%)"
        )
    );
}
