//! Reproduction-scale experiment settings.
//!
//! The paper runs 100 clients / 10 % sampling / 200 rounds / 10 local
//! epochs on a GPU server. This reproduction's benchmarks default to a
//! single-CPU-core budget; EXPERIMENTS.md lists both parameter sets side
//! by side. `FEDCLUST_FAST=1` shrinks everything further for smoke tests.

use fedclust_data::federated::FederatedConfig;
use fedclust_data::DatasetProfile;
use fedclust_fl::FlConfig;
use fedclust_nn::models::ModelSpec;

/// Scale profile for one dataset's experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Dataset build settings.
    pub federated: FederatedConfig,
    /// FL loop settings.
    pub fl: FlConfig,
}

fn fast() -> bool {
    std::env::var("FEDCLUST_FAST").is_ok_and(|v| v == "1")
}

/// Seeds for mean ± std aggregation (paper: 3 runs). Override with
/// `FEDCLUST_SEEDS=n`.
pub fn seeds() -> Vec<u64> {
    let n: usize = std::env::var("FEDCLUST_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast() { 1 } else { 2 });
    (0..n as u64).map(|i| 42 + 1000 * i).collect()
}

impl Scale {
    /// The benchmark scale for one dataset profile.
    pub fn for_profile(profile: DatasetProfile, seed: u64) -> Scale {
        let f = fast();
        match profile {
            DatasetProfile::Cifar100Like => Scale {
                // ResNet-9 is ~10× a LeNet step, so the CIFAR-100 column
                // runs fewer, smaller rounds.
                federated: FederatedConfig {
                    num_clients: if f { 10 } else { 40 },
                    samples_per_class: if f { 20 } else { 50 },
                    train_fraction: 0.8,
                    seed,
                },
                fl: FlConfig {
                    model: ModelSpec::ResNet9,
                    rounds: if f { 2 } else { 20 },
                    sample_rate: 0.25,
                    local_epochs: 3,
                    batch_size: 10,
                    lr: 0.05,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    eval_every: 2,
                    seed,
                    dropout_rate: 0.0,
                    faults: fedclust_fl::FaultPlan::none(),
                    codec: fedclust_fl::CodecSpec::none(),
                },
            },
            _ => Scale {
                federated: FederatedConfig {
                    num_clients: if f { 10 } else { 50 },
                    samples_per_class: if f { 20 } else { 120 },
                    train_fraction: 0.8,
                    seed,
                },
                fl: FlConfig {
                    model: ModelSpec::LeNet5,
                    rounds: if f { 3 } else { 24 },
                    sample_rate: 0.2,
                    local_epochs: if f { 1 } else { 3 },
                    batch_size: 10,
                    lr: 0.05,
                    momentum: 0.9,
                    weight_decay: 0.0,
                    eval_every: 2,
                    seed,
                    dropout_rate: 0.0,
                    faults: fedclust_fl::FaultPlan::none(),
                    codec: fedclust_fl::CodecSpec::none(),
                },
            },
        }
    }
}
