//! The shared grid runner: (dataset × method × seed) sweeps with JSON
//! caching, so table and figure harnesses that view the same grid pay for
//! training exactly once.

use crate::scale::{seeds, Scale};
use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{baselines, FlMethod};
use fedclust_fl::metrics::{RunResult, SeedAggregate};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// One grid cell: a method's run on one dataset with one seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridEntry {
    /// Dataset display name.
    pub dataset: String,
    /// Seed used.
    pub seed: u64,
    /// The run's telemetry.
    pub result: RunResult,
}

/// All runs of one non-IID setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResults {
    /// Partition tag, e.g. `skew20`.
    pub partition: String,
    /// All cells.
    pub entries: Vec<GridEntry>,
}

impl GridResults {
    /// Aggregate one (dataset, method) cell across seeds.
    pub fn aggregate(&self, dataset: &str, method: &str) -> Option<SeedAggregate> {
        let runs: Vec<RunResult> = self
            .entries
            .iter()
            .filter(|e| e.dataset == dataset && e.result.method == method)
            .map(|e| e.result.clone())
            .collect();
        if runs.is_empty() {
            None
        } else {
            Some(SeedAggregate::from_runs(runs))
        }
    }

    /// The distinct method names present, in first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.result.method) {
                out.push(e.result.method.clone());
            }
        }
        out
    }
}

/// The ten methods of the paper's tables (nine baselines + FedClust).
pub fn all_methods() -> Vec<Box<dyn FlMethod>> {
    let mut methods = baselines();
    methods.push(Box::new(FedClust::default()));
    methods
}

/// The directory JSON artifacts land in (`results/` unless
/// `FEDCLUST_RESULTS` overrides it), created on first use.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FEDCLUST_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("cannot create results directory");
    p
}

/// Run (or load from cache) the full method × dataset × seed grid for one
/// non-IID partition setting.
pub fn run_grid(partition: Partition) -> GridResults {
    let tag = partition.tag();
    let path = results_dir().join(format!("grid_{}.json", tag));
    let refresh = std::env::var("FEDCLUST_REFRESH").is_ok_and(|v| v == "1");
    if !refresh {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(grid) = serde_json::from_str::<GridResults>(&text) {
                eprintln!(
                    "[grid {}] loaded cached results from {}",
                    tag,
                    path.display()
                );
                return grid;
            }
        }
    }

    let methods = all_methods();
    let mut entries = Vec::new();
    let seeds = seeds();
    let total = DatasetProfile::ALL.len() * seeds.len() * methods.len();
    let mut done = 0usize;
    let t0 = Instant::now();
    for profile in DatasetProfile::ALL {
        for &seed in &seeds {
            let scale = Scale::for_profile(profile, seed);
            let fd = FederatedDataset::build(profile, partition, &scale.federated);
            for method in &methods {
                let t = Instant::now();
                let result = method.run(&fd, &scale.fl);
                done += 1;
                eprintln!(
                    "[grid {}] {}/{} {} on {} (seed {}): acc {:.3} in {:.1}s (elapsed {:.0}s)",
                    tag,
                    done,
                    total,
                    method.name(),
                    profile.name(),
                    seed,
                    result.final_acc,
                    t.elapsed().as_secs_f64(),
                    t0.elapsed().as_secs_f64(),
                );
                entries.push(GridEntry {
                    dataset: profile.name().to_string(),
                    seed,
                    result,
                });
            }
        }
    }
    let grid = GridResults {
        partition: tag,
        entries,
    };
    let json = serde_json::to_string(&grid).expect("serialize grid");
    std::fs::write(&path, json).expect("write grid cache");
    eprintln!("[grid {}] cached to {}", grid.partition, path.display());
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_fl::metrics::RunResult;

    fn entry(dataset: &str, method: &str, seed: u64, acc: f64) -> GridEntry {
        GridEntry {
            dataset: dataset.to_string(),
            seed,
            result: RunResult {
                method: method.to_string(),
                final_acc: acc,
                per_client_acc: vec![],
                history: vec![],
                num_clusters: None,
                total_mb: 1.0,
                faults: Default::default(),
            },
        }
    }

    #[test]
    fn aggregate_filters_by_dataset_and_method() {
        let grid = GridResults {
            partition: "t".into(),
            entries: vec![
                entry("A", "FedAvg", 1, 0.5),
                entry("A", "FedAvg", 2, 0.7),
                entry("A", "FedClust", 1, 0.9),
                entry("B", "FedAvg", 1, 0.1),
            ],
        };
        let agg = grid.aggregate("A", "FedAvg").unwrap();
        assert_eq!(agg.runs.len(), 2);
        assert!((agg.mean_acc - 0.6).abs() < 1e-12);
        assert!(grid.aggregate("C", "FedAvg").is_none());
        assert!(grid.aggregate("A", "Nope").is_none());
    }

    #[test]
    fn methods_lists_in_first_seen_order() {
        let grid = GridResults {
            partition: "t".into(),
            entries: vec![
                entry("A", "FedAvg", 1, 0.5),
                entry("A", "FedClust", 1, 0.9),
                entry("B", "FedAvg", 1, 0.1),
            ],
        };
        assert_eq!(
            grid.methods(),
            vec!["FedAvg".to_string(), "FedClust".to_string()]
        );
    }

    #[test]
    fn all_methods_has_the_papers_ten() {
        let methods = all_methods();
        assert_eq!(methods.len(), 10);
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"FedClust"));
        assert!(names.contains(&"PACFL"));
        assert!(names.contains(&"Local"));
    }

    #[test]
    fn grid_round_trips_through_json() {
        let grid = GridResults {
            partition: "t".into(),
            entries: vec![entry("A", "FedAvg", 1, 0.5)],
        };
        let json = serde_json::to_string(&grid).unwrap();
        let back: GridResults = serde_json::from_str(&json).unwrap();
        assert_eq!(back.partition, "t");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].result.final_acc, 0.5);
    }
}
