//! # fedclust-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§5) at reproduction scale:
//!
//! | Binary   | Paper artefact | Output |
//! |----------|----------------|--------|
//! | `table1` | Table 1 | accuracy, non-IID label skew 20 % |
//! | `table2` | Table 2 | accuracy, non-IID label skew 30 % |
//! | `table3` | Table 3 | accuracy, non-IID Dir(0.1) |
//! | `table4` | Table 4 | rounds to target accuracy (skew 20 %) |
//! | `table5` | Table 5 | communication Mb to target accuracy (skew 30 %) |
//! | `table6` | Table 6 | newcomer client accuracy (skew 20 %) |
//! | `fig1`   | Fig. 1  | layer-wise client distance matrices |
//! | `fig3`   | Fig. 3  | accuracy vs rounds series (skew 20 %) |
//! | `fig4`   | Fig. 4  | accuracy & #clusters vs λ |
//!
//! Grid runs are cached as JSON under `results/`, so `table1`, `table4`
//! and `fig3` (which share the skew-20 grid) only pay for training once.
//! Set `FEDCLUST_REFRESH=1` to recompute, `FEDCLUST_FAST=1` for a quick
//! smoke-scale pass, and `FEDCLUST_SEEDS=n` to change the seed count.

pub mod runner;
pub mod scale;
pub mod tables;

pub use runner::{run_grid, GridEntry, GridResults};
pub use scale::Scale;
