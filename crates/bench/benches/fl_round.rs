//! End-to-end cost of one small federated run per method — the relative
//! per-round cost profile (e.g. IFCA's k-model evaluation overhead,
//! FedClust's negligible clustering overhead vs FedAvg) in one chart.

use criterion::{criterion_group, criterion_main, Criterion};
use fedclust::FedClust;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{Cfl, FedAvg, FedProx, Ifca, Pacfl};
use fedclust_fl::{FlConfig, FlMethod};

fn tiny_setup() -> (FederatedDataset, FlConfig) {
    let fd = FederatedDataset::build(
        DatasetProfile::FmnistLike,
        Partition::LabelSkew { fraction: 0.3 },
        &fedclust_data::federated::FederatedConfig {
            num_clients: 8,
            samples_per_class: 30,
            train_fraction: 0.8,
            seed: 9,
        },
    );
    let mut cfg = FlConfig::tiny(9);
    cfg.rounds = 2;
    (fd, cfg)
}

fn bench_methods(c: &mut Criterion) {
    let (fd, cfg) = tiny_setup();
    let mut g = c.benchmark_group("fl_run_2rounds_8clients");
    g.sample_size(10);
    let methods: Vec<(&str, Box<dyn FlMethod>)> = vec![
        ("fedavg", Box::new(FedAvg)),
        ("fedprox", Box::new(FedProx::default())),
        ("cfl", Box::new(Cfl::default())),
        ("ifca", Box::new(Ifca { k: 3 })),
        ("pacfl", Box::new(Pacfl::default())),
        ("fedclust", Box::new(FedClust::default())),
    ];
    for (name, method) in &methods {
        g.bench_function(*name, |b| b.iter(|| method.run(&fd, &cfg)));
    }
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
