//! Microbenchmarks of the numerical substrate: GEMM, im2col convolution,
//! softmax, SVD, proximity matrices and hierarchical clustering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedclust_cluster::hac::{agglomerative, Linkage};
use fedclust_cluster::ProximityMatrix;
use fedclust_tensor::conv::{im2col, Conv2dGeom};
use fedclust_tensor::distance::{pairwise_matrix, Metric};
use fedclust_tensor::linalg::svd;
use fedclust_tensor::matmul::matmul;
use fedclust_tensor::ops::softmax_rows;
use fedclust_tensor::Tensor;
use rand::{Rng, SeedableRng};

fn random(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape.to_vec(),
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = random(&[n, n], 1);
        let b = random(&[n, n], 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b))
        });
    }
    g.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = Conv2dGeom {
        in_channels: 3,
        in_h: 16,
        in_w: 16,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let img = random(&[3, 16, 16], 3);
    c.bench_function("im2col_3x16x16_k3", |b| b.iter(|| im2col(&img, &geom)));
}

/// The seed's GEMM inner loop (i-k-j order, per-element zero skip, no
/// packing or register tiling), kept verbatim as the "before" reference.
fn seed_gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Reference per-image convolution forward — the exact pre-batching code
/// path (per-image tensor copy, per-image im2col allocation, one seed-style
/// GEMM per image). This is the baseline the batched layer's speedup is
/// measured against.
fn conv_forward_per_image(weight: &Tensor, x: &Tensor, geom: &Conv2dGeom) -> Vec<f32> {
    let batch = x.dims()[0];
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    let c_out = weight.dims()[0];
    let ocols = geom.col_cols();
    let rows = geom.col_rows();
    let mut out = vec![0.0f32; batch * c_out * ocols];
    for b in 0..batch {
        let img = Tensor::from_vec(
            [geom.in_channels, geom.in_h, geom.in_w],
            x.data()[b * chw..(b + 1) * chw].to_vec(),
        );
        let cols = im2col(&img, geom);
        seed_gemm(
            weight.data(),
            cols.data(),
            &mut out[b * c_out * ocols..(b + 1) * c_out * ocols],
            c_out,
            rows,
            ocols,
        );
    }
    out
}

fn bench_conv2d(c: &mut Criterion) {
    use fedclust_nn::conv2d::Conv2d;
    use fedclust_nn::layer::Layer;

    // The two geometries the paper's models hit hardest: LeNet-5's first
    // conv (CIFAR input, 5x5 kernel) and a ResNet-9 interior conv (64
    // channels at 16x16, 3x3 kernel). Batch 32 throughout.
    let cases: [(&str, Conv2dGeom, usize); 2] = [
        (
            "lenet5_3x32x32_k5",
            Conv2dGeom {
                in_channels: 3,
                in_h: 32,
                in_w: 32,
                k_h: 5,
                k_w: 5,
                stride: 1,
                pad: 0,
            },
            6,
        ),
        (
            "resnet9_64x16x16_k3",
            Conv2dGeom {
                in_channels: 64,
                in_h: 16,
                in_w: 16,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            64,
        ),
    ];
    let batch = 32usize;

    let mut g = c.benchmark_group("conv2d_forward");
    g.sample_size(10);
    for (name, geom, c_out) in &cases {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut conv = Conv2d::new(*geom, *c_out, &mut rng);
        let x = random(&[batch, geom.in_channels, geom.in_h, geom.in_w], 8);
        g.bench_function(format!("batched/{}", name), |b| {
            b.iter(|| conv.forward(x.clone(), false))
        });
        let weight = conv.params()[0].value.clone();
        g.bench_function(format!("per_image/{}", name), |b| {
            b.iter(|| conv_forward_per_image(&weight, &x, geom))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("conv2d_backward");
    g.sample_size(10);
    for (name, geom, c_out) in &cases {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut conv = Conv2d::new(*geom, *c_out, &mut rng);
        let x = random(&[batch, geom.in_channels, geom.in_h, geom.in_w], 10);
        let dy = random(&[batch, *c_out, geom.out_h(), geom.out_w()], 11);
        g.bench_function(format!("batched/{}", name), |b| {
            b.iter(|| {
                conv.forward(x.clone(), true);
                conv.backward(dy.clone())
            })
        });
    }
    g.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let logits = random(&[64, 10], 4);
    c.bench_function("softmax_64x10", |b| b.iter(|| softmax_rows(&logits)));
}

fn bench_svd(c: &mut Criterion) {
    let a = random(&[128, 16], 5);
    c.bench_function("svd_128x16", |b| b.iter(|| svd(&a)));
}

fn bench_proximity_and_hac(c: &mut Criterion) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
    // 100 clients × final-layer-sized weight vectors (LeNet head ≈ 250).
    let vectors: Vec<Vec<f32>> = (0..100)
        .map(|_| (0..250).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    c.bench_function("proximity_matrix_100x250", |b| {
        b.iter(|| pairwise_matrix(&vectors, Metric::L2))
    });
    let full = pairwise_matrix(&vectors, Metric::L2);
    let m = ProximityMatrix::from_full(100, full);
    c.bench_function("hac_average_100", |b| {
        b.iter(|| agglomerative(&m, Linkage::Average))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_im2col, bench_conv2d, bench_softmax, bench_svd, bench_proximity_and_hac
}
criterion_main!(benches);
