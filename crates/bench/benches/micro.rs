//! Microbenchmarks of the numerical substrate: GEMM, im2col convolution,
//! softmax, SVD, proximity matrices and hierarchical clustering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedclust_cluster::hac::{agglomerative, Linkage};
use fedclust_cluster::ProximityMatrix;
use fedclust_tensor::conv::{im2col, Conv2dGeom};
use fedclust_tensor::distance::{pairwise_matrix, Metric};
use fedclust_tensor::linalg::svd;
use fedclust_tensor::matmul::matmul;
use fedclust_tensor::ops::softmax_rows;
use fedclust_tensor::Tensor;
use rand::{Rng, SeedableRng};

fn random(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape.to_vec(), (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = random(&[n, n], 1);
        let b = random(&[n, n], 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b))
        });
    }
    g.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = Conv2dGeom {
        in_channels: 3,
        in_h: 16,
        in_w: 16,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let img = random(&[3, 16, 16], 3);
    c.bench_function("im2col_3x16x16_k3", |b| b.iter(|| im2col(&img, &geom)));
}

fn bench_softmax(c: &mut Criterion) {
    let logits = random(&[64, 10], 4);
    c.bench_function("softmax_64x10", |b| b.iter(|| softmax_rows(&logits)));
}

fn bench_svd(c: &mut Criterion) {
    let a = random(&[128, 16], 5);
    c.bench_function("svd_128x16", |b| b.iter(|| svd(&a)));
}

fn bench_proximity_and_hac(c: &mut Criterion) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
    // 100 clients × final-layer-sized weight vectors (LeNet head ≈ 250).
    let vectors: Vec<Vec<f32>> = (0..100)
        .map(|_| (0..250).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    c.bench_function("proximity_matrix_100x250", |b| {
        b.iter(|| pairwise_matrix(&vectors, Metric::L2))
    });
    let full = pairwise_matrix(&vectors, Metric::L2);
    let m = ProximityMatrix::from_full(100, full);
    c.bench_function("hac_average_100", |b| {
        b.iter(|| agglomerative(&m, Linkage::Average))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_im2col, bench_softmax, bench_svd, bench_proximity_and_hac
}
criterion_main!(benches);
