//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! partial vs full weights for the proximity matrix (server-side cost),
//! linkage criteria, and warm-up depth. The companion *quality* ablation
//! (ARI of each choice) runs as an integration test in `tests/ablation.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use fedclust::clustering::{cluster_clients, LambdaSelect};
use fedclust::proximity::{collect_partial_weights, proximity_matrix, WeightSelection};
use fedclust_cluster::hac::Linkage;
use fedclust_data::{DatasetProfile, FederatedDataset};
use fedclust_fl::engine::init_model;
use fedclust_fl::FlConfig;
use fedclust_tensor::distance::Metric;

fn setup() -> (FederatedDataset, FlConfig) {
    let groups: Vec<Vec<usize>> = (0..10)
        .map(|c| {
            if c < 5 {
                (0..5).collect()
            } else {
                (5..10).collect()
            }
        })
        .collect();
    let fd = FederatedDataset::build_grouped(
        DatasetProfile::FmnistLike,
        &groups,
        &fedclust_data::federated::FederatedConfig {
            num_clients: 10,
            samples_per_class: 30,
            train_fraction: 0.8,
            seed: 3,
        },
    );
    let cfg = FlConfig::tiny(3);
    (fd, cfg)
}

/// Server-side cost of building the proximity matrix from partial vs full
/// weights — the computation FedClust's §4.1 argues should stay small.
fn bench_weight_selection(c: &mut Criterion) {
    let (fd, cfg) = setup();
    let template = init_model(&fd, &cfg);
    let init = template.state_vec();
    let partial =
        collect_partial_weights(&fd, &cfg, &template, &init, 1, WeightSelection::FinalLayer);
    let full = collect_partial_weights(&fd, &cfg, &template, &init, 1, WeightSelection::FullModel);

    let mut g = c.benchmark_group("proximity_build");
    g.sample_size(30);
    g.bench_function("final_layer", |b| {
        b.iter(|| proximity_matrix(&partial, Metric::L2))
    });
    g.bench_function("full_model", |b| {
        b.iter(|| proximity_matrix(&full, Metric::L2))
    });
    g.finish();
}

/// Cost of the HC step under each linkage criterion.
fn bench_linkage(c: &mut Criterion) {
    let (fd, cfg) = setup();
    let template = init_model(&fd, &cfg);
    let init = template.state_vec();
    let weights =
        collect_partial_weights(&fd, &cfg, &template, &init, 1, WeightSelection::FinalLayer);
    let matrix = proximity_matrix(&weights, Metric::L2);

    let mut g = c.benchmark_group("hc_linkage");
    g.sample_size(30);
    for linkage in Linkage::ALL {
        g.bench_function(linkage.tag(), |b| {
            b.iter(|| cluster_clients(&matrix, linkage, LambdaSelect::AutoGap))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_weight_selection, bench_linkage);
criterion_main!(benches);
