//! `fedclustd` — the networked federation server.
//!
//! The server owns everything except local training: sampling, fault
//! injection, codec accounting, aggregation, evaluation, and
//! checkpointing all run in-process exactly as the simulation does. Only
//! the per-client SGD is delegated, through the
//! [`RemoteTrainer`](fedclust_fl::engine::RemoteTrainer) hook, to a fleet
//! of `fedclust-worker` processes speaking the `fedclust-proto` TCP
//! protocol.
//!
//! Determinism: every training result is keyed by `(seed, round,
//! client)` on the worker side, so *which* worker computes a unit, in
//! what order, and after how many retries cannot perturb the run. The
//! networked `RunResult` is byte-identical to the in-process one by
//! construction; redispatches and reconnects are reported on stderr
//! only and never touch the meter or fault telemetry.
//!
//! Fault handling: a work unit leased to a connection that dies is
//! requeued with its attempt count bumped; once the shared
//! [`RetryPolicy`] budget is exhausted the client is written off for the
//! round and flows through the ordinary graceful-degradation path
//! (`weighted_average_or`, largest-cluster fallback). A per-round
//! deadline backstops the case where no worker ever returns.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fedclust_fl::codec;
use fedclust_fl::engine::{RemoteOutcome, RemoteRound, RemoteTrainer, RemoteUpdate};
use fedclust_proto::{
    read_msg, write_msg, Msg, ProtoError, PushBody, RetryPolicy, MODE_TRAIN, MODE_WARMUP,
    PROTO_VERSION,
};

use crate::net_args::ServeArgs;

/// How long an idle worker is told to wait before polling again.
const POLL_MILLIS: u32 = 20;
/// How long a `Busy` worker is told to hold its push.
const BUSY_MILLIS: u32 = 50;
/// Server-side read timeout; bounds how stale a dead connection can be.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// One unit of leased work: train `client` at `round` from `state`.
#[derive(Clone)]
struct WorkItem {
    mode: u8,
    round: u32,
    client: u32,
    epochs: u32,
    prox_mu: Option<f32>,
    state: Arc<Vec<f32>>,
    residual: Vec<f32>,
    /// Dispatch attempts so far (bumped when a lease-holder dies).
    attempt: u32,
}

impl WorkItem {
    fn key(&self) -> (u32, u32) {
        (self.round, self.client)
    }

    fn to_msg(&self) -> Msg {
        Msg::Work {
            mode: self.mode,
            round: self.round,
            client: self.client,
            epochs: self.epochs,
            prox_mu: self.prox_mu,
            state: (*self.state).clone(),
            residual: self.residual.clone(),
        }
    }
}

/// An accepted upload, buffered until the trainer absorbs it.
struct PushRecord {
    round: u32,
    client: u32,
    steps: u32,
    weight: f32,
    body: PushBody,
}

/// Counters reported on stderr at shutdown. Deliberately *not* part of
/// `RunResult`: network weather must never perturb the deterministic
/// output.
#[derive(Default)]
struct NetStats {
    connects: u64,
    redispatched: u64,
    written_off: u64,
    busy_replies: u64,
    duplicate_pushes: u64,
}

#[derive(Default)]
struct NetState {
    next_worker: u32,
    workers_alive: usize,
    workers_seen: usize,
    queue: VecDeque<WorkItem>,
    /// `(round, client)` → the lease-holding connection and its item.
    leases: BTreeMap<(u32, u32), (u64, WorkItem)>,
    /// Accepted-but-unabsorbed uploads (bounded by `--max-inflight`).
    buffer: Vec<PushRecord>,
    /// Keys the current trainer call still needs.
    expected: BTreeSet<(u32, u32)>,
    /// Keys already accepted this call (duplicate suppression).
    accepted: BTreeSet<(u32, u32)>,
    /// Clients written off this call (retry budget or deadline).
    lost: BTreeSet<u32>,
    /// Set once the run has finished; workers get `Done` on next pull.
    done: bool,
    stats: NetStats,
}

struct Shared {
    state: Mutex<NetState>,
    cv: Condvar,
    policy: RetryPolicy,
    max_inflight: usize,
    run_argv: Vec<String>,
}

/// What the server replies to a `Push`. Pure decision function so the
/// backpressure rule is unit-testable without sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushDecision {
    /// Record it and `Ack`.
    Accept,
    /// Already have it (or it is stale): `Ack` and discard — pushes are
    /// idempotent.
    Duplicate,
    /// Buffer full: typed `Busy`, worker retries the same push.
    Busy,
}

fn push_decision(
    expected: bool,
    already_accepted: bool,
    buffered: usize,
    max_inflight: usize,
) -> PushDecision {
    if !expected || already_accepted {
        PushDecision::Duplicate
    } else if buffered >= max_inflight {
        PushDecision::Busy
    } else {
        PushDecision::Accept
    }
}

/// Return every lease held by a dead connection to the queue (attempt
/// bumped) or write the client off once the retry budget is spent.
fn fail_leases(st: &mut NetState, conn_id: u64, policy: &RetryPolicy) {
    let keys: Vec<(u32, u32)> = st
        .leases
        .iter()
        .filter(|(_, (owner, _))| *owner == conn_id)
        .map(|(k, _)| *k)
        .collect();
    for key in keys {
        let (_, mut item) = st.leases.remove(&key).expect("lease vanished");
        if !st.expected.contains(&key) {
            continue; // stale lease from an already-settled unit
        }
        item.attempt += 1;
        if item.attempt >= policy.max_attempts {
            st.expected.remove(&key);
            st.lost.insert(key.1);
            st.stats.written_off += 1;
        } else {
            st.queue.push_back(item);
            st.stats.redispatched += 1;
        }
    }
}

/// Serve one worker connection: handshake, then answer pulls and pushes
/// until the connection dies or the run completes.
fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));

    // Handshake: exact version match or a typed rejection.
    let hello = loop {
        match read_msg(&mut stream) {
            Ok(m) => break m,
            Err(ProtoError::Io(ErrorKind::WouldBlock))
            | Err(ProtoError::Io(ErrorKind::TimedOut)) => continue,
            Err(_) => return,
        }
    };
    match hello {
        Msg::Hello { version } if version == PROTO_VERSION => {}
        Msg::Hello { version } => {
            let _ = write_msg(
                &mut stream,
                &Msg::Reject {
                    reason: format!("protocol version {} != {}", version, PROTO_VERSION),
                },
            );
            return;
        }
        _ => return, // first frame must be Hello
    }
    let worker_id = {
        let mut st = shared.state.lock().unwrap();
        st.next_worker += 1;
        st.workers_alive += 1;
        st.workers_seen += 1;
        st.stats.connects += 1;
        shared.cv.notify_all();
        st.next_worker
    };
    if write_msg(
        &mut stream,
        &Msg::Welcome {
            worker_id,
            argv: shared.run_argv.clone(),
        },
    )
    .is_err()
    {
        let mut st = shared.state.lock().unwrap();
        st.workers_alive -= 1;
        return;
    }

    loop {
        let msg = match read_msg(&mut stream) {
            Ok(m) => m,
            Err(ProtoError::Io(ErrorKind::WouldBlock))
            | Err(ProtoError::Io(ErrorKind::TimedOut)) => continue,
            Err(_) => break, // dead or hostile connection
        };
        let reply = match msg {
            Msg::PullWork => {
                let mut st = shared.state.lock().unwrap();
                if let Some(item) = st.queue.pop_front() {
                    let work = item.to_msg();
                    st.leases.insert(item.key(), (conn_id, item));
                    work
                } else if st.done {
                    Msg::Done
                } else {
                    Msg::Wait {
                        millis: POLL_MILLIS,
                    }
                }
            }
            Msg::Push {
                mode: _,
                round,
                client,
                steps,
                weight,
                body,
            } => {
                let mut st = shared.state.lock().unwrap();
                let key = (round, client);
                let decision = push_decision(
                    st.expected.contains(&key),
                    st.accepted.contains(&key),
                    st.buffer.len(),
                    shared.max_inflight,
                );
                match decision {
                    PushDecision::Accept => {
                        st.accepted.insert(key);
                        st.leases.remove(&key);
                        st.buffer.push(PushRecord {
                            round,
                            client,
                            steps,
                            weight,
                            body,
                        });
                        shared.cv.notify_all();
                        Msg::Ack { round, client }
                    }
                    PushDecision::Duplicate => {
                        st.stats.duplicate_pushes += 1;
                        st.leases.remove(&key);
                        Msg::Ack { round, client }
                    }
                    PushDecision::Busy => {
                        st.stats.busy_replies += 1;
                        Msg::Busy {
                            millis: BUSY_MILLIS,
                        }
                    }
                }
            }
            // Anything else mid-session is a protocol violation.
            _ => break,
        };
        if write_msg(&mut stream, &reply).is_err() {
            break;
        }
    }

    let mut st = shared.state.lock().unwrap();
    st.workers_alive -= 1;
    fail_leases(&mut st, conn_id, &shared.policy);
    shared.cv.notify_all();
}

/// The [`RemoteTrainer`] that farms work out over the socket fleet.
struct NetTrainer {
    shared: Arc<Shared>,
    round_deadline: Option<Duration>,
}

impl NetTrainer {
    /// Queue one unit per client and block until every unit is settled
    /// (delivered, written off, or past the round deadline). Returns the
    /// collected pushes keyed by client.
    fn dispatch(&self, mode: u8, req: &RemoteRound) -> (BTreeMap<u32, PushRecord>, Vec<usize>) {
        let state = Arc::new(req.start_state.to_vec());
        let mut residuals: BTreeMap<usize, Vec<f32>> = req.residuals.iter().cloned().collect();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.queue.clear();
            st.leases.clear();
            st.buffer.clear();
            st.expected.clear();
            st.accepted.clear();
            st.lost.clear();
            for &client in req.clients {
                let item = WorkItem {
                    mode,
                    round: req.round as u32,
                    client: client as u32,
                    epochs: req.epochs as u32,
                    prox_mu: req.prox_mu,
                    state: Arc::clone(&state),
                    residual: residuals.remove(&client).unwrap_or_default(),
                    attempt: 0,
                };
                st.expected.insert(item.key());
                st.queue.push_back(item);
            }
            self.shared.cv.notify_all();
        }

        let started = Instant::now();
        let mut collected: BTreeMap<u32, PushRecord> = BTreeMap::new();
        let mut st = self.shared.state.lock().unwrap();
        loop {
            for rec in std::mem::take(&mut st.buffer) {
                st.expected.remove(&(rec.round, rec.client));
                collected.insert(rec.client, rec);
            }
            if st.expected.is_empty() {
                break;
            }
            if let Some(deadline) = self.round_deadline {
                if started.elapsed() >= deadline {
                    // Deadline backstop: write off everything outstanding.
                    let remaining: Vec<(u32, u32)> = st.expected.iter().copied().collect();
                    for key in remaining {
                        st.lost.insert(key.1);
                        st.stats.written_off += 1;
                    }
                    st.expected.clear();
                    st.queue.clear();
                    st.leases.clear();
                    break;
                }
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap();
            st = guard;
        }
        let lost: Vec<usize> = st.lost.iter().map(|&c| c as usize).collect();
        st.lost.clear();
        st.accepted.clear();
        (collected, lost)
    }
}

impl RemoteTrainer for NetTrainer {
    fn train_remote(&self, req: RemoteRound) -> RemoteOutcome {
        let (mut collected, mut lost) = self.dispatch(MODE_TRAIN, &req);
        let mut updates = Vec::with_capacity(collected.len());
        for &client in req.clients {
            let Some(rec) = collected.remove(&(client as u32)) else {
                continue;
            };
            let (state, wire_bytes, residual) = match rec.body {
                PushBody::Raw(v) => (v, None, None),
                PushBody::Encoded { wire, residual } => {
                    match codec::decode(&wire, Some(req.start_state)) {
                        Ok(decoded) => (decoded, Some(wire.len()), Some(residual)),
                        // A checksum-valid frame with an undecodable codec
                        // body means a worker-side bug; degrade, don't die.
                        Err(_) => {
                            lost.push(client);
                            continue;
                        }
                    }
                }
            };
            updates.push(RemoteUpdate {
                client,
                steps: rec.steps as usize,
                weight: rec.weight,
                state,
                wire_bytes,
                residual,
            });
        }
        lost.sort_unstable();
        lost.dedup();
        RemoteOutcome { updates, lost }
    }

    fn warmup_remote(&self, req: RemoteRound) -> Vec<(usize, Vec<f32>)> {
        let (mut collected, _lost) = self.dispatch(MODE_WARMUP, &req);
        let mut out = Vec::with_capacity(collected.len());
        for &client in req.clients {
            let Some(rec) = collected.remove(&(client as u32)) else {
                continue;
            };
            // Warmup uploads are always raw full states; anything else is
            // a worker bug and the client is simply omitted (the caller
            // treats omissions as losses).
            if let PushBody::Raw(state) = rec.body {
                out.push((client, state));
            }
        }
        out
    }
}

/// Run the networked server: bind, accept workers, wait for the startup
/// barrier, then execute the ordinary `run` flow with training delegated
/// to the fleet. Returns exactly what the in-process `execute` would
/// print for the same argv.
pub fn serve(args: &ServeArgs) -> Result<String, String> {
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("fedclustd: cannot bind {}: {}", args.listen, e))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // Discovery line for scripts/tests (port 0 ⇒ OS-assigned).
    eprintln!("fedclustd: listening on {}", addr);

    let policy = RetryPolicy::from_retries(args.run.retries as u32)
        .with_backoff_base(Duration::from_secs_f64(args.backoff_base));
    let shared = Arc::new(Shared {
        state: Mutex::new(NetState::default()),
        cv: Condvar::new(),
        policy,
        max_inflight: args.max_inflight,
        run_argv: args.run_argv.clone(),
    });

    {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for (n, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { break };
                let shared = Arc::clone(&shared);
                let id = n as u64 + 1;
                std::thread::spawn(move || handle_conn(&shared, stream, id));
            }
        });
    }

    // Startup barrier: don't start round 0 until the fleet is up.
    {
        let mut st = shared.state.lock().unwrap();
        while st.workers_seen < args.min_workers {
            let (guard, _) = shared
                .cv
                .wait_timeout(st, Duration::from_millis(200))
                .unwrap();
            st = guard;
        }
    }
    eprintln!("fedclustd: {} worker(s) connected, starting run", {
        shared.state.lock().unwrap().workers_seen
    });

    let trainer = Arc::new(NetTrainer {
        shared: Arc::clone(&shared),
        round_deadline: (args.round_timeout > 0.0)
            .then(|| Duration::from_secs_f64(args.round_timeout)),
    });
    fedclust_fl::engine::install_remote_trainer(trainer);
    let result = crate::execute(&args.run);
    fedclust_fl::engine::clear_remote_trainer();

    // Let workers pull their `Done` before the process exits.
    {
        let mut st = shared.state.lock().unwrap();
        st.done = true;
        shared.cv.notify_all();
        let grace = Instant::now();
        while st.workers_alive > 0 && grace.elapsed() < Duration::from_secs(2) {
            let (guard, _) = shared
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap();
            st = guard;
        }
        let s = &st.stats;
        eprintln!(
            "fedclustd: net-stats connects={} redispatched={} written_off={} busy={} dup={}",
            s.connects, s.redispatched, s.written_off, s.busy_replies, s.duplicate_pushes
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_decision_truth_table() {
        use PushDecision::*;
        // Stale / repeated pushes are idempotent no matter the buffer.
        assert_eq!(push_decision(false, false, 0, 4), Duplicate);
        assert_eq!(push_decision(true, true, 0, 4), Duplicate);
        assert_eq!(push_decision(false, true, 99, 1), Duplicate);
        // Fresh push with room: accepted.
        assert_eq!(push_decision(true, false, 3, 4), Accept);
        // Buffer at capacity: typed backpressure.
        assert_eq!(push_decision(true, false, 4, 4), Busy);
        assert_eq!(push_decision(true, false, 7, 4), Busy);
    }

    fn item(round: u32, client: u32) -> WorkItem {
        WorkItem {
            mode: MODE_TRAIN,
            round,
            client,
            epochs: 1,
            prox_mu: None,
            state: Arc::new(vec![0.0]),
            residual: Vec::new(),
            attempt: 0,
        }
    }

    #[test]
    fn dead_lease_requeues_until_budget_then_writes_off() {
        let policy = RetryPolicy::from_retries(1); // 2 attempts
        let mut st = NetState::default();
        st.expected.insert((3, 7));
        st.leases.insert((3, 7), (42, item(3, 7)));

        fail_leases(&mut st, 42, &policy);
        assert_eq!(st.queue.len(), 1, "first death requeues");
        assert!(st.lost.is_empty());
        assert_eq!(st.queue[0].attempt, 1);

        let requeued = st.queue.pop_front().unwrap();
        st.leases.insert((3, 7), (43, requeued));
        fail_leases(&mut st, 43, &policy);
        assert!(st.queue.is_empty(), "budget exhausted");
        assert_eq!(st.lost.iter().copied().collect::<Vec<_>>(), vec![7]);
        assert!(!st.expected.contains(&(3, 7)));
    }

    #[test]
    fn dead_lease_for_settled_unit_is_dropped_silently() {
        let policy = RetryPolicy::from_retries(3);
        let mut st = NetState::default();
        // Unit already settled: not in `expected` any more.
        st.leases.insert((1, 2), (9, item(1, 2)));
        fail_leases(&mut st, 9, &policy);
        assert!(st.queue.is_empty());
        assert!(st.lost.is_empty());
    }

    #[test]
    fn fail_leases_only_touches_the_dead_connection() {
        let policy = RetryPolicy::from_retries(2);
        let mut st = NetState::default();
        st.expected.insert((0, 1));
        st.expected.insert((0, 2));
        st.leases.insert((0, 1), (1, item(0, 1)));
        st.leases.insert((0, 2), (2, item(0, 2)));
        fail_leases(&mut st, 1, &policy);
        assert_eq!(st.queue.len(), 1);
        assert_eq!(st.queue[0].client, 1);
        assert!(st.leases.contains_key(&(0, 2)), "live lease untouched");
    }
}
