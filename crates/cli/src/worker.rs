//! `fedclust-worker` — a networked client-fleet process.
//!
//! A worker is stateless between units of work: it connects, replays the
//! `run` argv the server ships in `Welcome` to rebuild the *identical*
//! dataset, config, and model template, then pulls `(round, client)`
//! units, trains them, and pushes the results back. All training
//! randomness is keyed by `(seed, round, client)` — never by worker
//! identity — so any worker can compute any unit at any attempt and the
//! result is bit-identical to the in-process simulation.
//!
//! Workers are built to outlive the server: a dead or stalled connection
//! (including a SIGKILLed server mid-round) is redialled under the shared
//! [`RetryPolicy`] backoff until the reconnect budget runs out, which is
//! what makes the kill-and-resume flow work end to end.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use fedclust_data::FederatedDataset;
use fedclust_fl::codec::{self, BaseCodec};
use fedclust_fl::engine::{init_model, local_train};
use fedclust_fl::faults::CRASH_EXIT_CODE;
use fedclust_fl::FlConfig;
use fedclust_nn::optim::Sgd;
use fedclust_nn::Model;
use fedclust_proto::{
    read_msg, write_msg, Msg, ProtoError, PushBody, RetryPolicy, MODE_WARMUP, PROTO_VERSION,
};

use crate::args::Args;
use crate::net_args::WorkerArgs;
use crate::{build_config, build_dataset};

/// Everything a worker derives from the server's `Welcome` argv. Cached
/// across reconnects: the argv is canonical, so an unchanged argv means
/// the dataset and template are still valid.
struct RunContext {
    argv: Vec<String>,
    fd: FederatedDataset,
    cfg: FlConfig,
    template: Model,
}

impl RunContext {
    fn build(argv: Vec<String>) -> Result<RunContext, String> {
        let args = Args::parse(&argv).map_err(|e| format!("bad server argv: {}", e))?;
        let fd = build_dataset(&args)?;
        let cfg = build_config(&args);
        let template = init_model(&fd, &cfg);
        Ok(RunContext {
            argv,
            fd,
            cfg,
            template,
        })
    }
}

/// Why a connection session ended.
enum SessionEnd {
    /// Server said `Done`: the run is complete.
    Done,
    /// Connection died or stalled: redial and resume.
    Lost,
}

/// Crash-injection hooks for the integration tests, mirroring the
/// checkpointer's `CrashPlan` discipline: exit with [`CRASH_EXIT_CODE`]
/// at a byte-precise point in the protocol.
struct DiePlan {
    /// Exit after this many *acknowledged* pushes.
    after: Option<usize>,
    /// Write half of this push's frame, then exit (torn upload).
    mid_push: Option<usize>,
}

/// Train one unit of work and build the push reply.
#[allow(clippy::too_many_arguments)]
fn run_unit(
    ctx: &RunContext,
    mode: u8,
    round: u32,
    client: u32,
    epochs: u32,
    prox_mu: Option<f32>,
    start_state: &[f32],
    residual: Vec<f32>,
) -> Msg {
    let client_usize = client as usize;
    let mut model = ctx.template.clone();
    model.set_state_vec(start_state);
    let mut opt = Sgd::new(ctx.cfg.sgd());
    if let Some(mu) = prox_mu {
        opt.set_prox(mu, model.param_tensors());
    }
    let data = &ctx.fd.clients[client_usize];
    let steps = local_train(
        &mut model,
        data,
        &mut opt,
        epochs as usize,
        ctx.cfg.batch_size,
        ctx.cfg.seed,
        client_usize,
        round as usize,
    );
    let payload = model.state_vec();
    let weight = data.train_samples() as f32;

    let body = if mode == MODE_WARMUP || ctx.cfg.codec.is_none() {
        // Warmup always ships the raw full state: the server keeps the
        // partial-weight extraction (and its uplink accounting) local so
        // the round-0 path matches the simulation exactly.
        PushBody::Raw(payload)
    } else {
        let residual_in = match ctx.cfg.codec.base {
            BaseCodec::TopK(_) => Some(residual),
            _ => None,
        };
        let (enc, residual_out) = codec::encode_for_upload(
            ctx.cfg.codec,
            ctx.cfg.seed,
            round as usize,
            client_usize,
            &payload,
            Some(start_state),
            residual_in,
        );
        PushBody::Encoded {
            wire: enc.wire,
            residual: residual_out.unwrap_or_default(),
        }
    };
    Msg::Push {
        mode,
        round,
        client,
        steps: steps as u32,
        weight,
        body,
    }
}

/// Send a push, honouring `Busy` backpressure and the die-mid-push test
/// hook. Returns `Ok(true)` when acked.
fn push_with_backpressure(
    stream: &mut TcpStream,
    push: &Msg,
    pushes_done: usize,
    die: &DiePlan,
) -> Result<(), ProtoError> {
    if die.mid_push == Some(pushes_done + 1) {
        // Torn upload: half a frame, then a hard crash. The server must
        // see a framing error, requeue the lease, and degrade gracefully.
        let bytes = push.encode();
        let half = bytes.len() / 2;
        let _ = stream.write_all(&bytes[..half]);
        let _ = stream.flush();
        std::process::exit(CRASH_EXIT_CODE);
    }
    loop {
        write_msg(stream, push)?;
        match read_msg(stream)? {
            Msg::Ack { .. } => return Ok(()),
            Msg::Busy { millis } => {
                std::thread::sleep(Duration::from_millis(millis as u64));
                continue;
            }
            _ => return Err(ProtoError::Io(std::io::ErrorKind::InvalidData)),
        }
    }
}

/// One connection session: handshake, then pull/train/push until the
/// server finishes or the connection dies.
fn session(
    args: &WorkerArgs,
    ctx_cache: &mut Option<RunContext>,
    pushes_done: &mut usize,
    die: &DiePlan,
) -> Result<SessionEnd, String> {
    let mut stream = match TcpStream::connect(&args.connect) {
        Ok(s) => s,
        Err(_) => return Ok(SessionEnd::Lost),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs_f64(args.io_timeout)));

    if write_msg(
        &mut stream,
        &Msg::Hello {
            version: PROTO_VERSION,
        },
    )
    .is_err()
    {
        return Ok(SessionEnd::Lost);
    }
    let argv = match read_msg(&mut stream) {
        Ok(Msg::Welcome { argv, .. }) => argv,
        Ok(Msg::Reject { reason }) => return Err(format!("server rejected worker: {}", reason)),
        Ok(_) | Err(_) => return Ok(SessionEnd::Lost),
    };
    let rebuild = match ctx_cache {
        Some(ctx) => ctx.argv != argv,
        None => true,
    };
    if rebuild {
        *ctx_cache = Some(RunContext::build(argv)?);
    }
    let ctx = ctx_cache.as_ref().expect("context just built");

    loop {
        if write_msg(&mut stream, &Msg::PullWork).is_err() {
            return Ok(SessionEnd::Lost);
        }
        match read_msg(&mut stream) {
            Ok(Msg::Work {
                mode,
                round,
                client,
                epochs,
                prox_mu,
                state,
                residual,
            }) => {
                if client as usize >= ctx.fd.num_clients() {
                    return Err(format!(
                        "server sent client {} but the dataset has {}",
                        client,
                        ctx.fd.num_clients()
                    ));
                }
                let push = run_unit(ctx, mode, round, client, epochs, prox_mu, &state, residual);
                match push_with_backpressure(&mut stream, &push, *pushes_done, die) {
                    Ok(()) => {
                        *pushes_done += 1;
                        if die.after == Some(*pushes_done) {
                            std::process::exit(CRASH_EXIT_CODE);
                        }
                    }
                    Err(_) => return Ok(SessionEnd::Lost),
                }
            }
            Ok(Msg::Wait { millis }) => {
                std::thread::sleep(Duration::from_millis(millis as u64));
            }
            Ok(Msg::Done) => return Ok(SessionEnd::Done),
            Ok(_) => return Ok(SessionEnd::Lost),
            Err(_) => return Ok(SessionEnd::Lost),
        }
    }
}

/// Worker main loop: dial, serve a session, redial under the shared
/// backoff until `Done` or the reconnect budget is spent.
pub fn run_worker(args: &WorkerArgs) -> Result<(), String> {
    if let Some(t) = args.threads {
        rayon::set_num_threads(t);
    }
    let policy = RetryPolicy::from_retries(args.reconnects as u32)
        .with_backoff_base(Duration::from_secs_f64(args.backoff_base));
    let die = DiePlan {
        after: args.die_after,
        mid_push: args.die_mid_push,
    };
    let mut ctx_cache: Option<RunContext> = None;
    let mut pushes_done = 0usize;
    for attempt in policy.attempts() {
        if attempt > 0 {
            // Reconnect backoff: seeded from the run when we know it (so
            // a fleet of workers desynchronises deterministically), and
            // keyed by process id before the first handshake.
            let (seed, key) = match &ctx_cache {
                Some(ctx) => (ctx.cfg.seed, 0u64),
                None => (0, std::process::id() as u64),
            };
            std::thread::sleep(policy.backoff(seed, 0, key, attempt));
        }
        match session(args, &mut ctx_cache, &mut pushes_done, &die)? {
            SessionEnd::Done => {
                eprintln!(
                    "fedclust-worker: run complete after {} push(es)",
                    pushes_done
                );
                return Ok(());
            }
            SessionEnd::Lost => continue,
        }
    }
    Err(format!(
        "fedclust-worker: gave up after {} reconnect attempts",
        args.reconnects + 1
    ))
}
