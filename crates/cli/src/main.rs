//! `fedclust-cli` binary: thin shell around [`fedclust_cli`].

use fedclust_cli::{execute, Args};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match Args::parse(&argv) {
        Ok(args) => match execute(&args) {
            Ok(out) => println!("{}", out),
            Err(msg) => {
                eprintln!("error: {}", msg);
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("{}", e);
            std::process::exit(2);
        }
    }
}
