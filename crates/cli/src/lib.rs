//! # fedclust-cli
//!
//! A small dependency-free command-line front end for the FedClust
//! reproduction. Everything argument-parsing lives here (testable); the
//! binary in `main.rs` is a thin shell.
//!
//! ```text
//! fedclust-cli run     --method fedclust --dataset cifar10 --partition skew20
//! fedclust-cli cluster --dataset fmnist --partition skew20 --clients 30
//! fedclust-cli sweep   --dataset svhn --points 6
//! fedclust-cli methods
//! ```

use fedclust::FedClust;
use fedclust_cluster::metrics::adjusted_rand_index;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use fedclust_fl::methods::{baselines, extended_baselines, FlMethod};
use fedclust_fl::{Checkpointer, CrashPlan, FaultPlan, FlConfig};

pub mod args;
pub mod chaos;
pub mod net;
pub mod net_args;
pub mod worker;

pub use args::{Args, Command, ParseError};

/// Look up a method by case-insensitive name among the nine baselines, the
/// extended suite, and FedClust itself.
pub fn find_method(name: &str) -> Option<Box<dyn FlMethod>> {
    let mut methods = baselines();
    methods.extend(extended_baselines());
    methods.push(Box::new(FedClust::default()));
    methods
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

/// Names of all available methods.
pub fn method_names() -> Vec<&'static str> {
    let mut methods = baselines();
    methods.extend(extended_baselines());
    methods.push(Box::new(FedClust::default()));
    methods.iter().map(|m| m.name()).collect()
}

/// Parse a dataset name.
pub fn parse_dataset(name: &str) -> Option<DatasetProfile> {
    match name.to_ascii_lowercase().as_str() {
        "cifar10" | "cifar-10" => Some(DatasetProfile::Cifar10Like),
        "cifar100" | "cifar-100" => Some(DatasetProfile::Cifar100Like),
        "fmnist" => Some(DatasetProfile::FmnistLike),
        "svhn" => Some(DatasetProfile::SvhnLike),
        _ => None,
    }
}

/// Parse a partition spec: `iid`, `skewNN` (percent), or `dirX.X` (alpha).
pub fn parse_partition(spec: &str) -> Option<Partition> {
    let s = spec.to_ascii_lowercase();
    if s == "iid" {
        return Some(Partition::Iid);
    }
    if let Some(rest) = s.strip_prefix("skew") {
        let pct: f32 = rest.parse().ok()?;
        if (0.0..=100.0).contains(&pct) {
            return Some(Partition::LabelSkew {
                fraction: pct / 100.0,
            });
        }
        return None;
    }
    if let Some(rest) = s.strip_prefix("dir") {
        let alpha: f32 = rest.parse().ok()?;
        if alpha > 0.0 {
            return Some(Partition::Dirichlet { alpha });
        }
    }
    None
}

/// Execute a parsed command; returns the text to print.
pub fn execute(args: &Args) -> Result<String, String> {
    // Pin the worker-pool size before any training starts: `--threads`
    // wins, then a strictly validated `FEDCLUST_THREADS`, else the pool's
    // own default (available parallelism). Results are bit-identical at
    // every thread count; this only changes wall-clock.
    if let Some(threads) = args.effective_threads().map_err(|e| e.to_string())? {
        rayon::set_num_threads(threads);
    }
    match &args.command {
        Command::Methods => Ok(format!("available methods: {}", method_names().join(", "))),
        Command::Run { method } => {
            let m = find_method(method).ok_or_else(|| {
                format!("unknown method '{}'; try `fedclust-cli methods`", method)
            })?;
            let fd = build_dataset(args)?;
            let cfg = build_config(args);
            let result = match &args.checkpoint_dir {
                Some(dir) => {
                    let mut ckpt = Checkpointer::new(dir)
                        .every(args.checkpoint_every)
                        .keep(args.keep)
                        .resume(args.resume)
                        .crash(CrashPlan {
                            after_round: args.crash_after,
                            mid_write: args.crash_mid_write,
                        });
                    let result = m
                        .run_resumable(&fd, &cfg, &mut ckpt)
                        .map_err(|e| e.to_string())?;
                    // Diagnostics go to stderr so `--json` stdout stays clean.
                    for line in ckpt.diagnostics() {
                        eprintln!("checkpoint: {}", line);
                    }
                    result
                }
                None => m.run(&fd, &cfg),
            };
            if args.json {
                serde_json::to_string_pretty(&result).map_err(|e| e.to_string())
            } else {
                let mut out = format!(
                    "{}: final accuracy {:.2}% over {} clients, {:.2} Mb total",
                    result.method,
                    result.final_acc * 100.0,
                    fd.num_clients(),
                    result.total_mb
                );
                if let Some(k) = result.num_clusters {
                    out.push_str(&format!(", {} clusters", k));
                }
                if cfg.faults.is_active() {
                    out.push_str(&format!(
                        "\n  faults: {} injected, {} quarantined, {} retries, {} deadline misses",
                        result.faults.faults_injected,
                        result.faults.updates_quarantined,
                        result.faults.retries,
                        result.faults.deadline_misses
                    ));
                }
                for r in &result.history {
                    out.push_str(&format!(
                        "\n  round {:>3}: {:.2}% ({:.2} Mb)",
                        r.round,
                        r.avg_acc * 100.0,
                        r.cum_mb
                    ));
                }
                Ok(out)
            }
        }
        Command::Cluster => {
            let fd = build_dataset(args)?;
            let cfg = build_config(args);
            let method = FedClust::default();
            let (_, federation) = method.run_detailed(&fd, &cfg);
            let truth = fd.ground_truth_groups();
            let ari = adjusted_rand_index(&federation.labels, &truth);
            let mut out = format!(
                "one-shot clustering: {} clusters at λ = {:.4} (ARI vs label-set ground truth: {:.3})\n",
                federation.outcome.num_clusters, federation.outcome.lambda, ari
            );
            out.push_str(&format!("assignment: {:?}", federation.labels));
            Ok(out)
        }
        Command::Sweep { points } => {
            let fd = build_dataset(args)?;
            let cfg = build_config(args);
            let method = FedClust::default();
            let grid = fedclust::lambda_sweep::lambda_grid(&fd, &cfg, &method, *points);
            let sweep = fedclust::lambda_sweep::sweep(&fd, &cfg, &method, &grid);
            let mut out = String::from("lambda     clusters   accuracy\n");
            for p in &sweep {
                out.push_str(&format!(
                    "{:<10.4} {:<10} {:.2}%\n",
                    p.lambda,
                    p.num_clusters,
                    p.final_acc * 100.0
                ));
            }
            Ok(out)
        }
    }
}

/// Build the federated dataset an argument set describes. Public so the
/// networked worker can rebuild the *identical* dataset from the argv the
/// server ships in its `Welcome`.
pub fn build_dataset(args: &Args) -> Result<FederatedDataset, String> {
    let profile = parse_dataset(&args.dataset)
        .ok_or_else(|| format!("unknown dataset '{}'", args.dataset))?;
    let partition = parse_partition(&args.partition)
        .ok_or_else(|| format!("unknown partition '{}'", args.partition))?;
    Ok(FederatedDataset::build(
        profile,
        partition,
        &fedclust_data::federated::FederatedConfig {
            num_clients: args.clients,
            samples_per_class: args.samples_per_class,
            train_fraction: 0.8,
            seed: args.seed,
        },
    ))
}

/// Build the run config an argument set describes (public for the same
/// reason as [`build_dataset`]).
pub fn build_config(args: &Args) -> FlConfig {
    FlConfig {
        model: if args.dataset.to_ascii_lowercase().starts_with("cifar100") {
            fedclust_nn::models::ModelSpec::ResNet9
        } else {
            fedclust_nn::models::ModelSpec::LeNet5
        },
        rounds: args.rounds,
        sample_rate: args.sample_rate,
        local_epochs: args.epochs,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 0.0,
        eval_every: 2,
        seed: args.seed,
        dropout_rate: args.dropout,
        faults: FaultPlan {
            downlink_loss: args.downlink_loss,
            max_downlink_retries: args.retries,
            uplink_loss: args.uplink_loss,
            straggler_rate: args.straggler_rate,
            straggler_mean_delay: args.straggler_delay,
            round_deadline: args.deadline,
            corruption_rate: args.corrupt_rate,
        }
        .sanitized(),
        // Validated in `Args::validate`, so a parse failure here can only
        // mean a caller bypassed parsing; fall back to the identity codec.
        codec: fedclust_fl::CodecSpec::parse(&args.codec)
            .unwrap_or_else(|_| fedclust_fl::CodecSpec::none()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_methods_are_findable() {
        for name in [
            "Local",
            "FedAvg",
            "FedProx",
            "FedNova",
            "LG",
            "PerFedAvg",
            "CFL",
            "IFCA",
            "PACFL",
            "FedClust",
            "SCAFFOLD",
            "FedDyn",
        ] {
            assert!(find_method(name).is_some(), "missing {}", name);
            assert!(
                find_method(&name.to_lowercase()).is_some(),
                "case-insensitive {}",
                name
            );
        }
        assert!(find_method("nope").is_none());
    }

    #[test]
    fn dataset_parsing() {
        assert_eq!(parse_dataset("cifar10"), Some(DatasetProfile::Cifar10Like));
        assert_eq!(
            parse_dataset("CIFAR-100"),
            Some(DatasetProfile::Cifar100Like)
        );
        assert_eq!(parse_dataset("fmnist"), Some(DatasetProfile::FmnistLike));
        assert_eq!(parse_dataset("svhn"), Some(DatasetProfile::SvhnLike));
        assert_eq!(parse_dataset("mnist"), None);
    }

    #[test]
    fn partition_parsing() {
        assert_eq!(parse_partition("iid"), Some(Partition::Iid));
        assert_eq!(
            parse_partition("skew20"),
            Some(Partition::LabelSkew { fraction: 0.2 })
        );
        assert_eq!(
            parse_partition("dir0.1"),
            Some(Partition::Dirichlet { alpha: 0.1 })
        );
        assert_eq!(parse_partition("skew200"), None);
        assert_eq!(parse_partition("dir-1"), None);
        assert_eq!(parse_partition("banana"), None);
    }

    #[test]
    fn execute_methods_lists_everything() {
        let args = Args::parse(&["methods".into()]).unwrap();
        let out = execute(&args).unwrap();
        assert!(out.contains("FedClust"));
        assert!(out.contains("SCAFFOLD"));
    }

    #[test]
    fn execute_tiny_run() {
        let args = Args::parse(&[
            "run".into(),
            "--method".into(),
            "fedavg".into(),
            "--dataset".into(),
            "fmnist".into(),
            "--partition".into(),
            "skew50".into(),
            "--clients".into(),
            "4".into(),
            "--rounds".into(),
            "1".into(),
            "--epochs".into(),
            "1".into(),
            "--samples-per-class".into(),
            "10".into(),
        ])
        .unwrap();
        let out = execute(&args).unwrap();
        assert!(out.contains("FedAvg"), "{}", out);
        assert!(out.contains("final accuracy"), "{}", out);
    }

    #[test]
    fn execute_faulty_run_reports_telemetry() {
        let args = Args::parse(&[
            "run".into(),
            "--method".into(),
            "fedavg".into(),
            "--dataset".into(),
            "fmnist".into(),
            "--partition".into(),
            "skew50".into(),
            "--clients".into(),
            "4".into(),
            "--rounds".into(),
            "2".into(),
            "--epochs".into(),
            "1".into(),
            "--samples-per-class".into(),
            "10".into(),
            "--uplink-loss".into(),
            "0.5".into(),
            "--downlink-loss".into(),
            "0.5".into(),
        ])
        .unwrap();
        let out = execute(&args).unwrap();
        assert!(out.contains("final accuracy"), "{}", out);
        assert!(out.contains("faults:"), "{}", out);
    }

    #[test]
    fn build_config_threads_the_codec_through() {
        let args = Args::parse(&[
            "run".into(),
            "--method".into(),
            "fedavg".into(),
            "--codec".into(),
            "delta+q8".into(),
        ])
        .unwrap();
        let cfg = build_config(&args);
        assert_eq!(
            cfg.codec,
            fedclust_fl::CodecSpec::parse("delta+q8").unwrap()
        );
        let args = Args::parse(&["run".into(), "--method".into(), "fedavg".into()]).unwrap();
        assert!(build_config(&args).codec.is_none());
    }

    #[test]
    fn execute_compressed_run() {
        let args = Args::parse(&[
            "run".into(),
            "--method".into(),
            "fedavg".into(),
            "--dataset".into(),
            "fmnist".into(),
            "--partition".into(),
            "skew50".into(),
            "--clients".into(),
            "4".into(),
            "--rounds".into(),
            "1".into(),
            "--epochs".into(),
            "1".into(),
            "--samples-per-class".into(),
            "10".into(),
            "--codec".into(),
            "topk:0.1".into(),
        ])
        .unwrap();
        let out = execute(&args).unwrap();
        assert!(out.contains("final accuracy"), "{}", out);
    }

    #[test]
    fn execute_run_rejects_unknown_method() {
        let args = Args::parse(&["run".into(), "--method".into(), "nope".into()]).unwrap();
        assert!(execute(&args).is_err());
    }
}
