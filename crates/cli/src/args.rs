//! Command-line argument parsing (no external dependencies).

/// The subcommand to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one FL method end to end.
    Run {
        /// Method name (case-insensitive).
        method: String,
    },
    /// Run only FedClust's one-shot clustering and print the assignment.
    Cluster,
    /// Sweep the clustering threshold λ (Fig. 4 style).
    Sweep {
        /// Number of λ grid points.
        points: usize,
    },
    /// List available methods.
    Methods,
}

/// Parsed command-line arguments with defaults suitable for a quick run.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// What to do.
    pub command: Command,
    /// Dataset name (`cifar10`, `cifar100`, `fmnist`, `svhn`).
    pub dataset: String,
    /// Partition spec (`iid`, `skewNN`, `dirX.X`).
    pub partition: String,
    /// Number of clients.
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs.
    pub epochs: usize,
    /// Client sampling rate per round.
    pub sample_rate: f32,
    /// Pool samples per class.
    pub samples_per_class: usize,
    /// Root seed.
    pub seed: u64,
    /// Client dropout probability.
    pub dropout: f32,
    /// Uplink loss probability (fault injection).
    pub uplink_loss: f32,
    /// Per-attempt downlink loss probability (fault injection).
    pub downlink_loss: f32,
    /// Update corruption probability (fault injection).
    pub corrupt_rate: f32,
    /// Straggler probability (fault injection).
    pub straggler_rate: f32,
    /// Mean straggler delay, in units of the round deadline scale.
    pub straggler_delay: f32,
    /// Round deadline; straggler uploads later than this are dropped.
    pub deadline: f32,
    /// Downlink retry budget per client per round.
    pub retries: usize,
    /// Upload compression codec spec (`none`, `q8`, `q4`, `topk:<frac>`,
    /// `delta`, and `+`-joined combinations like `delta+q8+sr`).
    pub codec: String,
    /// Emit machine-readable JSON instead of text (run subcommand).
    pub json: bool,
    /// Directory for durable round checkpoints (`run` subcommand). `None`
    /// disables checkpointing entirely.
    pub checkpoint_dir: Option<String>,
    /// Write a checkpoint every N rounds.
    pub checkpoint_every: usize,
    /// Number of checkpoint generations to retain.
    pub keep: usize,
    /// Resume from the newest valid checkpoint in `--checkpoint-dir`.
    pub resume: bool,
    /// Crash-injection: kill the process after this round completes.
    pub crash_after: Option<usize>,
    /// Crash-injection: die halfway through the checkpoint write (torn
    /// write), exercising the atomic-rename recovery path.
    pub crash_mid_write: bool,
    /// Worker threads for parallel client training. `None` defers to
    /// `FEDCLUST_THREADS` or the machine's available parallelism; `1` is
    /// the exact-sequential escape hatch (results are bit-identical at
    /// every thread count regardless).
    pub threads: Option<usize>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Usage text printed on `--help` or a parse error.
pub const USAGE: &str = "\
fedclust-cli — FedClust reproduction command line

USAGE:
  fedclust-cli run --method <name> [options]
  fedclust-cli cluster [options]
  fedclust-cli sweep [--points N] [options]
  fedclust-cli methods

OPTIONS:
  --dataset <cifar10|cifar100|fmnist|svhn>   (default cifar10)
  --partition <iid|skewNN|dirX.X>            (default skew20)
  --clients <N>             number of clients          (default 20)
  --rounds <N>              communication rounds       (default 8)
  --epochs <N>              local epochs               (default 3)
  --sample-rate <F>         clients sampled per round  (default 0.25)
  --samples-per-class <N>   pool size per class        (default 100)
  --seed <N>                root seed                  (default 42)
  --dropout <F>             client dropout probability (default 0)
  --uplink-loss <F>         uplink loss probability    (default 0)
  --downlink-loss <F>       downlink loss per attempt  (default 0)
  --corrupt-rate <F>        update corruption rate     (default 0)
  --straggler-rate <F>      straggler probability      (default 0)
  --straggler-delay <F>     mean straggler delay       (default 1.0)
  --deadline <F>            round deadline             (default 1.0)
  --retries <N>             downlink retry budget      (default 2)
  --codec <SPEC>            upload compression codec   (default none)
                            none | q8 | q4 | topk:<frac> | delta, joined
                            with '+' (delta+q8, delta+q4+sr, ...); 'sr'
                            selects stochastic rounding for q8/q4
  --threads <N>             worker threads for client training
                            (default: FEDCLUST_THREADS, else all cores;
                             1 = exact-sequential escape hatch — results
                             are bit-identical at any thread count)
  --json                    machine-readable output (run)

CHECKPOINTING (run):
  --checkpoint-dir <DIR>    write durable round checkpoints under DIR
  --checkpoint-every <N>    checkpoint cadence in rounds           (default 1)
  --keep <N>                checkpoint generations to retain       (default 3)
  --resume                  resume from the newest valid checkpoint
  --crash-after <ROUND>     crash injection: exit after this round
  --crash-mid-write         crash injection: tear the checkpoint write
";

impl Args {
    fn defaults(command: Command) -> Args {
        Args {
            command,
            dataset: "cifar10".into(),
            partition: "skew20".into(),
            clients: 20,
            rounds: 8,
            epochs: 3,
            sample_rate: 0.25,
            samples_per_class: 100,
            seed: 42,
            dropout: 0.0,
            uplink_loss: 0.0,
            downlink_loss: 0.0,
            corrupt_rate: 0.0,
            straggler_rate: 0.0,
            straggler_delay: 1.0,
            deadline: 1.0,
            retries: 2,
            codec: "none".into(),
            json: false,
            checkpoint_dir: None,
            checkpoint_every: 1,
            keep: 3,
            resume: false,
            crash_after: None,
            crash_mid_write: false,
            threads: None,
        }
    }

    /// Parse a raw argument list (without the program name).
    pub fn parse(argv: &[String]) -> Result<Args, ParseError> {
        let mut it = argv.iter().peekable();
        let sub = it
            .next()
            .ok_or_else(|| ParseError("missing subcommand".into()))?;
        let mut args = match sub.as_str() {
            "run" => Args::defaults(Command::Run {
                method: String::new(),
            }),
            "cluster" => Args::defaults(Command::Cluster),
            "sweep" => Args::defaults(Command::Sweep { points: 6 }),
            "methods" => Args::defaults(Command::Methods),
            "--help" | "-h" | "help" => return Err(ParseError(USAGE.into())),
            other => {
                return Err(ParseError(format!(
                    "unknown subcommand '{}'\n{}",
                    other, USAGE
                )))
            }
        };

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, ParseError> {
                it.next()
                    .ok_or_else(|| ParseError(format!("{} requires a value", name)))
            };
            match flag.as_str() {
                "--method" => {
                    let v = value("--method")?.clone();
                    if let Command::Run { method } = &mut args.command {
                        *method = v;
                    } else {
                        return Err(ParseError("--method only applies to `run`".into()));
                    }
                }
                "--points" => {
                    let v: usize = parse_num(value("--points")?, "--points")?;
                    if let Command::Sweep { points } = &mut args.command {
                        *points = v.max(2);
                    } else {
                        return Err(ParseError("--points only applies to `sweep`".into()));
                    }
                }
                "--dataset" => args.dataset = value("--dataset")?.clone(),
                "--partition" => args.partition = value("--partition")?.clone(),
                "--clients" => args.clients = parse_num(value("--clients")?, "--clients")?,
                "--rounds" => args.rounds = parse_num(value("--rounds")?, "--rounds")?,
                "--epochs" => args.epochs = parse_num(value("--epochs")?, "--epochs")?,
                "--sample-rate" => {
                    args.sample_rate = parse_num(value("--sample-rate")?, "--sample-rate")?
                }
                "--samples-per-class" => {
                    args.samples_per_class =
                        parse_num(value("--samples-per-class")?, "--samples-per-class")?
                }
                "--seed" => args.seed = parse_num(value("--seed")?, "--seed")?,
                "--dropout" => args.dropout = parse_num(value("--dropout")?, "--dropout")?,
                "--uplink-loss" => {
                    args.uplink_loss = parse_num(value("--uplink-loss")?, "--uplink-loss")?
                }
                "--downlink-loss" => {
                    args.downlink_loss = parse_num(value("--downlink-loss")?, "--downlink-loss")?
                }
                "--corrupt-rate" => {
                    args.corrupt_rate = parse_num(value("--corrupt-rate")?, "--corrupt-rate")?
                }
                "--straggler-rate" => {
                    args.straggler_rate = parse_num(value("--straggler-rate")?, "--straggler-rate")?
                }
                "--straggler-delay" => {
                    args.straggler_delay =
                        parse_num(value("--straggler-delay")?, "--straggler-delay")?
                }
                "--deadline" => args.deadline = parse_num(value("--deadline")?, "--deadline")?,
                "--retries" => args.retries = parse_num(value("--retries")?, "--retries")?,
                "--codec" => args.codec = value("--codec")?.clone(),
                "--json" => args.json = true,
                "--checkpoint-dir" => {
                    args.checkpoint_dir = Some(value("--checkpoint-dir")?.clone())
                }
                "--checkpoint-every" => {
                    args.checkpoint_every =
                        parse_num(value("--checkpoint-every")?, "--checkpoint-every")?
                }
                "--keep" => args.keep = parse_num(value("--keep")?, "--keep")?,
                "--resume" => args.resume = true,
                "--crash-after" => {
                    args.crash_after = Some(parse_num(value("--crash-after")?, "--crash-after")?)
                }
                "--crash-mid-write" => args.crash_mid_write = true,
                "--threads" => args.threads = Some(parse_num(value("--threads")?, "--threads")?),
                other => return Err(ParseError(format!("unknown option '{}'\n{}", other, USAGE))),
            }
        }
        if let Command::Run { method } = &args.command {
            if method.is_empty() {
                return Err(ParseError("`run` requires --method <name>".into()));
            }
        }
        args.validate()?;
        Ok(args)
    }

    /// Range- and consistency-check parsed values. Every message names the
    /// flag and the offending value so the fix is obvious from the error
    /// alone.
    fn validate(&self) -> Result<(), ParseError> {
        if self.clients == 0 || self.rounds == 0 || self.epochs == 0 {
            return Err(ParseError(
                "clients, rounds and epochs must be positive".into(),
            ));
        }
        // Probabilities: NaN fails `contains` too, but is called out
        // explicitly so the message never reads "NaN must be in [0, 1]".
        for (flag, value) in [
            ("--dropout", self.dropout),
            ("--uplink-loss", self.uplink_loss),
            ("--downlink-loss", self.downlink_loss),
            ("--corrupt-rate", self.corrupt_rate),
            ("--straggler-rate", self.straggler_rate),
        ] {
            if value.is_nan() {
                return Err(ParseError(format!(
                    "{} is NaN; it must be a probability in [0, 1]",
                    flag
                )));
            }
            if !(0.0..=1.0).contains(&value) {
                return Err(ParseError(format!(
                    "{} must be in [0, 1], got {}",
                    flag, value
                )));
            }
        }
        if self.sample_rate.is_nan() {
            return Err(ParseError(
                "--sample-rate is NaN; it must be in (0, 1]".into(),
            ));
        }
        if !(0.0 < self.sample_rate && self.sample_rate <= 1.0) {
            return Err(ParseError(format!(
                "--sample-rate must be in (0, 1], got {}",
                self.sample_rate
            )));
        }
        // Timing scales: `< 0.0` is false for NaN, so check NaN explicitly
        // — otherwise a NaN delay/deadline would slip through to the fault
        // injector.
        for (flag, value) in [
            ("--straggler-delay", self.straggler_delay),
            ("--deadline", self.deadline),
        ] {
            if value.is_nan() {
                return Err(ParseError(format!(
                    "{} is NaN; it must be a non-negative number",
                    flag
                )));
            }
            if value < 0.0 {
                return Err(ParseError(format!(
                    "{} must be non-negative, got {}",
                    flag, value
                )));
            }
        }
        // The codec grammar has its own parser with precise messages;
        // surface them under the flag name so the fix is obvious.
        if let Err(msg) = fedclust_fl::CodecSpec::parse(&self.codec) {
            return Err(ParseError(format!("--codec: {}", msg)));
        }
        if self.checkpoint_every == 0 {
            return Err(ParseError("--checkpoint-every must be at least 1".into()));
        }
        if self.keep == 0 {
            return Err(ParseError("--keep must be at least 1".into()));
        }
        if self.checkpoint_dir.is_none() {
            if self.resume {
                return Err(ParseError("--resume requires --checkpoint-dir".into()));
            }
            if self.crash_after.is_some() {
                return Err(ParseError("--crash-after requires --checkpoint-dir".into()));
            }
            if self.crash_mid_write {
                return Err(ParseError(
                    "--crash-mid-write requires --checkpoint-dir".into(),
                ));
            }
        }
        if self.crash_mid_write && self.crash_after.is_none() {
            return Err(ParseError(
                "--crash-mid-write requires --crash-after <round>".into(),
            ));
        }
        if let Some(threads) = self.threads {
            validate_threads("--threads", &threads.to_string(), threads)?;
        }
        Ok(())
    }

    /// The thread count this invocation should run with: `--threads` wins,
    /// then a strictly validated `FEDCLUST_THREADS`, then `None` (let the
    /// pool default to available parallelism).
    pub fn effective_threads(&self) -> Result<Option<usize>, ParseError> {
        if self.threads.is_some() {
            return Ok(self.threads);
        }
        threads_from_env(std::env::var("FEDCLUST_THREADS").ok().as_deref())
    }
}

/// Shared range check for thread counts: zero and absurd values are
/// rejected with the offending source (flag or env var) and value named.
fn validate_threads(source: &str, raw: &str, threads: usize) -> Result<(), ParseError> {
    if threads == 0 {
        return Err(ParseError(format!(
            "{} must be at least 1, got {} (use 1 for the exact-sequential path)",
            source, raw
        )));
    }
    if threads > rayon::MAX_THREADS {
        return Err(ParseError(format!(
            "{} must be at most {}, got {}",
            source,
            rayon::MAX_THREADS,
            raw
        )));
    }
    Ok(())
}

/// Strictly validate a `FEDCLUST_THREADS` value from the environment.
/// (The rayon pool itself parses the variable leniently so library users
/// are never broken by a stray export; the CLI refuses malformed values
/// loudly so a typo'd job script cannot silently run sequentially.)
pub fn threads_from_env(raw: Option<&str>) -> Result<Option<usize>, ParseError> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let threads: usize = trimmed.parse().map_err(|_| {
        ParseError(format!(
            "invalid value '{}' for FEDCLUST_THREADS; expected a thread count in [1, {}]",
            raw,
            rayon::MAX_THREADS
        ))
    })?;
    validate_threads("FEDCLUST_THREADS", trimmed, threads)?;
    Ok(Some(threads))
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("invalid value '{}' for {}", s, flag)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_requires_method() {
        assert!(Args::parse(&argv(&["run"])).is_err());
        let a = Args::parse(&argv(&["run", "--method", "fedclust"])).unwrap();
        assert_eq!(
            a.command,
            Command::Run {
                method: "fedclust".into()
            }
        );
    }

    #[test]
    fn defaults_are_applied() {
        let a = Args::parse(&argv(&["cluster"])).unwrap();
        assert_eq!(a.dataset, "cifar10");
        assert_eq!(a.partition, "skew20");
        assert_eq!(a.clients, 20);
        assert!(!a.json);
    }

    #[test]
    fn options_override_defaults() {
        let a = Args::parse(&argv(&[
            "run",
            "--method",
            "fedavg",
            "--clients",
            "7",
            "--rounds",
            "3",
            "--seed",
            "9",
            "--dropout",
            "0.25",
            "--json",
        ]))
        .unwrap();
        assert_eq!(a.clients, 7);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.seed, 9);
        assert!((a.dropout - 0.25).abs() < 1e-6);
        assert!(a.json);
    }

    #[test]
    fn sweep_points_and_misplaced_flags() {
        let a = Args::parse(&argv(&["sweep", "--points", "8"])).unwrap();
        assert_eq!(a.command, Command::Sweep { points: 8 });
        assert!(Args::parse(&argv(&["cluster", "--points", "8"])).is_err());
        assert!(Args::parse(&argv(&["cluster", "--method", "x"])).is_err());
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(Args::parse(&argv(&["run", "--method", "x", "--clients", "zero"])).is_err());
        assert!(Args::parse(&argv(&["run", "--method", "x", "--clients", "0"])).is_err());
        assert!(Args::parse(&argv(&["run", "--method", "x", "--dropout", "1.5"])).is_err());
        assert!(Args::parse(&argv(&["run", "--method", "x", "--sample-rate", "0"])).is_err());
        assert!(Args::parse(&argv(&["frobnicate"])).is_err());
        assert!(Args::parse(&argv(&[])).is_err());
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let a = Args::parse(&argv(&[
            "run",
            "--method",
            "fedclust",
            "--uplink-loss",
            "0.3",
            "--downlink-loss",
            "0.1",
            "--corrupt-rate",
            "0.05",
            "--straggler-rate",
            "0.2",
            "--straggler-delay",
            "0.5",
            "--deadline",
            "2.0",
            "--retries",
            "4",
        ]))
        .unwrap();
        assert!((a.uplink_loss - 0.3).abs() < 1e-6);
        assert!((a.downlink_loss - 0.1).abs() < 1e-6);
        assert!((a.corrupt_rate - 0.05).abs() < 1e-6);
        assert!((a.straggler_rate - 0.2).abs() < 1e-6);
        assert!((a.straggler_delay - 0.5).abs() < 1e-6);
        assert!((a.deadline - 2.0).abs() < 1e-6);
        assert_eq!(a.retries, 4);
        // Defaults keep every fault channel off.
        let d = Args::parse(&argv(&["run", "--method", "fedavg"])).unwrap();
        assert_eq!(d.uplink_loss, 0.0);
        assert_eq!(d.retries, 2);
        // Probabilities outside [0, 1] and negative times are rejected.
        assert!(Args::parse(&argv(&["run", "--method", "x", "--uplink-loss", "1.5"])).is_err());
        assert!(Args::parse(&argv(&["run", "--method", "x", "--corrupt-rate", "-0.1"])).is_err());
        assert!(Args::parse(&argv(&["run", "--method", "x", "--deadline", "-1"])).is_err());
    }

    #[test]
    fn help_returns_usage() {
        let err = Args::parse(&argv(&["--help"])).unwrap_err();
        assert!(err.0.contains("USAGE"));
    }

    fn parse_run(extra: &[&str]) -> Result<Args, ParseError> {
        let mut parts = vec!["run", "--method", "fedavg"];
        parts.extend_from_slice(extra);
        Args::parse(&argv(&parts))
    }

    #[test]
    fn nan_probabilities_are_rejected_per_flag() {
        for flag in [
            "--sample-rate",
            "--dropout",
            "--uplink-loss",
            "--downlink-loss",
            "--corrupt-rate",
            "--straggler-rate",
        ] {
            let err = parse_run(&[flag, "NaN"]).unwrap_err();
            assert!(err.0.contains(flag), "{}: {}", flag, err);
            assert!(err.0.contains("NaN"), "{}: {}", flag, err);
        }
    }

    #[test]
    fn nan_timing_values_are_rejected() {
        // Regression: `< 0.0` is false for NaN, so these once slipped
        // through validation silently.
        for flag in ["--straggler-delay", "--deadline"] {
            let err = parse_run(&[flag, "NaN"]).unwrap_err();
            assert!(err.0.contains(flag), "{}: {}", flag, err);
            assert!(err.0.contains("NaN"), "{}: {}", flag, err);
        }
    }

    #[test]
    fn out_of_range_errors_name_flag_and_value() {
        let err = parse_run(&["--dropout", "1.5"]).unwrap_err();
        assert!(
            err.0.contains("--dropout") && err.0.contains("1.5"),
            "{}",
            err
        );
        let err = parse_run(&["--uplink-loss", "-0.2"]).unwrap_err();
        assert!(
            err.0.contains("--uplink-loss") && err.0.contains("-0.2"),
            "{}",
            err
        );
        let err = parse_run(&["--sample-rate", "0"]).unwrap_err();
        assert!(err.0.contains("--sample-rate"), "{}", err);
        let err = parse_run(&["--deadline", "-3"]).unwrap_err();
        assert!(
            err.0.contains("--deadline") && err.0.contains("-3"),
            "{}",
            err
        );
    }

    #[test]
    fn checkpoint_flags_parse() {
        let a = parse_run(&[
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "2",
            "--keep",
            "5",
            "--resume",
        ])
        .unwrap();
        assert_eq!(a.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(a.checkpoint_every, 2);
        assert_eq!(a.keep, 5);
        assert!(a.resume);
        assert_eq!(a.crash_after, None);
        assert!(!a.crash_mid_write);

        let a = parse_run(&[
            "--checkpoint-dir",
            "/tmp/ck",
            "--crash-after",
            "3",
            "--crash-mid-write",
        ])
        .unwrap();
        assert_eq!(a.crash_after, Some(3));
        assert!(a.crash_mid_write);
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        // Explicit counts, including the documented exact-sequential
        // escape hatch `--threads 1`, parse through.
        let a = parse_run(&["--threads", "4"]).unwrap();
        assert_eq!(a.threads, Some(4));
        let a = parse_run(&["--threads", "1"]).unwrap();
        assert_eq!(a.threads, Some(1));
        // Unset defers to the environment / pool default.
        let a = parse_run(&[]).unwrap();
        assert_eq!(a.threads, None);

        // Zero, absurd, and malformed values are rejected with the flag
        // and the offending value in the message.
        let err = parse_run(&["--threads", "0"]).unwrap_err();
        assert!(
            err.0.contains("--threads") && err.0.contains('0'),
            "{}",
            err
        );
        let err = parse_run(&["--threads", "100000"]).unwrap_err();
        assert!(
            err.0.contains("--threads") && err.0.contains("100000"),
            "{}",
            err
        );
        let err = parse_run(&["--threads", "many"]).unwrap_err();
        assert!(
            err.0.contains("--threads") && err.0.contains("many"),
            "{}",
            err
        );
        let err = parse_run(&["--threads", "-2"]).unwrap_err();
        assert!(
            err.0.contains("--threads") && err.0.contains("-2"),
            "{}",
            err
        );
    }

    #[test]
    fn env_thread_counts_are_strictly_validated() {
        assert_eq!(threads_from_env(None).unwrap(), None);
        assert_eq!(threads_from_env(Some("")).unwrap(), None);
        assert_eq!(threads_from_env(Some("  ")).unwrap(), None);
        assert_eq!(threads_from_env(Some("4")).unwrap(), Some(4));
        assert_eq!(threads_from_env(Some(" 2 ")).unwrap(), Some(2));

        let err = threads_from_env(Some("banana")).unwrap_err();
        assert!(
            err.0.contains("FEDCLUST_THREADS") && err.0.contains("banana"),
            "{}",
            err
        );
        let err = threads_from_env(Some("0")).unwrap_err();
        assert!(
            err.0.contains("FEDCLUST_THREADS") && err.0.contains('0'),
            "{}",
            err
        );
        let err = threads_from_env(Some("99999")).unwrap_err();
        assert!(
            err.0.contains("FEDCLUST_THREADS") && err.0.contains("99999"),
            "{}",
            err
        );
        let err = threads_from_env(Some("-3")).unwrap_err();
        assert!(
            err.0.contains("FEDCLUST_THREADS") && err.0.contains("-3"),
            "{}",
            err
        );
    }

    #[test]
    fn codec_flag_parses_and_validates() {
        // Default is the identity codec.
        let a = parse_run(&[]).unwrap();
        assert_eq!(a.codec, "none");
        // Every documented spec shape parses through.
        for spec in [
            "none",
            "q8",
            "q4",
            "topk:0.1",
            "delta",
            "delta+q8",
            "delta+q4+sr",
        ] {
            let a = parse_run(&["--codec", spec]).unwrap();
            assert_eq!(a.codec, spec);
        }
        // Malformed specs are rejected with the flag named, in the
        // PR-established style: flag + offending value in the message.
        for bad in [
            "zstd",
            "q8+q4",
            "topk:0",
            "topk:1.5",
            "topk:NaN",
            "sr",
            "delta+none",
        ] {
            let err = parse_run(&["--codec", bad]).unwrap_err();
            assert!(err.0.contains("--codec"), "{}: {}", bad, err);
            assert!(err.0.contains(bad), "{}: {}", bad, err);
        }
        // A missing value is called out like every other flag.
        let err = Args::parse(&argv(&["run", "--method", "x", "--codec"])).unwrap_err();
        assert!(err.0.contains("--codec"), "{}", err);
    }

    #[test]
    fn checkpoint_flag_consistency_is_enforced() {
        // Flags that act on a checkpoint directory require one.
        assert!(parse_run(&["--resume"]).is_err());
        assert!(parse_run(&["--crash-after", "1"]).is_err());
        assert!(parse_run(&["--crash-mid-write"]).is_err());
        // A torn write only happens during a crash.
        assert!(parse_run(&["--checkpoint-dir", "/tmp/ck", "--crash-mid-write"]).is_err());
        // Cadence and retention must be positive.
        assert!(parse_run(&["--checkpoint-dir", "/tmp/ck", "--checkpoint-every", "0"]).is_err());
        assert!(parse_run(&["--checkpoint-dir", "/tmp/ck", "--keep", "0"]).is_err());
    }
}
