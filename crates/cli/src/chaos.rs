//! `fedclust-chaos` — the PR 2 fault injector reborn as a network chaos
//! proxy.
//!
//! The proxy sits between workers and `fedclustd`, forwarding protocol
//! frames verbatim (it reads *raw* frames — header-validated but not
//! checksum-verified — so damaged frames pass through untouched) and
//! mangling a deterministic subset: drop, delay, truncate-and-close, or
//! corrupt one payload byte. Fates derive from
//! `derive(chaos_seed, [streams::CHAOS, direction, key_a, key_b])` where
//! the keys come from the frame's pinned `(round, client)` offsets when
//! it has them, so a given upload's fate is a pure function of the chaos
//! seed — reconnects and retries cannot reshuffle it.
//!
//! Every injected fault is *recoverable* by construction: the endpoint
//! sees a stalled or checksum-broken connection, tears it down, and the
//! shared retry machinery redials and redelivers. A run through the
//! proxy therefore produces byte-identical results to a clean run.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fedclust_proto::{frame_keys, read_raw_frame, HEADER_BYTES};
use fedclust_tensor::rng::{derive, streams};
use rand::Rng;

use crate::net_args::ChaosArgs;

/// Transmission counts per `(direction, key_a, key_b)`, shared across
/// connections so a retried frame advances its fate schedule no matter
/// which (re)connection carries it.
type Occurrences = Arc<Mutex<BTreeMap<(u64, u64, u64), u64>>>;

/// What happens to one forwarded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Forward,
    Drop,
    Delay,
    Truncate,
    Corrupt,
}

/// Pick a frame's fate from one uniform draw, banded like the transport's
/// `uplink_fate`: `[0, drop)` drop, `[drop, drop+truncate)` truncate,
/// then corrupt, then delay, else forward.
///
/// `occurrence` is the 1-based count of transmissions of this key: a
/// retried frame draws a *fresh* (still deterministic) fate, so a finite
/// retry budget always heals a finite chaos schedule — keying on
/// `(round, client)` alone would doom an unlucky upload to the same fate
/// on every attempt.
fn fate_for(args: &ChaosArgs, direction: u64, key_a: u64, key_b: u64, occurrence: u64) -> Fate {
    // fedlint::allow(float-eq): exact-zero sentinel — all-zero rates mean "pass-through proxy", set only from the literal default
    if args.drop == 0.0 && args.delay == 0.0 && args.truncate == 0.0 && args.corrupt == 0.0 {
        return Fate::Forward;
    }
    let mut rng = derive(
        args.chaos_seed,
        &[streams::CHAOS, direction, key_a, key_b, occurrence],
    );
    let u: f32 = rng.gen();
    let mut band = args.drop;
    if u < band {
        return Fate::Drop;
    }
    band += args.truncate;
    if u < band {
        return Fate::Truncate;
    }
    band += args.corrupt;
    if u < band {
        return Fate::Corrupt;
    }
    band += args.delay;
    if u < band {
        return Fate::Delay;
    }
    Fate::Forward
}

/// Keys identifying a frame for the fate schedule: the pinned
/// `(round, client)` words when the kind carries them, else a
/// per-connection frame counter (offset so it cannot collide with real
/// round numbers).
fn keys_for(frame: &[u8], counter: u64) -> (u64, u64) {
    let kind = frame.get(6).copied().unwrap_or(0);
    let payload = frame
        .get(HEADER_BYTES..frame.len().saturating_sub(fedclust_proto::CHECKSUM_BYTES))
        .unwrap_or(&[]);
    match frame_keys(kind, payload) {
        Some((a, b)) => (a as u64, b as u64),
        None => (u64::MAX - counter, kind as u64),
    }
}

/// Pump frames one direction, applying fates. Returns when either side
/// closes or a truncation kills the stream; both sockets are torn down on
/// exit so the sibling pump (and the far endpoint) see the death too —
/// otherwise a worker that abandons a stalled connection would leave the
/// proxy→server half open and the server's leases would never fail over.
fn pump(args: &ChaosArgs, occ: &Occurrences, from: TcpStream, to: TcpStream, direction: u64) {
    pump_inner(args, occ, &from, &to, direction);
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

fn pump_inner(
    args: &ChaosArgs,
    occ: &Occurrences,
    mut from: &TcpStream,
    mut to: &TcpStream,
    direction: u64,
) {
    let mut counter: u64 = 0;
    loop {
        let mut frame = match read_raw_frame(&mut from) {
            Ok(f) => f,
            Err(_) => return,
        };
        counter += 1;
        let (key_a, key_b) = keys_for(&frame, counter);
        let occurrence = {
            let mut map = occ.lock().unwrap();
            let n = map.entry((direction, key_a, key_b)).or_insert(0);
            *n += 1;
            *n
        };
        match fate_for(args, direction, key_a, key_b, occurrence) {
            Fate::Forward => {}
            Fate::Drop => continue, // swallow: receiver times out and redials
            Fate::Delay => std::thread::sleep(Duration::from_millis(args.delay_ms)),
            Fate::Truncate => {
                // Half a frame, then kill the connection: the receiver
                // sees a clean framing error mid-read.
                let half = frame.len() / 2;
                let _ = to.write_all(&frame[..half]);
                let _ = to.flush();
                return;
            }
            Fate::Corrupt => {
                // Flip one payload byte; the frame checksum catches it on
                // the far side, which drops the connection and retries.
                if frame.len() > HEADER_BYTES + fedclust_proto::CHECKSUM_BYTES {
                    let mid = HEADER_BYTES + (frame.len() - HEADER_BYTES) / 2;
                    frame[mid] ^= 0x01;
                }
            }
        }
        if to.write_all(&frame).is_err() || to.flush().is_err() {
            return;
        }
    }
}

/// Run the proxy: accept worker connections on `--listen`, dial the real
/// server at `--connect`, and pump frames both ways under the fate
/// schedule. Serves connections until the process is killed.
pub fn run_chaos(args: &ChaosArgs) -> Result<(), String> {
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("fedclust-chaos: cannot bind {}: {}", args.listen, e))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("fedclust-chaos: listening on {} -> {}", addr, args.connect);
    let occ: Occurrences = Arc::new(Mutex::new(BTreeMap::new()));
    for inbound in listener.incoming() {
        let Ok(inbound) = inbound else { continue };
        let upstream = match TcpStream::connect(&args.connect) {
            Ok(s) => s,
            Err(_) => continue, // server down (e.g. mid-resume): worker redials
        };
        let _ = inbound.set_nodelay(true);
        let _ = upstream.set_nodelay(true);
        let (in2, up2) = match (inbound.try_clone(), upstream.try_clone()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => continue,
        };
        let a = args.clone();
        let o = Arc::clone(&occ);
        std::thread::spawn(move || pump(&a, &o, inbound, upstream, 0));
        let a = args.clone();
        let o = Arc::clone(&occ);
        std::thread::spawn(move || pump(&a, &o, up2, in2, 1));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_proto::{encode_frame, Msg};

    fn quiet() -> ChaosArgs {
        ChaosArgs {
            listen: "a:1".into(),
            connect: "b:2".into(),
            chaos_seed: 7,
            drop: 0.0,
            delay: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            delay_ms: 1,
        }
    }

    #[test]
    fn zero_rates_always_forward() {
        let args = quiet();
        for k in 0..64 {
            assert_eq!(fate_for(&args, 0, k, k, 1), Fate::Forward);
        }
    }

    #[test]
    fn fates_are_deterministic_in_the_keys() {
        let mut args = quiet();
        args.drop = 0.3;
        args.corrupt = 0.3;
        for dir in 0..2 {
            for a in 0..32 {
                let one = fate_for(&args, dir, a, 5, 1);
                let two = fate_for(&args, dir, a, 5, 1);
                assert_eq!(one, two);
            }
        }
        // Different directions draw independent fates somewhere.
        let diverges = (0..64).any(|a| fate_for(&args, 0, a, 0, 1) != fate_for(&args, 1, a, 0, 1));
        assert!(diverges, "direction must be part of the fate key");
    }

    #[test]
    fn bands_cover_all_fates() {
        let mut args = quiet();
        args.drop = 0.25;
        args.truncate = 0.25;
        args.corrupt = 0.25;
        args.delay = 0.25;
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..512 {
            seen.insert(format!("{:?}", fate_for(&args, 0, a, 0, 1)));
        }
        for fate in ["Drop", "Truncate", "Corrupt", "Delay"] {
            assert!(seen.contains(fate), "never drew {fate}: {seen:?}");
        }
    }

    #[test]
    fn retransmissions_advance_the_fate_schedule() {
        // A key doomed at occurrence 1 must eventually draw Forward:
        // retries heal deterministic chaos.
        let mut args = quiet();
        args.drop = 0.5;
        for a in 0..16 {
            let healed = (1..=16).any(|occ| fate_for(&args, 0, a, 3, occ) == Fate::Forward);
            assert!(healed, "key {} never forwarded in 16 attempts", a);
        }
    }

    #[test]
    fn keyed_frames_use_pinned_round_client_words() {
        let push = Msg::Push {
            mode: 0,
            round: 9,
            client: 4,
            steps: 1,
            weight: 1.0,
            body: fedclust_proto::PushBody::Raw(vec![0.0]),
        };
        let bytes = push.encode();
        // The counter must be irrelevant for keyed frames.
        assert_eq!(keys_for(&bytes, 1), (9, 4));
        assert_eq!(keys_for(&bytes, 999), (9, 4));
        // Keyless frames fall back to the counter band.
        let hello = encode_frame(1, &[1, 0]);
        assert_ne!(keys_for(&hello, 1), keys_for(&hello, 2));
    }
}
