//! `fedclust-worker` binary: thin shell around
//! [`fedclust_cli::worker::run_worker`].

use fedclust_cli::net_args::WorkerArgs;
use fedclust_cli::worker::run_worker;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match WorkerArgs::parse(&argv) {
        Ok(args) => {
            if let Err(msg) = run_worker(&args) {
                eprintln!("error: {}", msg);
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{}", e);
            std::process::exit(2);
        }
    }
}
