//! `fedclustd` binary: thin shell around [`fedclust_cli::net::serve`].

use fedclust_cli::net::serve;
use fedclust_cli::net_args::ServeArgs;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match ServeArgs::parse(&argv) {
        Ok(args) => match serve(&args) {
            Ok(out) => println!("{}", out),
            Err(msg) => {
                eprintln!("error: {}", msg);
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("{}", e);
            std::process::exit(2);
        }
    }
}
