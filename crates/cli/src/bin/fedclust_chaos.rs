//! `fedclust-chaos` binary: thin shell around
//! [`fedclust_cli::chaos::run_chaos`].

use fedclust_cli::chaos::run_chaos;
use fedclust_cli::net_args::ChaosArgs;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match ChaosArgs::parse(&argv) {
        Ok(args) => {
            if let Err(msg) = run_chaos(&args) {
                eprintln!("error: {}", msg);
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{}", e);
            std::process::exit(2);
        }
    }
}
