//! Argument parsing for the networked binaries (`fedclustd`,
//! `fedclust-worker`, `fedclust-chaos`).
//!
//! `fedclustd` is a thin networked wrapper around the ordinary `run`
//! subcommand: every flag it does not recognise is forwarded verbatim to
//! [`Args::parse`] with `run` prepended, and that *exact* argv is what the
//! server ships to workers in its `Welcome` so both sides rebuild the same
//! dataset and config. Validation follows the same discipline as
//! `args.rs`: every rejection names the flag and echoes the offending
//! value, NaN is never accepted where a number is expected, and
//! cross-flag rules are checked after parsing.

use crate::args::{Args, Command, ParseError};
use crate::find_method;

/// Methods the networked server can distribute. These are exactly the
/// methods whose local training runs through `train_round` (plus
/// FedClust's warm-up); methods with bespoke client-side state (e.g.
/// SCAFFOLD control variates) would silently train on the server, so we
/// reject them up front instead.
pub const NETWORKED_METHODS: &[&str] =
    &["fedavg", "fedprox", "fednova", "cfl", "pacfl", "fedclust"];

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, ParseError> {
    s.parse::<T>()
        .map_err(|_| ParseError(format!("invalid value for {}: '{}'", flag, s)))
}

fn check_addr(addr: &str, flag: &str) -> Result<(), ParseError> {
    if addr.is_empty() || !addr.contains(':') {
        return Err(ParseError(format!(
            "{} must be HOST:PORT, got '{}'",
            flag, addr
        )));
    }
    Ok(())
}

fn check_seconds(v: f64, flag: &str, allow_zero: bool) -> Result<(), ParseError> {
    if v.is_nan() {
        return Err(ParseError(format!("{} must not be NaN", flag)));
    }
    // fedlint::allow(float-eq): exact-zero sentinel — zero seconds means "disabled", anything else must be strictly positive
    if !v.is_finite() || v < 0.0 || (!allow_zero && v == 0.0) || v > 3600.0 {
        return Err(ParseError(format!(
            "{} must be {} 3600 seconds, got {}",
            flag,
            if allow_zero { "0 <=" } else { "> 0 and <=" },
            v
        )));
    }
    Ok(())
}

fn check_prob(v: f32, flag: &str) -> Result<(), ParseError> {
    if v.is_nan() {
        return Err(ParseError(format!("{} must not be NaN", flag)));
    }
    if !(0.0..=1.0).contains(&v) {
        return Err(ParseError(format!(
            "{} must be a probability in [0, 1], got {}",
            flag, v
        )));
    }
    Ok(())
}

/// Arguments for the `fedclustd` federation server.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// `--listen HOST:PORT`. Port 0 asks the OS for a free port; the bound
    /// address is printed to stderr for discovery.
    pub listen: String,
    /// `--min-workers N`: block the run until this many workers complete
    /// the handshake (startup barrier).
    pub min_workers: usize,
    /// `--round-timeout SECS`: per-round deadline after which outstanding
    /// clients are written off as lost. `0` disables the deadline.
    pub round_timeout: f64,
    /// `--backoff-base SECS`: base of the shared exponential backoff.
    pub backoff_base: f64,
    /// `--max-inflight N`: bound on buffered, not-yet-absorbed uploads;
    /// pushes beyond it get a typed `Busy` reply.
    pub max_inflight: usize,
    /// The forwarded `run` invocation (validated).
    pub run: Args,
    /// The canonical argv (starting with `run`) shipped in `Welcome`.
    pub run_argv: Vec<String>,
}

impl ServeArgs {
    pub fn parse(argv: &[String]) -> Result<ServeArgs, ParseError> {
        let mut listen = "127.0.0.1:7878".to_string();
        let mut min_workers = 1usize;
        let mut round_timeout = 120.0f64;
        let mut backoff_base = 0.05f64;
        let mut max_inflight = 64usize;
        let mut forwarded: Vec<String> = vec!["run".to_string()];

        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, ParseError> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| ParseError(format!("{} requires a value", name)))
            };
            match arg {
                "--listen" => listen = value("--listen")?,
                "--min-workers" => {
                    min_workers = parse_num(&value("--min-workers")?, "--min-workers")?
                }
                "--round-timeout" => {
                    round_timeout = parse_num(&value("--round-timeout")?, "--round-timeout")?
                }
                "--backoff-base" => {
                    backoff_base = parse_num(&value("--backoff-base")?, "--backoff-base")?
                }
                "--max-inflight" => {
                    max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")?
                }
                _ => forwarded.push(argv[i].clone()),
            }
            i += 1;
        }

        let run = Args::parse(&forwarded)?;
        let out = ServeArgs {
            listen,
            min_workers,
            round_timeout,
            backoff_base,
            max_inflight,
            run,
            run_argv: forwarded,
        };
        out.validate()?;
        Ok(out)
    }

    fn validate(&self) -> Result<(), ParseError> {
        check_addr(&self.listen, "--listen")?;
        if self.min_workers == 0 || self.min_workers > 1024 {
            return Err(ParseError(format!(
                "--min-workers must be in [1, 1024], got {}",
                self.min_workers
            )));
        }
        check_seconds(self.round_timeout, "--round-timeout", true)?;
        check_seconds(self.backoff_base, "--backoff-base", false)?;
        if self.max_inflight == 0 || self.max_inflight > 1 << 16 {
            return Err(ParseError(format!(
                "--max-inflight must be in [1, 65536], got {}",
                self.max_inflight
            )));
        }
        match &self.run.command {
            Command::Run { method } => {
                let m = method.to_lowercase();
                if find_method(&m).is_none() {
                    return Err(ParseError(format!("unknown method '{}'", method)));
                }
                if !NETWORKED_METHODS.contains(&m.as_str()) {
                    return Err(ParseError(format!(
                        "method '{}' cannot be distributed (client-side state); \
                         networked methods: {}",
                        method,
                        NETWORKED_METHODS.join(", ")
                    )));
                }
            }
            _ => {
                return Err(ParseError(
                    "fedclustd only serves the run subcommand; pass run flags directly".to_string(),
                ))
            }
        }
        Ok(())
    }
}

/// Arguments for the `fedclust-worker` client process.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// `--connect HOST:PORT` (required).
    pub connect: String,
    /// `--reconnects N`: reconnect budget across the whole run. Workers
    /// must outlive a server SIGKILL + resume, so the default is generous.
    pub reconnects: usize,
    /// `--backoff-base SECS` for the shared reconnect backoff.
    pub backoff_base: f64,
    /// `--io-timeout SECS`: read timeout while waiting for the server; a
    /// stalled connection (e.g. a chaos-dropped frame) is torn down and
    /// redialled after this long.
    pub io_timeout: f64,
    /// `--threads N` for local training parallelism.
    pub threads: Option<usize>,
    /// `--die-after N` (test hook): exit with the crash code after the
    /// N-th acknowledged push.
    pub die_after: Option<usize>,
    /// `--die-mid-push N` (test hook): write half of the N-th push frame,
    /// then exit with the crash code (torn upload).
    pub die_mid_push: Option<usize>,
}

impl WorkerArgs {
    pub fn parse(argv: &[String]) -> Result<WorkerArgs, ParseError> {
        let mut out = WorkerArgs {
            connect: String::new(),
            reconnects: 1000,
            backoff_base: 0.05,
            io_timeout: 5.0,
            threads: None,
            die_after: None,
            die_mid_push: None,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, ParseError> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| ParseError(format!("{} requires a value", name)))
            };
            match arg {
                "--connect" => out.connect = value("--connect")?,
                "--reconnects" => {
                    out.reconnects = parse_num(&value("--reconnects")?, "--reconnects")?
                }
                "--backoff-base" => {
                    out.backoff_base = parse_num(&value("--backoff-base")?, "--backoff-base")?
                }
                "--io-timeout" => {
                    out.io_timeout = parse_num(&value("--io-timeout")?, "--io-timeout")?
                }
                "--threads" => out.threads = Some(parse_num(&value("--threads")?, "--threads")?),
                "--die-after" => {
                    out.die_after = Some(parse_num(&value("--die-after")?, "--die-after")?)
                }
                "--die-mid-push" => {
                    out.die_mid_push = Some(parse_num(&value("--die-mid-push")?, "--die-mid-push")?)
                }
                other => return Err(ParseError(format!("unknown flag '{}'", other))),
            }
            i += 1;
        }
        out.validate()?;
        Ok(out)
    }

    fn validate(&self) -> Result<(), ParseError> {
        if self.connect.is_empty() {
            return Err(ParseError("--connect HOST:PORT is required".to_string()));
        }
        check_addr(&self.connect, "--connect")?;
        check_seconds(self.backoff_base, "--backoff-base", false)?;
        check_seconds(self.io_timeout, "--io-timeout", false)?;
        if let Some(t) = self.threads {
            if t == 0 || t > 1024 {
                return Err(ParseError(format!(
                    "--threads must be in [1, 1024], got {}",
                    t
                )));
            }
        }
        if self.die_after.is_some() && self.die_mid_push.is_some() {
            return Err(ParseError(
                "--die-after and --die-mid-push are mutually exclusive".to_string(),
            ));
        }
        Ok(())
    }
}

/// Arguments for the `fedclust-chaos` frame-mangling proxy.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// `--listen HOST:PORT` (required): where workers connect.
    pub listen: String,
    /// `--connect HOST:PORT` (required): the real server upstream.
    pub connect: String,
    /// `--chaos-seed N`: root of the deterministic fate schedule.
    pub chaos_seed: u64,
    /// `--drop P`: probability a frame is silently swallowed.
    pub drop: f32,
    /// `--delay P`: probability a frame is forwarded after `--delay-ms`.
    pub delay: f32,
    /// `--truncate P`: probability a frame is cut in half and the
    /// connection closed.
    pub truncate: f32,
    /// `--corrupt P`: probability one payload byte is flipped (the
    /// checksum catches it on the far side).
    pub corrupt: f32,
    /// `--delay-ms N`: how long a delayed frame waits.
    pub delay_ms: u64,
}

impl ChaosArgs {
    pub fn parse(argv: &[String]) -> Result<ChaosArgs, ParseError> {
        let mut out = ChaosArgs {
            listen: String::new(),
            connect: String::new(),
            chaos_seed: 0,
            drop: 0.0,
            delay: 0.0,
            truncate: 0.0,
            corrupt: 0.0,
            delay_ms: 50,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, ParseError> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| ParseError(format!("{} requires a value", name)))
            };
            match arg {
                "--listen" => out.listen = value("--listen")?,
                "--connect" => out.connect = value("--connect")?,
                "--chaos-seed" => {
                    out.chaos_seed = parse_num(&value("--chaos-seed")?, "--chaos-seed")?
                }
                "--drop" => out.drop = parse_num(&value("--drop")?, "--drop")?,
                "--delay" => out.delay = parse_num(&value("--delay")?, "--delay")?,
                "--truncate" => out.truncate = parse_num(&value("--truncate")?, "--truncate")?,
                "--corrupt" => out.corrupt = parse_num(&value("--corrupt")?, "--corrupt")?,
                "--delay-ms" => out.delay_ms = parse_num(&value("--delay-ms")?, "--delay-ms")?,
                other => return Err(ParseError(format!("unknown flag '{}'", other))),
            }
            i += 1;
        }
        out.validate()?;
        Ok(out)
    }

    fn validate(&self) -> Result<(), ParseError> {
        // Cross-flag rule: chaos flags only make sense in networked mode,
        // i.e. with both ends of the proxy configured.
        if self.listen.is_empty() || self.connect.is_empty() {
            return Err(ParseError(
                "chaos proxy requires networked mode: both --listen and --connect must be set"
                    .to_string(),
            ));
        }
        check_addr(&self.listen, "--listen")?;
        check_addr(&self.connect, "--connect")?;
        for (v, flag) in [
            (self.drop, "--drop"),
            (self.delay, "--delay"),
            (self.truncate, "--truncate"),
            (self.corrupt, "--corrupt"),
        ] {
            check_prob(v, flag)?;
        }
        let total = self.drop + self.delay + self.truncate + self.corrupt;
        if total > 1.0 {
            return Err(ParseError(format!(
                "--drop + --delay + --truncate + --corrupt must not exceed 1, got {}",
                total
            )));
        }
        if self.delay_ms > 60_000 {
            return Err(ParseError(format!(
                "--delay-ms must be <= 60000, got {}",
                self.delay_ms
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    // ---- ServeArgs --------------------------------------------------

    #[test]
    fn serve_defaults_and_forwarding() {
        let a = ServeArgs::parse(&sv(&[
            "--method",
            "fedclust",
            "--listen",
            "127.0.0.1:0",
            "--clients",
            "6",
            "--rounds",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.listen, "127.0.0.1:0");
        assert_eq!(a.min_workers, 1);
        assert_eq!(a.max_inflight, 64);
        assert_eq!(a.run.clients, 6);
        assert_eq!(a.run.rounds, 3);
        assert_eq!(
            a.run.command,
            Command::Run {
                method: "fedclust".into()
            }
        );
        // Net-only flags must NOT leak into the forwarded argv.
        assert_eq!(
            a.run_argv,
            sv(&[
                "run",
                "--method",
                "fedclust",
                "--clients",
                "6",
                "--rounds",
                "3"
            ])
        );
    }

    #[test]
    fn serve_rejects_bad_listen() {
        for bad in ["", "localhost"] {
            let err = ServeArgs::parse(&sv(&["--method", "fedavg", "--listen", bad])).unwrap_err();
            assert!(err.0.contains("--listen"), "{}", err.0);
        }
    }

    #[test]
    fn serve_rejects_nan_and_out_of_range_timeouts() {
        let err =
            ServeArgs::parse(&sv(&["--method", "fedavg", "--round-timeout", "NaN"])).unwrap_err();
        assert!(
            err.0.contains("--round-timeout") && err.0.contains("NaN"),
            "{}",
            err.0
        );
        let err =
            ServeArgs::parse(&sv(&["--method", "fedavg", "--round-timeout", "-1"])).unwrap_err();
        assert!(err.0.contains("--round-timeout"), "{}", err.0);
        // Zero disables the deadline and is legal.
        assert!(ServeArgs::parse(&sv(&["--method", "fedavg", "--round-timeout", "0"])).is_ok());
        // Zero backoff would spin; rejected.
        let err =
            ServeArgs::parse(&sv(&["--method", "fedavg", "--backoff-base", "0"])).unwrap_err();
        assert!(
            err.0.contains("--backoff-base") && err.0.contains("0"),
            "{}",
            err.0
        );
        let err =
            ServeArgs::parse(&sv(&["--method", "fedavg", "--backoff-base", "NaN"])).unwrap_err();
        assert!(err.0.contains("NaN"), "{}", err.0);
    }

    #[test]
    fn serve_rejects_zero_inflight_and_workers() {
        let err =
            ServeArgs::parse(&sv(&["--method", "fedavg", "--max-inflight", "0"])).unwrap_err();
        assert!(
            err.0.contains("--max-inflight") && err.0.contains("0"),
            "{}",
            err.0
        );
        let err = ServeArgs::parse(&sv(&["--method", "fedavg", "--min-workers", "0"])).unwrap_err();
        assert!(err.0.contains("--min-workers"), "{}", err.0);
    }

    #[test]
    fn serve_rejects_undistributable_methods() {
        for m in ["scaffold", "fedbn", "ifca", "local"] {
            if find_method(m).is_none() {
                continue;
            }
            let err = ServeArgs::parse(&sv(&["--method", m])).unwrap_err();
            assert!(err.0.contains("cannot be distributed"), "{}: {}", m, err.0);
        }
        let err = ServeArgs::parse(&sv(&["--method", "nosuchmethod"])).unwrap_err();
        assert!(err.0.contains("unknown method"), "{}", err.0);
    }

    #[test]
    fn serve_forwarded_flags_still_validated() {
        // The inner run parser's validation still applies to forwarded flags.
        let err = ServeArgs::parse(&sv(&["--method", "fedavg", "--dropout", "NaN"])).unwrap_err();
        assert!(err.0.contains("--dropout"), "{}", err.0);
    }

    // ---- WorkerArgs -------------------------------------------------

    #[test]
    fn worker_requires_connect() {
        let err = WorkerArgs::parse(&sv(&[])).unwrap_err();
        assert!(err.0.contains("--connect"), "{}", err.0);
        let a = WorkerArgs::parse(&sv(&["--connect", "127.0.0.1:7878"])).unwrap();
        assert_eq!(a.connect, "127.0.0.1:7878");
        assert_eq!(a.reconnects, 1000);
    }

    #[test]
    fn worker_rejects_bad_timeouts() {
        for (flag, bad) in [
            ("--io-timeout", "0"),
            ("--io-timeout", "NaN"),
            ("--io-timeout", "1e9"),
            ("--backoff-base", "-0.5"),
        ] {
            let err = WorkerArgs::parse(&sv(&["--connect", "a:1", flag, bad])).unwrap_err();
            assert!(err.0.contains(flag), "{} {}: {}", flag, bad, err.0);
        }
    }

    #[test]
    fn worker_die_hooks_are_exclusive() {
        let err = WorkerArgs::parse(&sv(&[
            "--connect",
            "a:1",
            "--die-after",
            "1",
            "--die-mid-push",
            "2",
        ]))
        .unwrap_err();
        assert!(err.0.contains("mutually exclusive"), "{}", err.0);
        assert!(WorkerArgs::parse(&sv(&["--connect", "a:1", "--die-after", "1"])).is_ok());
    }

    #[test]
    fn worker_rejects_unknown_flags() {
        let err = WorkerArgs::parse(&sv(&["--connect", "a:1", "--bogus"])).unwrap_err();
        assert!(err.0.contains("--bogus"), "{}", err.0);
    }

    // ---- ChaosArgs --------------------------------------------------

    #[test]
    fn chaos_requires_both_ends() {
        // Chaos flags without networked mode (both endpoints) are rejected.
        for argv in [
            sv(&["--drop", "0.1"]),
            sv(&["--listen", "a:1", "--drop", "0.1"]),
            sv(&["--connect", "b:2", "--corrupt", "0.1"]),
        ] {
            let err = ChaosArgs::parse(&argv).unwrap_err();
            assert!(err.0.contains("networked mode"), "{}", err.0);
        }
        let a = ChaosArgs::parse(&sv(&["--listen", "a:1", "--connect", "b:2"])).unwrap();
        assert_eq!(a.delay_ms, 50);
    }

    #[test]
    fn chaos_rejects_bad_probabilities() {
        for (flag, bad) in [
            ("--drop", "NaN"),
            ("--drop", "1.5"),
            ("--delay", "-0.1"),
            ("--truncate", "inf"),
            ("--corrupt", "2"),
        ] {
            let err = ChaosArgs::parse(&sv(&["--listen", "a:1", "--connect", "b:2", flag, bad]))
                .unwrap_err();
            assert!(err.0.contains(flag), "{} {}: {}", flag, bad, err.0);
        }
    }

    #[test]
    fn chaos_rejects_probability_sum_over_one() {
        let err = ChaosArgs::parse(&sv(&[
            "--listen",
            "a:1",
            "--connect",
            "b:2",
            "--drop",
            "0.5",
            "--corrupt",
            "0.6",
        ]))
        .unwrap_err();
        assert!(err.0.contains("exceed 1"), "{}", err.0);
    }

    #[test]
    fn chaos_rejects_huge_delay() {
        let err = ChaosArgs::parse(&sv(&[
            "--listen",
            "a:1",
            "--connect",
            "b:2",
            "--delay-ms",
            "120000",
        ]))
        .unwrap_err();
        assert!(err.0.contains("--delay-ms"), "{}", err.0);
    }
}
