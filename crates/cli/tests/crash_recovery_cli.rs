//! Kill-and-resume through the real binary: a run crashed by the
//! deterministic injector and then resumed in a fresh process must print
//! byte-identical `--json` output to an uninterrupted run.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Exit code the crash injector uses (fedclust_fl::faults::CRASH_EXIT_CODE).
const CRASH_EXIT_CODE: i32 = 86;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fedclust-cli"))
}

fn base_args(method: &str) -> Vec<String> {
    [
        "run",
        "--method",
        method,
        "--dataset",
        "fmnist",
        "--partition",
        "skew50",
        "--clients",
        "4",
        "--rounds",
        "4",
        "--epochs",
        "1",
        "--samples-per-class",
        "10",
        "--seed",
        "7",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fedclust-cli-ckpt-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(args: &[String]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "run failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Crash a checkpointed run after round 1, resume it in a new process, and
/// require the resumed `--json` output to match an uninterrupted run
/// byte for byte.
fn crash_and_resume_matches(method: &str, mid_write: bool) {
    let tag = format!("{}-{}", method, if mid_write { "torn" } else { "clean" });
    let dir = tmpdir(&tag);
    let dir_s = dir.to_string_lossy().into_owned();

    let clean = stdout_of(&run(&base_args(method)));

    let mut crash_args = base_args(method);
    crash_args.extend(
        [
            "--checkpoint-dir",
            &dir_s,
            "--checkpoint-every",
            "1",
            "--keep",
            "8",
            "--crash-after",
            "1",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    if mid_write {
        crash_args.push("--crash-mid-write".into());
    }
    let crashed = run(&crash_args);
    assert_eq!(
        crashed.status.code(),
        Some(CRASH_EXIT_CODE),
        "crash injector did not fire: {}\n{}",
        crashed.status,
        String::from_utf8_lossy(&crashed.stderr)
    );

    let mut resume_args = base_args(method);
    resume_args.extend(
        ["--checkpoint-dir", &dir_s, "--keep", "8", "--resume"]
            .iter()
            .map(|s| s.to_string()),
    );
    let resumed_out = run(&resume_args);
    let resumed = stdout_of(&resumed_out);
    let stderr = String::from_utf8_lossy(&resumed_out.stderr);
    assert!(
        stderr.contains("resuming"),
        "expected a resume diagnostic on stderr, got: {}",
        stderr
    );
    assert_eq!(clean, resumed, "{}: resumed output diverged", method);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fedavg_crash_resume_is_byte_identical() {
    crash_and_resume_matches("fedavg", false);
}

#[test]
fn scaffold_crash_resume_is_byte_identical() {
    crash_and_resume_matches("scaffold", false);
}

#[test]
fn fedclust_crash_resume_is_byte_identical() {
    crash_and_resume_matches("fedclust", false);
}

#[test]
fn torn_checkpoint_write_recovers_from_an_older_generation() {
    // The injector dies halfway through writing the round-1 checkpoint;
    // the temp file never becomes a generation, so resume starts from the
    // round-0 one — and still matches the uninterrupted run exactly.
    crash_and_resume_matches("fedavg", true);
}

#[test]
fn resume_with_a_different_seed_is_refused() {
    let dir = tmpdir("seed-mismatch");
    let dir_s = dir.to_string_lossy().into_owned();

    let mut first = base_args("fedavg");
    first.extend(["--checkpoint-dir", &dir_s].iter().map(|s| s.to_string()));
    stdout_of(&run(&first));

    let mut mismatched = base_args("fedavg");
    mismatched.extend(
        ["--checkpoint-dir", &dir_s, "--resume", "--seed", "8"]
            .iter()
            .map(|s| s.to_string()),
    );
    let out = run(&mismatched);
    assert_eq!(out.status.code(), Some(1), "{}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("seed"), "unhelpful error: {}", stderr);

    let _ = std::fs::remove_dir_all(&dir);
}
