//! End-to-end networked federation through the real binaries: a
//! `fedclustd` server plus a fleet of `fedclust-worker` processes over
//! localhost TCP (optionally through the `fedclust-chaos` frame-mangling
//! proxy) must print byte-identical `--json` output to the in-process
//! simulation at the same seed — including across a server SIGKILL +
//! resume and a worker dying mid-upload.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Exit code the crash hooks use (fedclust_fl::faults::CRASH_EXIT_CODE).
const CRASH_EXIT_CODE: i32 = 86;

fn run_args(method: &str, extra: &[&str]) -> Vec<String> {
    let mut v: Vec<String> = [
        "--method",
        method,
        "--dataset",
        "fmnist",
        "--partition",
        "skew50",
        "--clients",
        "4",
        "--rounds",
        "3",
        "--epochs",
        "1",
        "--samples-per-class",
        "10",
        "--seed",
        "7",
        "--json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    v.extend(extra.iter().map(|s| s.to_string()));
    v
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedclust-net-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Reference output from the ordinary in-process CLI.
fn in_process(method: &str, extra: &[&str]) -> String {
    let mut args = vec!["run".to_string()];
    args.extend(run_args(method, extra));
    let out = Command::new(env!("CARGO_BIN_EXE_fedclust-cli"))
        .args(&args)
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "reference run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A spawned process whose stderr is scanned for a `listening on <addr>`
/// discovery line.
struct NetProc {
    child: Child,
    addr: String,
}

fn spawn_listener(bin: &str, args: &[String], prefix: &str) -> NetProc {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let stderr = child.stderr.take().expect("stderr piped");
    let (tx, rx) = mpsc::channel::<String>();
    let prefix = prefix.to_string();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix(&prefix) {
                // Chaos prints "ADDR -> upstream"; take the first word.
                let addr = rest.split_whitespace().next().unwrap_or("").to_string();
                let _ = tx.send(addr);
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("process never printed its listen address");
    NetProc { child, addr }
}

fn spawn_server(method: &str, extra: &[&str], net: &[&str]) -> NetProc {
    let mut args: Vec<String> = ["--listen", "127.0.0.1:0"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    args.extend(net.iter().map(|s| s.to_string()));
    args.extend(run_args(method, extra));
    spawn_listener(
        env!("CARGO_BIN_EXE_fedclustd"),
        &args,
        "fedclustd: listening on ",
    )
}

fn spawn_worker(addr: &str, extra: &[&str]) -> Child {
    let mut args = vec!["--connect".to_string(), addr.to_string()];
    // Short I/O timeout and backoff so loss-heavy scenarios (chaos, server
    // kill) redial quickly; neither knob feeds the training determinism.
    args.push("--io-timeout".into());
    args.push("1".into());
    args.push("--backoff-base".into());
    args.push("0.01".into());
    args.extend(extra.iter().map(|s| s.to_string()));
    Command::new(env!("CARGO_BIN_EXE_fedclust-worker"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

/// Wait for the server to finish and return its stdout.
fn finish(mut server: NetProc) -> String {
    let mut stdout = String::new();
    server
        .child
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut stdout)
        .expect("read server stdout");
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "server failed with {}", status);
    stdout
}

/// Reap workers with a bounded grace period. Workers normally exit on the
/// server's `Done`, but one sleeping through a reconnect backoff can miss
/// the server's shutdown grace window and keep redialling a dead address —
/// waiting on it unconditionally would hang the suite, so after the grace
/// we kill what's left.
fn reap(mut workers: Vec<Child>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    for w in &mut workers {
        loop {
            match w.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => {
                    let _ = w.kill();
                    let _ = w.wait();
                    break;
                }
            }
        }
    }
}

/// FedAvg over localhost with two worker processes: byte-identical to the
/// in-process simulation at the same seed.
#[test]
fn networked_fedavg_matches_in_process() {
    let reference = in_process("fedavg", &[]);
    let server = spawn_server("fedavg", &[], &["--min-workers", "2"]);
    let workers = vec![
        spawn_worker(&server.addr, &[]),
        spawn_worker(&server.addr, &[]),
    ];
    let out = finish(server);
    reap(workers);
    assert_eq!(reference, out, "networked FedAvg diverged from simulation");
}

/// FedClust (round-0 warmup collection + clustered rounds) over localhost
/// with four worker processes — the full weight-driven clustering path
/// runs with training farmed out and must replay bit-identically.
#[test]
fn networked_fedclust_with_four_workers_matches_in_process() {
    let reference = in_process("fedclust", &[]);
    let server = spawn_server("fedclust", &[], &["--min-workers", "4"]);
    let workers: Vec<Child> = (0..4).map(|_| spawn_worker(&server.addr, &[])).collect();
    let out = finish(server);
    reap(workers);
    assert_eq!(
        reference, out,
        "networked FedClust diverged from simulation"
    );
}

/// A codec-compressed networked run: the worker-side encoder and the
/// in-process transport share one encode entry point, so wire bytes,
/// decoded states, and comm accounting must agree exactly.
#[test]
fn networked_codec_run_matches_in_process() {
    let extra = ["--codec", "delta+q8+sr"];
    let reference = in_process("fedavg", &extra);
    let server = spawn_server("fedavg", &extra, &["--min-workers", "2"]);
    let workers = vec![
        spawn_worker(&server.addr, &[]),
        spawn_worker(&server.addr, &[]),
    ];
    let out = finish(server);
    reap(workers);
    assert_eq!(reference, out, "codec-compressed networked run diverged");
}

/// FedClust end-to-end through the chaos proxy at a fixed chaos seed:
/// dropped, delayed, truncated, and corrupted frames must all heal
/// through the shared retry machinery, leaving the output byte-identical
/// to the clean simulation.
#[test]
fn chaos_proxy_run_is_bit_identical() {
    // A retry budget comfortably above the chaos pressure; with zero
    // downlink loss the flag is inert in-process, so the reference is
    // unchanged by it.
    let extra = ["--retries", "8"];
    let reference = in_process("fedclust", &extra);
    let server = spawn_server("fedclust", &extra, &["--min-workers", "2"]);
    let chaos_args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--connect",
        &server.addr,
        "--chaos-seed",
        "11",
        "--drop",
        "0.05",
        "--corrupt",
        "0.05",
        "--truncate",
        "0.03",
        "--delay",
        "0.10",
        "--delay-ms",
        "20",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut chaos = spawn_listener(
        env!("CARGO_BIN_EXE_fedclust-chaos"),
        &chaos_args,
        "fedclust-chaos: listening on ",
    );
    let workers = vec![
        spawn_worker(&chaos.addr, &[]),
        spawn_worker(&chaos.addr, &[]),
    ];
    let out = finish(server);
    reap(workers);
    let _ = chaos.child.kill();
    let _ = chaos.child.wait();
    assert_eq!(reference, out, "chaos-proxied run diverged from simulation");
}

/// SIGKILL the server mid-round, restart it with `--resume` on the same
/// port, and require (a) byte-identical final `--json` output and (b) a
/// byte-identical final checkpoint generation versus an uninterrupted
/// checkpointed in-process run. Workers survive the outage and reconnect.
#[test]
fn server_sigkill_and_resume_is_byte_identical() {
    let ref_dir = tmpdir("sigkill-ref");
    let ref_dir_s = ref_dir.to_string_lossy().into_owned();
    let net_dir = tmpdir("sigkill-net");
    let net_dir_s = net_dir.to_string_lossy().into_owned();
    fn ckpt(d: &str) -> [&str; 6] {
        [
            "--checkpoint-dir",
            d,
            "--checkpoint-every",
            "1",
            "--keep",
            "8",
        ]
    }

    let reference = in_process("fedclust", &ckpt(&ref_dir_s));

    let server = spawn_server("fedclust", &ckpt(&net_dir_s), &["--min-workers", "2"]);
    let addr = server.addr.clone();
    let workers = vec![spawn_worker(&addr, &[]), spawn_worker(&addr, &[])];

    // Let the run get past its first durable checkpoint, then SIGKILL the
    // server at an arbitrary (mid-round) moment.
    let mut server = server;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !net_dir.join("ckpt-000001.bin").exists() {
        assert!(Instant::now() < deadline, "first checkpoint never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(100));
    server.child.kill().expect("SIGKILL server");
    let _ = server.child.wait();

    // Restart on the same port with --resume; the surviving workers are
    // still redialling it. The port was just freed, so give bind a few
    // tries.
    let mut resume_args: Vec<String> = vec!["--listen".into(), addr.clone()];
    resume_args.extend(["--min-workers", "1"].iter().map(|s| s.to_string()));
    resume_args.extend(run_args("fedclust", &ckpt(&net_dir_s)));
    resume_args.push("--resume".into());
    let resumed = retry_spawn(&resume_args);
    let out = finish(resumed);
    reap(workers);
    assert_eq!(reference, out, "resumed networked run diverged");

    // The final checkpoint generation must match the reference run's,
    // byte for byte.
    let newest = |d: &PathBuf| -> (String, Vec<u8>) {
        let mut names: Vec<String> = std::fs::read_dir(d)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
            .collect();
        names.sort();
        let last = names.last().expect("at least one checkpoint").clone();
        let bytes = std::fs::read(d.join(&last)).unwrap();
        (last, bytes)
    };
    let (ref_name, ref_bytes) = newest(&ref_dir);
    let (net_name, net_bytes) = newest(&net_dir);
    assert_eq!(ref_name, net_name, "final checkpoint generation differs");
    assert_eq!(ref_bytes, net_bytes, "final checkpoint bytes differ");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&net_dir);
}

fn retry_spawn(args: &[String]) -> NetProc {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fedclustd"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn");
        let stderr = child.stderr.take().expect("stderr piped");
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::spawn(move || {
            for line in BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("fedclustd: listening on ") {
                    let _ = tx.send(rest.trim().to_string());
                }
            }
        });
        match rx.recv_timeout(Duration::from_secs(5)) {
            Ok(addr) => return NetProc { child, addr },
            Err(_) => {
                // Bind likely failed (port still settling); reap and retry.
                let _ = child.kill();
                let _ = child.wait();
                assert!(Instant::now() < deadline, "could not rebind resume port");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

/// One worker dies cleanly after its first acknowledged push; the
/// surviving worker picks up the requeued leases and the run still
/// replays bit-identically (failover, not loss).
///
/// Scheduling race: the run is small enough (12 units) that the doomed
/// worker can sleep through a server `Wait` while the survivor drains
/// every lease, receive `Done` having pushed nothing, and exit 0 — the
/// hook simply never fired. That outcome is benign (the output must
/// still match the reference), so we re-race the scenario until the
/// crash path is actually exercised, within a bounded attempt budget.
#[test]
fn worker_death_fails_over_without_perturbing_the_run() {
    let reference = in_process("fedavg", &[]);
    const ATTEMPTS: usize = 10;
    for _ in 0..ATTEMPTS {
        let server = spawn_server("fedavg", &[], &["--min-workers", "2"]);
        let mut doomed = spawn_worker(&server.addr, &["--die-after", "1"]);
        let survivor = spawn_worker(&server.addr, &[]);
        let out = finish(server);
        let status = doomed.wait().expect("doomed worker exits");
        reap(vec![survivor]);
        assert_eq!(reference, out, "worker failover perturbed the run");
        match status.code() {
            Some(CRASH_EXIT_CODE) => return, // hook fired: failover exercised
            Some(0) => {}                    // doomed never won a lease; re-race
            other => panic!("doomed worker exited with unexpected status {:?}", other),
        }
    }
    panic!(
        "die-after hook never fired in {ATTEMPTS} attempts — the doomed worker never got a lease"
    );
}

/// A worker killed mid-upload (torn push frame) with a zero retry budget:
/// the unit is written off, the run degrades gracefully, and the loss
/// shows up in the fault telemetry — the server must NOT hang or crash.
#[test]
fn worker_torn_upload_degrades_gracefully_with_telemetry() {
    let server = spawn_server(
        "fedavg",
        &["--retries", "0"],
        &["--min-workers", "2", "--round-timeout", "60"],
    );
    let mut doomed = spawn_worker(&server.addr, &["--die-mid-push", "1"]);
    let survivor = spawn_worker(&server.addr, &[]);
    let out = finish(server);
    let status = doomed.wait().expect("doomed worker exits");
    assert_eq!(status.code(), Some(CRASH_EXIT_CODE));
    reap(vec![survivor]);

    // The loss is genuine (budget 0 ⇒ no redispatch), so it must appear
    // in the deterministic telemetry as an uplink loss + injected fault.
    assert!(
        json_u64(&out, "uplink_losses") >= 1,
        "torn upload must be recorded as an uplink loss:\n{}",
        out
    );
    assert!(
        json_u64(&out, "faults_injected") >= 1,
        "torn upload must count as an injected fault:\n{}",
        out
    );
}

/// Pull an integer field out of the pretty-printed `--json` output (the
/// vendored serde_json has no dynamic Value type).
fn json_u64(json: &str, field: &str) -> u64 {
    let needle = format!("\"{}\":", field);
    let rest = &json[json
        .find(&needle)
        .unwrap_or_else(|| panic!("no {field} in output"))
        + needle.len()..];
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().expect("integer field")
}
