//! Class-conditional synthetic image generation.
//!
//! Each class gets a *prototype*: a smooth random field blended with a
//! dataset-wide base image (the blend fraction sets inter-class
//! confusability). A sample is its class prototype after a random integer
//! translation, brightness jitter, and per-pixel Gaussian noise. This gives
//! the classifier something genuinely learnable with controllable
//! difficulty, and — crucially for FedClust — makes clients that hold the
//! same labels train similar classifier heads.

use crate::dataset::Dataset;
use crate::profiles::{DatasetProfile, ProfileParams};
use fedclust_tensor::init::NormalDist;
use fedclust_tensor::rng::{derive, streams};
use fedclust_tensor::Tensor;
use rand::Rng;

/// A smooth random field in roughly `[-1, 1]`: white noise box-blurred a
/// few times so prototypes have spatial structure (edges survive shifts).
fn smooth_field(h: usize, w: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut field: Vec<f32> = (0..h * w).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
    let mut tmp = vec![0.0f32; h * w];
    for _ in 0..3 {
        // 3×3 box blur with clamped borders.
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let yy = y as i32 + dy;
                        let xx = x as i32 + dx;
                        if yy >= 0 && yy < h as i32 && xx >= 0 && xx < w as i32 {
                            acc += field[yy as usize * w + xx as usize];
                            cnt += 1.0;
                        }
                    }
                }
                tmp[y * w + x] = acc / cnt;
            }
        }
        std::mem::swap(&mut field, &mut tmp);
    }
    // Re-normalise to unit-ish scale after blurring.
    let max = field.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
    for v in &mut field {
        *v /= max;
    }
    field
}

/// Per-class prototypes for a profile: shape `(classes, channels, h, w)`.
pub fn class_prototypes(profile: DatasetProfile, root_seed: u64) -> Tensor {
    let p = profile.params();
    let mut rng = derive(root_seed, &[streams::DATA, profile.stream_id(), 0]);
    let plane = p.height * p.width;
    // Shared base per channel.
    let base: Vec<Vec<f32>> = (0..p.channels)
        .map(|_| smooth_field(p.height, p.width, &mut rng))
        .collect();
    let mut data = Vec::with_capacity(p.num_classes * p.channels * plane);
    for _class in 0..p.num_classes {
        for (ch, base_plane) in base.iter().enumerate() {
            let _ = ch;
            let unique = smooth_field(p.height, p.width, &mut rng);
            for i in 0..plane {
                data.push(p.base_blend * base_plane[i] + (1.0 - p.base_blend) * unique[i]);
            }
        }
    }
    Tensor::from_vec([p.num_classes, p.channels, p.height, p.width], data)
}

/// Shift a `(c, h, w)` image by `(dy, dx)` pixels with zero fill.
fn shift_image(src: &[f32], c: usize, h: usize, w: usize, dy: i32, dx: i32, dst: &mut [f32]) {
    dst.fill(0.0);
    for ch in 0..c {
        for y in 0..h {
            let sy = y as i32 - dy;
            if sy < 0 || sy >= h as i32 {
                continue;
            }
            for x in 0..w {
                let sx = x as i32 - dx;
                if sx < 0 || sx >= w as i32 {
                    continue;
                }
                dst[ch * h * w + y * w + x] = src[ch * h * w + sy as usize * w + sx as usize];
            }
        }
    }
}

/// Synthesise one sample of class `class` given the prototypes.
fn sample_image(
    prototypes: &Tensor,
    params: &ProfileParams,
    class: usize,
    rng: &mut impl Rng,
    out: &mut [f32],
) {
    let (c, h, w) = (params.channels, params.height, params.width);
    let plane = c * h * w;
    let proto = &prototypes.data()[class * plane..(class + 1) * plane];
    let s = params.max_shift as i32;
    let (dy, dx) = if s > 0 {
        (rng.gen_range(-s..=s), rng.gen_range(-s..=s))
    } else {
        (0, 0)
    };
    shift_image(proto, c, h, w, dy, dx, out);
    let brightness = 1.0 + rng.gen_range(-params.brightness_jitter..=params.brightness_jitter);
    let noise = NormalDist::new(0.0, params.noise_std);
    for v in out.iter_mut() {
        *v = *v * brightness + noise.sample(rng);
    }
}

/// Generate a pooled dataset with `samples_per_class` samples of every
/// class, in class-major order (all class-0 samples first, etc.).
///
/// Deterministic in `(profile, root_seed, samples_per_class)`.
pub fn generate_pool(profile: DatasetProfile, samples_per_class: usize, root_seed: u64) -> Dataset {
    let params = profile.params();
    let prototypes = class_prototypes(profile, root_seed);
    let plane = params.channels * params.height * params.width;
    let n = params.num_classes * samples_per_class;
    let mut data = vec![0.0f32; n * plane];
    let mut labels = Vec::with_capacity(n);
    let mut rng = derive(root_seed, &[streams::DATA, profile.stream_id(), 1]);
    for class in 0..params.num_classes {
        for s in 0..samples_per_class {
            let i = class * samples_per_class + s;
            sample_image(
                &prototypes,
                &params,
                class,
                &mut rng,
                &mut data[i * plane..(i + 1) * plane],
            );
            labels.push(class);
        }
    }
    Dataset::new(
        Tensor::from_vec([n, params.channels, params.height, params.width], data),
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_tensor::distance::l2;

    #[test]
    fn pool_shape_and_labels() {
        let d = generate_pool(DatasetProfile::FmnistLike, 5, 7);
        assert_eq!(d.len(), 50);
        assert_eq!(d.images.dims(), &[50, 1, 16, 16]);
        assert_eq!(d.class_counts(10), vec![5; 10]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_pool(DatasetProfile::Cifar10Like, 3, 42);
        let b = generate_pool(DatasetProfile::Cifar10Like, 3, 42);
        assert_eq!(a.images.data(), b.images.data());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_pool(DatasetProfile::Cifar10Like, 3, 1);
        let b = generate_pool(DatasetProfile::Cifar10Like, 3, 2);
        assert_ne!(a.images.data(), b.images.data());
    }

    #[test]
    fn same_class_is_closer_than_cross_class_on_average() {
        // The core property the classifier exploits: intra-class distance
        // < inter-class distance (in expectation).
        let d = generate_pool(DatasetProfile::FmnistLike, 10, 3);
        let sz = d.sample_numel();
        let img = |i: usize| &d.images.data()[i * sz..(i + 1) * sz];
        // class 0 = samples 0..10, class 1 = samples 10..20.
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n = 0;
        for i in 0..10 {
            for j in (i + 1)..10 {
                intra += l2(img(i), img(j));
                inter += l2(img(i), img(10 + j));
                n += 1;
            }
        }
        let (intra_mean, inter_mean) = (intra / n as f32, inter / n as f32);
        assert!(
            intra_mean < inter_mean,
            "intra {} inter {}",
            intra_mean,
            inter_mean
        );
    }

    #[test]
    fn prototypes_have_expected_shape() {
        let p = class_prototypes(DatasetProfile::Cifar100Like, 0);
        assert_eq!(p.dims(), &[20, 3, 8, 8]);
        assert!(!p.has_non_finite());
    }

    #[test]
    fn samples_are_finite() {
        let d = generate_pool(DatasetProfile::SvhnLike, 4, 9);
        assert!(!d.images.has_non_finite());
    }

    #[test]
    fn shift_moves_content() {
        let src: Vec<f32> = (0..9).map(|v| v as f32).collect();
        let mut dst = vec![0.0f32; 9];
        shift_image(&src, 1, 3, 3, 1, 0, &mut dst);
        // Row 0 becomes zeros, row 1 gets old row 0.
        assert_eq!(&dst[0..3], &[0.0, 0.0, 0.0]);
        assert_eq!(&dst[3..6], &[0.0, 1.0, 2.0]);
    }
}
