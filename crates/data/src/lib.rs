//! # fedclust-data
//!
//! Synthetic federated image-classification datasets and non-IID
//! partitioners.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, FMNIST and SVHN. Real
//! datasets are not available offline, so this crate provides
//! class-conditional synthetic generators with matching *structure* — the
//! phenomena the paper measures (client drift under label skew, classifier
//! weights encoding local label distributions) depend on the label geometry
//! across clients, not on natural-image statistics; DESIGN.md §2 documents
//! the substitution in full.
//!
//! Pipeline:
//!
//! 1. pick a [`profiles::DatasetProfile`] (e.g. `Cifar10Like`),
//! 2. synthesise a pooled dataset with [`synth::generate_pool`],
//! 3. split it across clients with a [`partition::Partition`] strategy
//!    (IID, label-skew δ%, Dirichlet α),
//! 4. obtain a [`federated::FederatedDataset`] of per-client train/test
//!    splits.

pub mod dataset;
pub mod federated;
pub mod partition;
pub mod profiles;
pub mod synth;

pub use dataset::{ClientData, Dataset};
pub use federated::FederatedDataset;
pub use partition::Partition;
pub use profiles::DatasetProfile;
