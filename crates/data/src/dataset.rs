//! In-memory dataset containers and minibatching.

use fedclust_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled image dataset held in one contiguous tensor.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, shape `(n, channels, height, width)`.
    pub images: Tensor,
    /// Integer class labels, length `n`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Assemble from an image tensor and labels.
    ///
    /// # Panics
    /// Panics if the image count and label count disagree or the image
    /// tensor is not 4-dimensional.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.shape().ndim(), 4, "images must be (n, c, h, w)");
        assert_eq!(images.dims()[0], labels.len(), "image/label count mismatch");
        Dataset { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Size of one image in scalars.
    pub fn sample_numel(&self) -> usize {
        self.images.dims()[1..].iter().product()
    }

    /// Gather a subset by sample indices into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let sz = self.sample_numel();
        let dims = self.images.dims();
        let mut data = Vec::with_capacity(indices.len() * sz);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images.data()[i * sz..(i + 1) * sz]);
            labels.push(self.labels[i]);
        }
        let images = Tensor::from_vec([indices.len(), dims[1], dims[2], dims[3]], data);
        Dataset::new(images, labels)
    }

    /// Gather a batch `(x, y)` by sample indices.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.subset(indices);
        (d.images, d.labels)
    }

    /// Shuffled minibatch index lists covering the whole dataset once.
    /// The final batch may be smaller than `batch_size`.
    pub fn minibatch_indices(&self, batch_size: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Set of distinct labels present, sorted ascending.
    pub fn label_set(&self) -> Vec<usize> {
        let mut l = self.labels.clone();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// Count of samples per class, over `num_classes` classes.
    pub fn class_counts(&self, num_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// One client's local data: disjoint train and test splits.
#[derive(Debug, Clone)]
pub struct ClientData {
    /// Local training split.
    pub train: Dataset,
    /// Local held-out test split (the paper's "local test accuracy" is
    /// measured on this).
    pub test: Dataset,
}

impl ClientData {
    /// Total local samples (train + test).
    pub fn total_samples(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Number of training samples (the FedAvg aggregation weight `n_i`).
    pub fn train_samples(&self) -> usize {
        self.train.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let images = Tensor::from_vec([4, 1, 2, 2], (0..16).map(|v| v as f32).collect());
        Dataset::new(images, vec![0, 1, 0, 1])
    }

    #[test]
    fn subset_gathers_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(&s.images.data()[0..4], &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(&s.images.data()[4..8], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let d = toy();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
        let batches = d.minibatch_indices(3, &mut rng);
        assert_eq!(batches.len(), 2);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn label_set_and_counts() {
        let d = toy();
        assert_eq!(d.label_set(), vec![0, 1]);
        assert_eq!(d.class_counts(3), vec![2, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "image/label count mismatch")]
    fn mismatched_labels_panic() {
        let images = Tensor::zeros([2, 1, 2, 2]);
        let _ = Dataset::new(images, vec![0]);
    }
}
