//! Dataset profiles: the four benchmark datasets' synthetic stand-ins.

use serde::{Deserialize, Serialize};

/// Parameters of one synthetic dataset family.
///
/// `base_blend` controls inter-class confusability: each class prototype is
/// `base_blend · shared_base + (1 − base_blend) · class_unique`, so larger
/// values make classes harder to tell apart (CIFAR-like difficulty), while
/// small values give clean, separable classes (FMNIST-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileParams {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Per-pixel Gaussian noise std added to each sample.
    pub noise_std: f32,
    /// Maximum random translation (pixels) applied per sample.
    pub max_shift: usize,
    /// Fraction of the shared base image blended into every prototype.
    pub base_blend: f32,
    /// Random per-sample brightness jitter amplitude.
    pub brightness_jitter: f32,
}

/// The four benchmark datasets the paper evaluates, as synthetic profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// CIFAR-10 stand-in: 10 classes, 3×16×16, moderately hard.
    Cifar10Like,
    /// CIFAR-100 stand-in: 20 classes (scaled from 100), 3×8×8, hard.
    Cifar100Like,
    /// Fashion-MNIST stand-in: 10 classes, 1×16×16, easy.
    FmnistLike,
    /// SVHN stand-in: 10 classes, 3×16×16, high intra-class variance.
    SvhnLike,
}

impl DatasetProfile {
    /// All four profiles, in the paper's table order.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::Cifar10Like,
        DatasetProfile::Cifar100Like,
        DatasetProfile::FmnistLike,
        DatasetProfile::SvhnLike,
    ];

    /// The profile's display name (matching the paper's column headers).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Cifar10Like => "CIFAR-10",
            DatasetProfile::Cifar100Like => "CIFAR-100",
            DatasetProfile::FmnistLike => "FMNIST",
            DatasetProfile::SvhnLike => "SVHN",
        }
    }

    /// Generation parameters for this profile.
    pub fn params(&self) -> ProfileParams {
        match self {
            DatasetProfile::Cifar10Like => ProfileParams {
                num_classes: 10,
                channels: 3,
                height: 16,
                width: 16,
                noise_std: 0.45,
                max_shift: 2,
                base_blend: 0.55,
                brightness_jitter: 0.15,
            },
            DatasetProfile::Cifar100Like => ProfileParams {
                num_classes: 20,
                channels: 3,
                // 8×8 keeps the ResNet-9 column inside the CPU budget
                // (see EXPERIMENTS.md scaling notes).
                height: 8,
                width: 8,
                noise_std: 0.45,
                max_shift: 2,
                base_blend: 0.65,
                brightness_jitter: 0.15,
            },
            DatasetProfile::FmnistLike => ProfileParams {
                num_classes: 10,
                channels: 1,
                height: 16,
                width: 16,
                noise_std: 0.35,
                max_shift: 1,
                base_blend: 0.35,
                brightness_jitter: 0.08,
            },
            DatasetProfile::SvhnLike => ProfileParams {
                num_classes: 10,
                channels: 3,
                height: 16,
                width: 16,
                noise_std: 0.55,
                max_shift: 3,
                base_blend: 0.45,
                brightness_jitter: 0.25,
            },
        }
    }

    /// A stable seed-stream label per profile (keeps dataset synthesis of
    /// different profiles statistically independent under one root seed).
    pub fn stream_id(&self) -> u64 {
        match self {
            DatasetProfile::Cifar10Like => 11,
            DatasetProfile::Cifar100Like => 12,
            DatasetProfile::FmnistLike => 13,
            DatasetProfile::SvhnLike => 14,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_distinct() {
        for (i, a) in DatasetProfile::ALL.iter().enumerate() {
            for b in DatasetProfile::ALL.iter().skip(i + 1) {
                assert_ne!(a, b);
                assert_ne!(a.name(), b.name());
                assert_ne!(a.stream_id(), b.stream_id());
            }
        }
    }

    #[test]
    fn cifar100_has_more_classes() {
        assert!(
            DatasetProfile::Cifar100Like.params().num_classes
                > DatasetProfile::Cifar10Like.params().num_classes
        );
    }

    #[test]
    fn fmnist_is_grayscale() {
        assert_eq!(DatasetProfile::FmnistLike.params().channels, 1);
    }

    #[test]
    fn svhn_has_highest_variance() {
        let svhn = DatasetProfile::SvhnLike.params();
        for p in [DatasetProfile::Cifar10Like, DatasetProfile::FmnistLike] {
            assert!(svhn.noise_std >= p.params().noise_std);
            assert!(svhn.max_shift >= p.params().max_shift);
        }
    }
}
