//! The federated dataset: per-client train/test splits plus ground truth.

use crate::dataset::{ClientData, Dataset};
use crate::partition::Partition;
use crate::profiles::DatasetProfile;
use crate::synth::generate_pool;
use fedclust_tensor::rng::{derive, streams};
use rand::seq::SliceRandom;
use rand::Rng;

/// A full federated learning dataset: `num_clients` clients, each with a
/// local train/test split, plus the metadata experiments need (ground-truth
/// label sets per client, dataset geometry).
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    /// Per-client local data.
    pub clients: Vec<ClientData>,
    /// The dataset profile this was synthesised from.
    pub profile: DatasetProfile,
    /// The partition strategy used.
    pub partition: Partition,
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
}

/// Configuration for building a [`FederatedDataset`].
#[derive(Debug, Clone, Copy)]
pub struct FederatedConfig {
    /// Number of clients.
    pub num_clients: usize,
    /// Pool samples generated per class.
    pub samples_per_class: usize,
    /// Fraction of each client's samples used for training (rest is the
    /// local test set).
    pub train_fraction: f32,
    /// Root seed for synthesis and partitioning.
    pub seed: u64,
}

impl Default for FederatedConfig {
    fn default() -> Self {
        FederatedConfig {
            num_clients: 100,
            samples_per_class: 1000,
            train_fraction: 0.8,
            seed: 42,
        }
    }
}

impl FederatedDataset {
    /// Synthesise and partition a federated dataset.
    pub fn build(profile: DatasetProfile, partition: Partition, cfg: &FederatedConfig) -> Self {
        let params = profile.params();
        let pool = generate_pool(profile, cfg.samples_per_class, cfg.seed);
        let mut rng = derive(cfg.seed, &[streams::PARTITION, profile.stream_id()]);
        let assignment =
            partition.assign(&pool.labels, params.num_classes, cfg.num_clients, &mut rng);

        let clients = assignment
            .iter()
            .map(|indices| split_client(&pool, indices, cfg.train_fraction, &mut rng))
            .collect();

        FederatedDataset {
            clients,
            profile,
            partition,
            num_classes: params.num_classes,
            channels: params.channels,
            height: params.height,
            width: params.width,
        }
    }

    /// Synthesise a federated dataset with an *explicit* label set per
    /// client (e.g. clients 0–4 hold classes {0..5}, clients 5–9 hold
    /// {5..10} — the two-group setup of the paper's Fig. 1 study). Samples
    /// of each class are split evenly among the clients that own it;
    /// classes owned by nobody are dropped.
    pub fn build_grouped(
        profile: DatasetProfile,
        client_labels: &[Vec<usize>],
        cfg: &FederatedConfig,
    ) -> Self {
        let params = profile.params();
        let pool = generate_pool(profile, cfg.samples_per_class, cfg.seed);
        let mut rng = derive(cfg.seed, &[streams::PARTITION, profile.stream_id(), 99]);

        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); params.num_classes];
        for (client, labels) in client_labels.iter().enumerate() {
            for &l in labels {
                assert!(l < params.num_classes, "label {} out of range", l);
                owners[l].push(client);
            }
        }
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); params.num_classes];
        for (i, &l) in pool.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); client_labels.len()];
        for (l, samples) in by_class.iter().enumerate() {
            if owners[l].is_empty() {
                continue;
            }
            let mut shuffled = samples.clone();
            shuffled.shuffle(&mut rng);
            for (i, &s) in shuffled.iter().enumerate() {
                assignment[owners[l][i % owners[l].len()]].push(s);
            }
        }
        let clients = assignment
            .iter()
            .map(|indices| split_client(&pool, indices, cfg.train_fraction, &mut rng))
            .collect();
        FederatedDataset {
            clients,
            profile,
            partition: Partition::Iid, // placeholder tag; grouping was explicit
            num_classes: params.num_classes,
            channels: params.channels,
            height: params.height,
            width: params.width,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total training samples across clients (the FedAvg normaliser `N`).
    pub fn total_train_samples(&self) -> usize {
        self.clients.iter().map(|c| c.train_samples()).sum()
    }

    /// Each client's label set (sorted, deduplicated) — the ground truth
    /// that weight-driven clustering should recover under label skew.
    pub fn client_label_sets(&self) -> Vec<Vec<usize>> {
        self.clients
            .iter()
            .map(|c| {
                let mut l = c.train.label_set();
                l.extend(c.test.label_set());
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect()
    }

    /// Group clients by identical label sets; returns a cluster id per
    /// client. Used as ground truth for ARI/NMI cluster quality metrics.
    pub fn ground_truth_groups(&self) -> Vec<usize> {
        let sets = self.client_label_sets();
        let mut seen: Vec<&Vec<usize>> = Vec::new();
        sets.iter()
            .map(|s| {
                if let Some(pos) = seen.iter().position(|t| *t == s) {
                    pos
                } else {
                    seen.push(s);
                    seen.len() - 1
                }
            })
            .collect()
    }

    /// Split off the last `n` clients as "newcomers" (Table 6's setup):
    /// returns `(federation of the rest, newcomers)`.
    pub fn split_newcomers(mut self, n: usize) -> (FederatedDataset, Vec<ClientData>) {
        assert!(n < self.clients.len(), "cannot split off every client");
        let newcomers = self.clients.split_off(self.clients.len() - n);
        (self, newcomers)
    }
}

/// Split one client's sample indices into train/test datasets,
/// stratified per class so the local test set mirrors the local
/// distribution.
fn split_client(
    pool: &Dataset,
    indices: &[usize],
    train_fraction: f32,
    rng: &mut impl Rng,
) -> ClientData {
    // Group by label for a stratified split.
    let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for &i in indices {
        by_label.entry(pool.labels[i]).or_default().push(i);
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for (_, mut group) in by_label {
        group.shuffle(rng);
        let n_train = ((group.len() as f32) * train_fraction).round() as usize;
        // Keep at least one sample in each split when possible.
        let n_train = n_train.clamp(
            if group.len() > 1 { 1 } else { 0 },
            group.len().saturating_sub(usize::from(group.len() > 1)),
        );
        train_idx.extend_from_slice(&group[..n_train]);
        test_idx.extend_from_slice(&group[n_train..]);
    }
    if test_idx.is_empty() && train_idx.len() > 1 {
        if let Some(moved) = train_idx.pop() {
            test_idx.push(moved);
        }
    }
    ClientData {
        train: pool.subset(&train_idx),
        test: pool.subset(&test_idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FederatedConfig {
        FederatedConfig {
            num_clients: 10,
            samples_per_class: 50,
            train_fraction: 0.8,
            seed: 1,
        }
    }

    #[test]
    fn build_label_skew_dataset() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &small_cfg(),
        );
        assert_eq!(fd.num_clients(), 10);
        for c in &fd.clients {
            assert!(!c.train.is_empty(), "client has empty train set");
            assert!(!c.test.is_empty(), "client has empty test set");
        }
        // All 500 samples distributed.
        let total: usize = fd.clients.iter().map(|c| c.total_samples()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn label_sets_are_limited_under_skew() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &small_cfg(),
        );
        for s in fd.client_label_sets() {
            assert!(s.len() <= 3, "label set too large: {:?}", s);
        }
    }

    #[test]
    fn ground_truth_groups_are_consistent() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.5 },
            &small_cfg(),
        );
        let groups = fd.ground_truth_groups();
        let sets = fd.client_label_sets();
        assert_eq!(groups.len(), 10);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(groups[i] == groups[j], sets[i] == sets[j]);
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let a = FederatedDataset::build(
            DatasetProfile::Cifar10Like,
            Partition::Dirichlet { alpha: 0.1 },
            &small_cfg(),
        );
        let b = FederatedDataset::build(
            DatasetProfile::Cifar10Like,
            Partition::Dirichlet { alpha: 0.1 },
            &small_cfg(),
        );
        assert_eq!(a.clients[3].train.labels, b.clients[3].train.labels);
        assert_eq!(
            a.clients[3].train.images.data(),
            b.clients[3].train.images.data()
        );
    }

    #[test]
    fn newcomer_split() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &small_cfg(),
        );
        let (rest, newcomers) = fd.split_newcomers(2);
        assert_eq!(rest.num_clients(), 8);
        assert_eq!(newcomers.len(), 2);
    }

    #[test]
    fn train_test_split_is_stratified() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.3 },
            &FederatedConfig {
                num_clients: 5,
                samples_per_class: 100,
                train_fraction: 0.8,
                seed: 3,
            },
        );
        for c in &fd.clients {
            // Every trained label should also appear in the local test set
            // (sample counts per client per class are large enough here).
            let train_set = c.train.label_set();
            let test_set = c.test.label_set();
            assert_eq!(train_set, test_set);
        }
    }
}
