//! Non-IID partitioners: how a pooled dataset is split across clients.
//!
//! Implements the three heterogeneity settings of the paper's evaluation
//! (following Li et al., "Federated learning on non-IID data silos"):
//!
//! * **IID** — every client draws uniformly from all classes,
//! * **label-skew (δ%)** — each client holds ⌈δ·L⌉ of the L labels; the
//!   samples of each label are split evenly among its owners,
//! * **Dirichlet (α)** — per class, client shares are drawn from
//!   `Dir(α)`; small α concentrates each class on few clients.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Uniform IID split.
    Iid,
    /// Non-IID label skew: each client owns `fraction` of all labels.
    LabelSkew {
        /// Fraction of the label space each client holds (e.g. 0.2).
        fraction: f32,
    },
    /// Non-IID Dirichlet label skew with concentration `alpha`.
    Dirichlet {
        /// Dirichlet concentration (e.g. 0.1). Smaller = more skewed.
        alpha: f32,
    },
}

impl Partition {
    /// Short tag used in experiment output.
    pub fn tag(&self) -> String {
        match self {
            Partition::Iid => "iid".to_string(),
            Partition::LabelSkew { fraction } => {
                format!("skew{}", (fraction * 100.0).round() as u32)
            }
            Partition::Dirichlet { alpha } => format!("dir{}", alpha),
        }
    }

    /// Assign pooled sample indices to `num_clients` clients.
    ///
    /// `labels` is the pooled label vector; `num_classes` the class count.
    /// Returns one index list per client. Every client is guaranteed at
    /// least one sample (skewed draws are repaired by stealing from the
    /// richest client).
    pub fn assign(
        &self,
        labels: &[usize],
        num_classes: usize,
        num_clients: usize,
        rng: &mut impl Rng,
    ) -> Vec<Vec<usize>> {
        assert!(num_clients > 0, "need at least one client");
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
        for (i, &l) in labels.iter().enumerate() {
            assert!(l < num_classes, "label {} out of range", l);
            by_class[l].push(i);
        }
        let mut assignment = match self {
            Partition::Iid => iid(labels.len(), num_clients, rng),
            Partition::LabelSkew { fraction } => label_skew(&by_class, *fraction, num_clients, rng),
            Partition::Dirichlet { alpha } => dirichlet(&by_class, *alpha, num_clients, rng),
        };
        repair_empty_clients(&mut assignment, rng);
        assignment
    }
}

fn iid(n: usize, num_clients: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut out = vec![Vec::new(); num_clients];
    for (i, sample) in idx.into_iter().enumerate() {
        out[i % num_clients].push(sample);
    }
    out
}

/// The paper's label-skew scheme: assign each client ⌈δ·L⌉ random labels
/// (ensuring every label has at least one owner), then split each label's
/// samples evenly among its owners.
fn label_skew(
    by_class: &[Vec<usize>],
    fraction: f32,
    num_clients: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let num_classes = by_class.len();
    let labels_per_client = ((fraction * num_classes as f32).ceil() as usize).clamp(1, num_classes);

    // Each client picks its label set.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); num_classes]; // label -> clients
    let mut client_labels: Vec<Vec<usize>> = Vec::with_capacity(num_clients);
    let mut all_labels: Vec<usize> = (0..num_classes).collect();
    for c in 0..num_clients {
        all_labels.shuffle(rng);
        let chosen: Vec<usize> = all_labels[..labels_per_client].to_vec();
        for &l in &chosen {
            owners[l].push(c);
        }
        client_labels.push(chosen);
    }
    // Ensure every label has an owner: give orphan labels to random clients
    // (replacing one of their labels' share is unnecessary; they just gain
    // an extra label, which matches the reference implementation's repair).
    for (l, own) in owners.iter_mut().enumerate() {
        if own.is_empty() {
            let c = rng.gen_range(0..num_clients);
            own.push(c);
            client_labels[c].push(l);
        }
    }

    // Split each label's samples evenly among its owners.
    let mut out = vec![Vec::new(); num_clients];
    for (l, samples) in by_class.iter().enumerate() {
        let own = &owners[l];
        if own.is_empty() || samples.is_empty() {
            continue;
        }
        let mut shuffled = samples.clone();
        shuffled.shuffle(rng);
        for (i, &s) in shuffled.iter().enumerate() {
            out[own[i % own.len()]].push(s);
        }
    }
    out
}

/// Dirichlet label skew: per class, draw client shares from `Dir(alpha)`.
fn dirichlet(
    by_class: &[Vec<usize>],
    alpha: f32,
    num_clients: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(alpha > 0.0, "Dirichlet alpha must be positive");
    let mut out = vec![Vec::new(); num_clients];
    for samples in by_class {
        if samples.is_empty() {
            continue;
        }
        let props = dirichlet_sample(alpha, num_clients, rng);
        // Convert proportions to cumulative cut points over the shuffled
        // class samples.
        let mut shuffled = samples.clone();
        shuffled.shuffle(rng);
        let n = shuffled.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (c, &p) in props.iter().enumerate() {
            acc += p as f64;
            let end = if c + 1 == num_clients {
                n
            } else {
                ((acc * n as f64).round() as usize).min(n)
            };
            out[c].extend_from_slice(&shuffled[start..end]);
            start = end;
        }
    }
    out
}

/// Draw one sample from a symmetric Dirichlet(alpha) over `k` categories,
/// via normalised Gamma(alpha, 1) draws.
pub fn dirichlet_sample(alpha: f32, k: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut g: Vec<f64> = (0..k).map(|_| gamma_sample(alpha as f64, rng)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        // All draws underflowed (possible for tiny alpha): dump everything
        // on one random category, the limiting behaviour of Dir(α→0).
        let mut out = vec![0.0f32; k];
        out[rng.gen_range(0..k)] = 1.0;
        return out;
    }
    for v in &mut g {
        *v /= sum;
    }
    g.into_iter().map(|v| v as f32).collect()
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler; the `shape < 1` case uses the
/// standard boosting identity `Gamma(a) = Gamma(a+1) · U^(1/a)`.
fn gamma_sample(shape: f64, rng: &mut impl Rng) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(1e-300);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // One standard normal via Box–Muller.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(1e-300);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Give every empty client one sample stolen from the richest client.
fn repair_empty_clients(assignment: &mut [Vec<usize>], _rng: &mut impl Rng) {
    loop {
        let Some(empty) = assignment.iter().position(|a| a.is_empty()) else {
            return;
        };
        let Some(richest) = assignment
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.len())
            .map(|(i, _)| i)
        else {
            return; // no clients at all (degenerate input)
        };
        if assignment[richest].len() <= 1 {
            return; // nothing to steal; give up (degenerate input)
        }
        let Some(sample) = assignment[richest].pop() else {
            return;
        };
        assignment[empty].push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    /// 10 classes × 100 samples, class-major labels.
    fn labels() -> Vec<usize> {
        (0..10).flat_map(|c| std::iter::repeat_n(c, 100)).collect()
    }

    fn assert_is_partition(assignment: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = assignment.concat();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n).collect();
        assert_eq!(all, expect, "assignment must be a partition of 0..n");
    }

    #[test]
    fn iid_balances_counts() {
        let l = labels();
        let a = Partition::Iid.assign(&l, 10, 20, &mut rng(0));
        assert_is_partition(&a, 1000);
        for c in &a {
            assert_eq!(c.len(), 50);
        }
    }

    #[test]
    fn label_skew_limits_labels_per_client() {
        let l = labels();
        let a = Partition::LabelSkew { fraction: 0.2 }.assign(&l, 10, 20, &mut rng(1));
        assert_is_partition(&a, 1000);
        for client in &a {
            let mut ls: Vec<usize> = client.iter().map(|&i| l[i]).collect();
            ls.sort_unstable();
            ls.dedup();
            // ⌈0.2·10⌉ = 2 labels, +possible orphan repair.
            assert!(ls.len() <= 3, "client has {} labels", ls.len());
            assert!(!ls.is_empty());
        }
    }

    #[test]
    fn label_skew_30pct_gives_three_labels() {
        let l = labels();
        let a = Partition::LabelSkew { fraction: 0.3 }.assign(&l, 10, 10, &mut rng(2));
        assert_is_partition(&a, 1000);
        let with_three = a
            .iter()
            .filter(|client| {
                let mut ls: Vec<usize> = client.iter().map(|&i| l[i]).collect();
                ls.sort_unstable();
                ls.dedup();
                ls.len() >= 3
            })
            .count();
        assert!(with_three >= 8, "most clients should hold 3 labels");
    }

    #[test]
    fn dirichlet_small_alpha_is_skewed() {
        let l = labels();
        let a = Partition::Dirichlet { alpha: 0.1 }.assign(&l, 10, 10, &mut rng(3));
        assert_is_partition(&a, 1000);
        // With α=0.1 most clients should be dominated by few classes: the
        // max class share per client should typically be large.
        let mut dominated = 0;
        for client in &a {
            let mut counts = [0usize; 10];
            for &i in client {
                counts[l[i]] += 1;
            }
            let max = *counts.iter().max().unwrap();
            if (max as f32) / (client.len() as f32) > 0.5 {
                dominated += 1;
            }
        }
        assert!(dominated >= 5, "only {} clients dominated", dominated);
    }

    #[test]
    fn dirichlet_large_alpha_is_balanced() {
        let l = labels();
        let a = Partition::Dirichlet { alpha: 100.0 }.assign(&l, 10, 10, &mut rng(4));
        assert_is_partition(&a, 1000);
        for client in &a {
            // Should be roughly 100 samples each.
            assert!(client.len() > 50 && client.len() < 150, "{}", client.len());
        }
    }

    #[test]
    fn dirichlet_sample_sums_to_one() {
        let mut r = rng(5);
        for alpha in [0.05f32, 0.5, 5.0] {
            let p = dirichlet_sample(alpha, 8, &mut r);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "alpha {}: sum {}", alpha, sum);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_sampler_has_correct_mean() {
        let mut r = rng(6);
        for shape in [0.5f64, 1.0, 3.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(shape, &mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {}: mean {}",
                shape,
                mean
            );
        }
    }

    #[test]
    fn no_client_left_empty() {
        let l = labels();
        for seed in 0..5 {
            let a = Partition::Dirichlet { alpha: 0.05 }.assign(&l, 10, 50, &mut rng(seed));
            assert!(a.iter().all(|c| !c.is_empty()), "seed {}", seed);
        }
    }

    #[test]
    fn partition_tags() {
        assert_eq!(Partition::Iid.tag(), "iid");
        assert_eq!(Partition::LabelSkew { fraction: 0.2 }.tag(), "skew20");
        assert_eq!(Partition::Dirichlet { alpha: 0.1 }.tag(), "dir0.1");
    }
}
