//! Property-based tests of dataset synthesis and partitioning.

use fedclust_data::federated::FederatedConfig;
use fedclust_data::synth::generate_pool;
use fedclust_data::{DatasetProfile, FederatedDataset, Partition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pool generation yields finite data with exact per-class counts for
    /// every profile, sample count, and seed.
    #[test]
    fn pools_are_well_formed(
        profile_idx in 0usize..4,
        spc in 1usize..8,
        seed in 0u64..100,
    ) {
        let profile = DatasetProfile::ALL[profile_idx];
        let p = profile.params();
        let d = generate_pool(profile, spc, seed);
        prop_assert_eq!(d.len(), p.num_classes * spc);
        prop_assert!(!d.images.has_non_finite());
        prop_assert_eq!(d.class_counts(p.num_classes), vec![spc; p.num_classes]);
    }

    /// Federated builds conserve samples: every pooled sample lands in
    /// exactly one client's train or test split, and no split is empty.
    #[test]
    fn federated_builds_conserve_samples(
        seed in 0u64..50,
        num_clients in 2usize..8,
        strategy in 0usize..3,
    ) {
        let partition = match strategy {
            0 => Partition::Iid,
            1 => Partition::LabelSkew { fraction: 0.3 },
            _ => Partition::Dirichlet { alpha: 0.2 },
        };
        let spc = 30;
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            partition,
            &FederatedConfig { num_clients, samples_per_class: spc, train_fraction: 0.8, seed },
        );
        let total: usize = fd.clients.iter().map(|c| c.total_samples()).sum();
        prop_assert_eq!(total, 10 * spc);
        for c in &fd.clients {
            prop_assert!(!c.train.is_empty());
            prop_assert!(!c.test.is_empty());
        }
        prop_assert_eq!(fd.ground_truth_groups().len(), num_clients);
    }

    /// Builds are deterministic in the seed.
    #[test]
    fn federated_builds_are_deterministic(seed in 0u64..50) {
        let cfg = FederatedConfig {
            num_clients: 4,
            samples_per_class: 10,
            train_fraction: 0.8,
            seed,
        };
        let a = FederatedDataset::build(DatasetProfile::SvhnLike, Partition::Dirichlet { alpha: 0.5 }, &cfg);
        let b = FederatedDataset::build(DatasetProfile::SvhnLike, Partition::Dirichlet { alpha: 0.5 }, &cfg);
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            prop_assert_eq!(&ca.train.labels, &cb.train.labels);
            prop_assert_eq!(ca.train.images.data(), cb.train.images.data());
        }
    }

    /// Label-skew bounds: clients hold ⌈fraction·L⌉ chosen labels each
    /// (orphan repair may add more to *some* clients, but the total number
    /// of extra labels across all clients is at most L), and every label
    /// ends up owned by at least one client.
    #[test]
    fn label_skew_label_budget(seed in 0u64..50, frac_pct in 1u32..6) {
        let fraction = frac_pct as f32 / 10.0;
        let num_clients = 6usize;
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction },
            &FederatedConfig { num_clients, samples_per_class: 40, train_fraction: 0.8, seed },
        );
        let per_client = (fraction * 10.0).ceil() as usize;
        let sets = fd.client_label_sets();
        let total: usize = sets.iter().map(|s| s.len()).sum();
        prop_assert!(
            total <= num_clients * per_client + 10,
            "total labels {} exceeds budget", total
        );
        // Coverage: every class appears at some client.
        let mut covered = vec![false; 10];
        for s in &sets {
            for &l in s {
                covered[l] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "not all labels owned: {:?}", covered);
    }
}
