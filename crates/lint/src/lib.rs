//! `fedlint` — the workspace invariant checker.
//!
//! PR 2 made bit-identical replay under fault injection a load-bearing
//! guarantee; the invariants behind it (deterministic iteration order,
//! disciplined RNG stream construction, panic-free library code, justified
//! `unsafe`) previously lived only in review culture. This crate enforces
//! them mechanically: a from-scratch, comment/string/char-literal-aware
//! lexer ([`lexer`]) feeds a set of named rules ([`rules`]) over every
//! `crates/*/src` and `vendor/*/src` file, and the driver here renders
//! deterministic, sorted human and JSON reports. `fedlint --deny` is a CI
//! gate (`scripts/ci.sh`).
//!
//! Output determinism is part of the contract: files are walked in sorted
//! order, findings are sorted by `(file, line, rule, message)`, and the JSON
//! emitter is hand-rolled with sorted keys — repeated runs are byte-identical.
//!
//! Scanning is two-pass. Pass one runs the line/token-local rules per file
//! and records each file's structure ([`rules::FileAnalysis`]: items from
//! [`items`], tokens, pragmas). Pass two feeds every analysis to
//! [`callgraph`], which builds the approximate intra-workspace call graph
//! and runs the cross-file rules (`panic-reachability`,
//! `rng-stream-collision`, plus the [`dataflow`]-driven taint rules
//! `untrusted-input-taint` and `determinism-taint`). The [`baseline`]
//! module implements the CI ratchet: baselined findings warn, new findings
//! fail `--deny`.

pub mod baseline;
pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod items;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Per-rule and per-stage wall-time accounting (schema 4's `timings_ms`).
/// Keys are rule names plus `infra:*` stages (parse, callgraph, lock-set
/// engine); durations accumulate across files. Timing is opt-in
/// (`Option<&mut Timings>` throughout) so the default paths stay
/// byte-identical and the unit tests stay timing-free.
#[derive(Debug, Default)]
pub struct Timings {
    /// Accumulated wall time per key, sorted by key.
    pub entries: BTreeMap<String, Duration>,
}

impl Timings {
    /// Add `d` to `key`'s accumulated time.
    pub fn record(&mut self, key: &str, d: Duration) {
        *self.entries.entry(key.to_string()).or_default() += d;
    }

    /// Sum of every recorded segment (the report's `total`).
    pub fn total(&self) -> Duration {
        self.entries.values().sum()
    }
}

/// Record `start.elapsed()` under `key` when timing is on. Shared helper
/// for the optional-timings plumbing in [`rules`] and [`callgraph`].
pub(crate) fn record_elapsed(timings: &mut Option<&mut Timings>, key: &str, start: Instant) {
    if let Some(t) = timings.as_deref_mut() {
        t.record(key, start.elapsed());
    }
}

/// One rule violation, anchored to `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (see [`rules::RULE_NAMES`], plus `pragma-syntax`).
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

/// The result of scanning a workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Sorted findings.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings per rule, sorted by rule name.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }
}

/// Scan every `crates/*/src/**/*.rs` — plus `vendor/*/src/**/*.rs` when a
/// `vendor/` directory exists (the thread pool's concurrency protocol is
/// linted too) — under `root` and return the sorted report. `root` is the
/// workspace root (the directory containing `crates/`).
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    scan_workspace_timed(root, None)
}

/// [`scan_workspace`] with optional per-rule/per-stage wall-time
/// accounting accumulated into `timings`.
pub fn scan_workspace_timed(
    root: &Path,
    mut timings: Option<&mut Timings>,
) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    let vendor_dir = root.join("vendor");
    if vendor_dir.is_dir() {
        let mut vendor_dirs: Vec<PathBuf> = std::fs::read_dir(&vendor_dir)
            .map_err(|e| format!("cannot read {}: {e}", vendor_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("src").is_dir())
            .collect();
        vendor_dirs.sort();
        crate_dirs.extend(vendor_dirs);
    }

    // Pass one: per-file token/line rules plus structure recovery.
    let mut analyses = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src_dir = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in &files {
            let rel = rel_path(root, file);
            let is_bin = rel.ends_with("/main.rs") || rel.contains("/src/bin/");
            let bytes = std::fs::read(file).map_err(|e| format!("read {rel}: {e}"))?;
            let src = String::from_utf8_lossy(&bytes);
            let ctx = rules::FileContext {
                crate_name: &crate_name,
                rel_path: &rel,
                is_bin,
            };
            analyses.push(rules::analyze_source_timed(
                &ctx,
                &src,
                timings.as_deref_mut(),
            ));
        }
    }
    let files_scanned = analyses.len();

    // Pass two: the cross-file rules over the whole workspace's structure.
    let mut findings: Vec<Finding> = analyses
        .iter_mut()
        .flat_map(|fa| std::mem::take(&mut fa.findings))
        .collect();
    findings.extend(callgraph::global_findings_timed(&analyses, timings));
    findings.sort();
    findings.dedup();
    Ok(Report {
        findings,
        files_scanned,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Locate the workspace root by walking up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render the human-readable report (trailing newline included).
pub fn render_human(report: &Report) -> String {
    render_human_with(report, None)
}

/// Human report with optional baseline classification: baselined findings
/// are annotated, and the summary splits baselined from new counts.
pub fn render_human_with(report: &Report, ratchet: Option<&baseline::Classified>) -> String {
    let mut out = String::new();
    let baselined_flags: Option<Vec<bool>> =
        ratchet.map(|c| c.entries.iter().map(|(_, b)| *b).collect());
    for (i, f) in report.findings.iter().enumerate() {
        let mark = match &baselined_flags {
            Some(flags) if flags.get(i).copied().unwrap_or(false) => " (baselined)",
            _ => "",
        };
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}{}",
            f.file, f.line, f.rule, f.message, mark
        );
    }
    if report.findings.is_empty() {
        let _ = writeln!(
            out,
            "fedlint: clean ({} files scanned)",
            report.files_scanned
        );
    } else {
        let per_rule: Vec<String> = report
            .counts()
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        let split = match ratchet {
            Some(c) => format!(" [{} baselined, {} new]", c.baselined(), c.fresh()),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "fedlint: {} finding(s){} in {} files scanned ({})",
            report.findings.len(),
            split,
            report.files_scanned,
            per_rule.join(", ")
        );
    }
    out
}

/// Render the JSON report. Hand-rolled (no serde dependency) with sorted
/// keys and sorted findings so output is byte-identical across runs.
pub fn render_json(report: &Report) -> String {
    render_json_with(report, None)
}

/// JSON report (schema 4) with optional baseline classification. Without a
/// baseline every finding counts as new. `counts` carries every known rule
/// (zero-filled), so per-rule trends diff cleanly across commits.
pub fn render_json_with(report: &Report, ratchet: Option<&baseline::Classified>) -> String {
    render_json_timed(report, ratchet, None)
}

/// [`render_json_with`] plus the optional schema-4 `timings_ms` block:
/// per-rule/per-stage wall time in whole milliseconds, with a derived
/// `total`. Omitted entirely when `timings` is `None`, keeping the
/// timing-free output stable for byte-identity tests.
pub fn render_json_timed(
    report: &Report,
    ratchet: Option<&baseline::Classified>,
    timings: Option<&Timings>,
) -> String {
    let (baselined, fresh) = match ratchet {
        Some(c) => (c.baselined(), c.fresh()),
        None => (0, report.findings.len()),
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 4,");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"total_findings\": {},", report.findings.len());
    let _ = writeln!(out, "  \"baselined_findings\": {baselined},");
    let _ = writeln!(out, "  \"new_findings\": {fresh},");
    out.push_str("  \"counts\": {");
    let mut counts: BTreeMap<&str, usize> = rules::RULE_NAMES.iter().map(|r| (*r, 0)).collect();
    counts.insert("pragma-syntax", 0);
    for f in &report.findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    for (i, (rule, n)) in counts.iter().enumerate() {
        let sep = if i + 1 < counts.len() { "," } else { "" };
        let _ = write!(out, "\n    \"{rule}\": {n}{sep}");
    }
    out.push_str(if counts.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    if let Some(t) = timings {
        out.push_str("  \"timings_ms\": {");
        let mut rows: Vec<(String, u128)> = t
            .entries
            .iter()
            .map(|(k, d)| (k.clone(), d.as_millis()))
            .collect();
        rows.push(("total".to_string(), t.total().as_millis()));
        rows.sort();
        for (i, (key, ms)) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            let _ = write!(out, "\n    {}: {ms}{sep}", json_str(key));
        }
        out.push_str("\n  },\n");
    }
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            sep
        );
    }
    out.push_str(if report.findings.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

/// Escape a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders() {
        let r = Report {
            findings: Vec::new(),
            files_scanned: 3,
        };
        assert!(render_human(&r).contains("clean"));
        let j = render_json(&r);
        assert!(j.contains("\"total_findings\": 0"));
        assert!(j.contains("\"findings\": []"));
    }
}
