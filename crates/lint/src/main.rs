//! `fedlint` CLI: scan the workspace, print a deterministic report, gate CI.
//!
//! ```text
//! fedlint [--deny] [--json] [--root <dir>] [--baseline <file>] [--update-baseline]
//!         [--rules <comma-list>] [--explain <rule>]
//! ```
//!
//! * `--deny` — exit nonzero if any *new* finding (or malformed pragma)
//!   remains; with `--baseline`, baselined findings only warn.
//! * `--json` — print the JSON report (schema 4, including per-rule
//!   `timings_ms`) to stdout and also write it to
//!   `<root>/results/lint_report.json` for trend tracking.
//! * `--baseline <file>` — ratchet file, resolved relative to the workspace
//!   root; findings whose `(file, rule, message)` appear in it are
//!   *baselined* (warn), everything else is *new* (fails `--deny`). A
//!   missing baseline file is treated as empty: every finding is new.
//! * `--update-baseline` — rewrite the baseline from the current scan,
//!   sorted and byte-deterministic, then exit successfully.
//! * `--rules <comma-list>` — keep only findings of the listed rules, for
//!   fast focused runs; every name must be a known rule.
//! * `--explain <rule>` — print the rule's documentation
//!   ([`lint::rules::RULE_DOCS`], the same table behind the README rule
//!   list) and exit.
//! * `--root` — workspace root; defaults to walking up from the current
//!   directory until `Cargo.toml` + `crates/` are found.

use lint::baseline::Baseline;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Write a persisted artifact atomically: tmp sibling → write → fsync →
/// rename. A crash mid-write can never leave a torn report or baseline.
fn write_atomic(target: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = target.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, target)
}

/// The `--explain` text for `rule`, or `None` for an unknown rule. Split
/// from `main` so the unit tests cover it directly.
fn explain_rule(rule: &str) -> Option<String> {
    lint::rules::RULE_DOCS
        .iter()
        .find(|(name, _)| *name == rule)
        .map(|(name, doc)| format!("{name}\n\n{doc}\n"))
}

/// Parse and validate a `--rules` comma-list against the known rule names
/// (including `pragma-syntax`). Returns the selected names or the first
/// unknown one as the error.
fn parse_rules_filter(list: &str) -> Result<Vec<String>, String> {
    let mut rules = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if !lint::rules::RULE_NAMES.contains(&name) && name != "pragma-syntax" {
            return Err(name.to_string());
        }
        if !rules.iter().any(|r| r == name) {
            rules.push(name.to_string());
        }
    }
    Ok(rules)
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut rules_filter: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fedlint: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fedlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(rule) => match explain_rule(&rule) {
                    Some(text) => {
                        print!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "fedlint: unknown rule `{rule}`; known rules: {}, pragma-syntax",
                            lint::rules::RULE_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("fedlint: --explain needs a rule argument");
                    return ExitCode::from(2);
                }
            },
            "--rules" => match args.next() {
                Some(list) => match parse_rules_filter(&list) {
                    Ok(rules) if !rules.is_empty() => rules_filter = Some(rules),
                    Ok(_) => {
                        eprintln!("fedlint: --rules needs at least one rule name");
                        return ExitCode::from(2);
                    }
                    Err(unknown) => {
                        eprintln!(
                            "fedlint: unknown rule `{unknown}` in --rules; known rules: {}, \
                             pragma-syntax",
                            lint::rules::RULE_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("fedlint: --rules needs a comma-separated list argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: fedlint [--deny] [--json] [--root <dir>] [--baseline <file>] \
                     [--update-baseline] [--rules <comma-list>] [--explain <rule>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fedlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("fedlint: --update-baseline requires --baseline <file>");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fedlint: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    // Timings feed the schema-4 `timings_ms` block; only --json consumes
    // them, keeping the human/--deny output timing-free and byte-identical.
    let mut timings = lint::Timings::default();
    let report = match lint::scan_workspace_timed(&root, json.then_some(&mut timings)) {
        Ok(mut r) => {
            if let Some(rules) = &rules_filter {
                r.findings.retain(|f| rules.iter().any(|k| k == f.rule));
            }
            r
        }
        Err(e) => {
            eprintln!("fedlint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_file = baseline_path.map(|p| if p.is_absolute() { p } else { root.join(p) });

    if update_baseline {
        let target = baseline_file.unwrap_or_default();
        let rendered = Baseline::from_report(&report).render();
        if let Some(dir) = target.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fedlint: could not create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = write_atomic(&target, rendered.as_bytes()) {
            eprintln!("fedlint: could not write {}: {e}", target.display());
            return ExitCode::from(2);
        }
        println!(
            "fedlint: baseline updated with {} finding(s) -> {}",
            report.findings.len(),
            target.display()
        );
        return ExitCode::SUCCESS;
    }

    let classified = match &baseline_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b.classify(&report)),
                Err(e) => {
                    eprintln!("fedlint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!(
                    "fedlint: baseline {} not found; treating every finding as new \
                     (run --update-baseline to create it)",
                    path.display()
                );
                Some(Baseline::default().classify(&report))
            }
            Err(e) => {
                eprintln!("fedlint: could not read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    if json {
        let rendered = lint::render_json_timed(&report, classified.as_ref(), Some(&timings));
        print!("{rendered}");
        let results_dir = root.join("results");
        let target = results_dir.join("lint_report.json");
        if let Err(e) = std::fs::create_dir_all(&results_dir)
            .and_then(|()| write_atomic(&target, rendered.as_bytes()))
        {
            eprintln!("fedlint: could not write {}: {e}", target.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{}", lint::render_human_with(&report, classified.as_ref()));
    }

    let failing = match &classified {
        Some(c) => c.fresh(),
        None => report.findings.len(),
    };
    if deny && failing > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{explain_rule, parse_rules_filter};

    #[test]
    fn explain_knows_every_rule_and_rejects_unknown_ones() {
        for rule in lint::rules::RULE_NAMES {
            let text = explain_rule(rule).expect(rule);
            assert!(text.starts_with(rule), "{text}");
            assert!(text.len() > rule.len() + 40, "doc for {rule} too short");
        }
        assert!(explain_rule("pragma-syntax").is_some());
        assert!(explain_rule("no-such-rule").is_none());
    }

    #[test]
    fn rules_filter_parses_validates_and_dedups() {
        assert_eq!(
            parse_rules_filter("float-eq, lock-order-global ,float-eq").unwrap(),
            vec!["float-eq".to_string(), "lock-order-global".to_string()]
        );
        assert_eq!(parse_rules_filter("pragma-syntax").unwrap().len(), 1);
        assert_eq!(parse_rules_filter(",,").unwrap(), Vec::<String>::new());
        assert_eq!(
            parse_rules_filter("float-eq,bogus"),
            Err("bogus".to_string())
        );
    }
}
