//! `fedlint` CLI: scan the workspace, print a deterministic report, gate CI.
//!
//! ```text
//! fedlint [--deny] [--json] [--root <dir>]
//! ```
//!
//! * `--deny` — exit nonzero if any finding (or malformed pragma) remains.
//! * `--json` — print the JSON report to stdout and also write it to
//!   `<root>/results/lint_report.json` for trend tracking.
//! * `--root` — workspace root; defaults to walking up from the current
//!   directory until `Cargo.toml` + `crates/` are found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fedlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: fedlint [--deny] [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fedlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fedlint: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let rendered = lint::render_json(&report);
        print!("{rendered}");
        let results_dir = root.join("results");
        let target = results_dir.join("lint_report.json");
        if let Err(e) = std::fs::create_dir_all(&results_dir)
            .and_then(|()| std::fs::write(&target, rendered.as_bytes()))
        {
            eprintln!("fedlint: could not write {}: {e}", target.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{}", lint::render_human(&report));
    }

    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
