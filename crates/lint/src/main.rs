//! `fedlint` CLI: scan the workspace, print a deterministic report, gate CI.
//!
//! ```text
//! fedlint [--deny] [--json] [--root <dir>] [--baseline <file>] [--update-baseline]
//! ```
//!
//! * `--deny` — exit nonzero if any *new* finding (or malformed pragma)
//!   remains; with `--baseline`, baselined findings only warn.
//! * `--json` — print the JSON report (schema 3) to stdout and also write it
//!   to `<root>/results/lint_report.json` for trend tracking.
//! * `--baseline <file>` — ratchet file, resolved relative to the workspace
//!   root; findings whose `(file, rule, message)` appear in it are
//!   *baselined* (warn), everything else is *new* (fails `--deny`). A
//!   missing baseline file is treated as empty: every finding is new.
//! * `--update-baseline` — rewrite the baseline from the current scan,
//!   sorted and byte-deterministic, then exit successfully.
//! * `--root` — workspace root; defaults to walking up from the current
//!   directory until `Cargo.toml` + `crates/` are found.

use lint::baseline::Baseline;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Write a persisted artifact atomically: tmp sibling → write → fsync →
/// rename. A crash mid-write can never leave a torn report or baseline.
fn write_atomic(target: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = target.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, target)
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("fedlint: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fedlint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: fedlint [--deny] [--json] [--root <dir>] [--baseline <file>] \
                     [--update-baseline]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fedlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("fedlint: --update-baseline requires --baseline <file>");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("fedlint: could not locate a workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedlint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_file = baseline_path.map(|p| if p.is_absolute() { p } else { root.join(p) });

    if update_baseline {
        let target = baseline_file.unwrap_or_default();
        let rendered = Baseline::from_report(&report).render();
        if let Some(dir) = target.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fedlint: could not create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = write_atomic(&target, rendered.as_bytes()) {
            eprintln!("fedlint: could not write {}: {e}", target.display());
            return ExitCode::from(2);
        }
        println!(
            "fedlint: baseline updated with {} finding(s) -> {}",
            report.findings.len(),
            target.display()
        );
        return ExitCode::SUCCESS;
    }

    let classified = match &baseline_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b.classify(&report)),
                Err(e) => {
                    eprintln!("fedlint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!(
                    "fedlint: baseline {} not found; treating every finding as new \
                     (run --update-baseline to create it)",
                    path.display()
                );
                Some(Baseline::default().classify(&report))
            }
            Err(e) => {
                eprintln!("fedlint: could not read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    if json {
        let rendered = lint::render_json_with(&report, classified.as_ref());
        print!("{rendered}");
        let results_dir = root.join("results");
        let target = results_dir.join("lint_report.json");
        if let Err(e) = std::fs::create_dir_all(&results_dir)
            .and_then(|()| write_atomic(&target, rendered.as_bytes()))
        {
            eprintln!("fedlint: could not write {}: {e}", target.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{}", lint::render_human_with(&report, classified.as_ref()));
    }

    let failing = match &classified {
        Some(c) => c.fresh(),
        None => report.findings.len(),
    };
    if deny && failing > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
