//! The CI ratchet baseline: known findings warn, new findings fail.
//!
//! `fedlint --baseline results/lint_baseline.json` classifies every finding
//! as *baselined* (its `(file, rule, message)` key appears in the committed
//! baseline — line numbers are deliberately ignored so unrelated edits that
//! shift code do not invalidate the ratchet) or *new* (everything else).
//! Under `--deny`, only new findings fail the run, so stricter rules can
//! land before the whole workspace is burned down, and the baseline can
//! only shrink. `--update-baseline` rewrites the file from the current
//! scan, sorted and byte-deterministic: re-running it with no code change
//! is a no-op, which the self-check test pins.
//!
//! The baseline file is JSON with the same finding shape as the report.
//! Because this crate has no dependencies, parsing is a minimal hand-rolled
//! recursive-descent JSON reader — it accepts exactly the structure the
//! renderer writes (plus insignificant whitespace) and rejects everything
//! else with a positioned error.

use crate::{json_str, Finding, Report};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One baselined finding. `line` is informational only; matching ignores it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Line at the time the baseline was written.
    pub line: u32,
    /// Rule identifier.
    pub rule: String,
    /// Full diagnostic message.
    pub message: String,
}

/// A parsed (or freshly built) baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries sorted by `(file, line, rule, message)`.
    pub entries: Vec<BaselineEntry>,
}

/// Every report finding classified against a baseline, in report order.
pub struct Classified {
    /// `(finding, baselined)` pairs.
    pub entries: Vec<(Finding, bool)>,
}

impl Classified {
    /// Number of findings covered by the baseline.
    pub fn baselined(&self) -> usize {
        self.entries.iter().filter(|(_, b)| *b).count()
    }

    /// Number of findings NOT covered — these fail `--deny`.
    pub fn fresh(&self) -> usize {
        self.entries.len() - self.baselined()
    }
}

impl Baseline {
    /// Snapshot every finding of `report` as the new baseline.
    pub fn from_report(report: &Report) -> Self {
        let mut entries: Vec<BaselineEntry> = report
            .findings
            .iter()
            .map(|f| BaselineEntry {
                file: f.file.clone(),
                line: f.line,
                rule: f.rule.to_string(),
                message: f.message.clone(),
            })
            .collect();
        entries.sort();
        Baseline { entries }
    }

    /// Classify `report`'s findings. Matching is multiset-aware: a key that
    /// appears twice in the baseline covers at most two findings.
    pub fn classify(&self, report: &Report) -> Classified {
        let mut budget: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.file.as_str(), e.rule.as_str(), e.message.as_str()))
                .or_insert(0) += 1;
        }
        let entries = report
            .findings
            .iter()
            .map(|f| {
                let key = (f.file.as_str(), f.rule, f.message.as_str());
                let covered = match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                };
                (f.clone(), covered)
            })
            .collect();
        Classified { entries }
    }

    /// Render the baseline file (trailing newline included). Byte-identical
    /// for equal content: entries are sorted and keys are fixed-order.
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort();
        let mut out = String::from("{\n  \"schema\": 2,\n");
        out.push_str("  \"findings\": [");
        for (i, e) in entries.iter().enumerate() {
            let sep = if i + 1 < entries.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}",
                json_str(&e.file),
                e.line,
                json_str(&e.rule),
                json_str(&e.message),
                sep
            );
        }
        out.push_str(if entries.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Parse a baseline file.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = JsonParser {
            s: text.as_bytes(),
            pos: 0,
        }
        .parse_document()?;
        let Json::Obj(fields) = value else {
            return Err("baseline: top level must be an object".to_string());
        };
        let findings = fields
            .iter()
            .find(|(k, _)| k == "findings")
            .map(|(_, v)| v)
            .ok_or("baseline: missing \"findings\" array")?;
        let Json::Arr(items) = findings else {
            return Err("baseline: \"findings\" must be an array".to_string());
        };
        let mut entries = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Json::Obj(f) = item else {
                return Err(format!("baseline: findings[{i}] must be an object"));
            };
            let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let str_field = |key: &str| match get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("baseline: findings[{i}].{key} must be a string")),
            };
            let line = match get("line") {
                Some(Json::Num(n)) if *n >= 0 => *n as u32,
                _ => return Err(format!("baseline: findings[{i}].line must be a number")),
            };
            entries.push(BaselineEntry {
                file: str_field("file")?,
                line,
                rule: str_field("rule")?,
                message: str_field("message")?,
            });
        }
        entries.sort();
        Ok(Baseline { entries })
    }
}

/// Minimal JSON value tree — just enough for the baseline schema.
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(i64),
}

struct JsonParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> u8 {
        self.s.get(self.pos).copied().unwrap_or(0)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\r' | b'\n') {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.peek() == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "baseline: expected `{}` at byte {}",
                c as char, self.pos
            ))
        }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        let v = self.value(0)?;
        self.ws();
        if self.pos < self.s.len() {
            return Err(format!("baseline: trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 32 {
            return Err("baseline: nesting too deep".to_string());
        }
        self.ws();
        match self.peek() {
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.ws();
                    match self.peek() {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => {
                            return Err(format!(
                                "baseline: expected `,` or `}}` at byte {}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.peek() {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => {
                            return Err(format!(
                                "baseline: expected `,` or `]` at byte {}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b'-' | b'0'..=b'9' => {
                let start = self.pos;
                if self.peek() == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(self.s.get(start..self.pos).unwrap_or(&[]))
                    .map_err(|_| "baseline: bad number".to_string())?;
                text.parse::<i64>()
                    .map(Json::Num)
                    .map_err(|_| format!("baseline: bad number at byte {start}"))
            }
            _ => Err(format!(
                "baseline: unexpected byte {} at {}",
                self.peek(),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != b'"' {
            return Err(format!("baseline: expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("baseline: unterminated string".to_string()),
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "baseline: truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "baseline: bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "baseline: bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("baseline: unknown escape `\\{}`", other as char))
                        }
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (the input came from a String).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.s.len() && (self.s[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(
                        self.s.get(start..self.pos).unwrap_or(&[]),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: msg.to_string(),
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let r = report(vec![
            finding(
                "a.rs",
                3,
                "no-panic-paths",
                "msg with \"quotes\" and \\slashes\\",
            ),
            finding("b.rs", 7, "float-eq", "tab\there"),
        ]);
        let b = Baseline::from_report(&r);
        let rendered = b.render();
        let parsed = Baseline::parse(&rendered).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.render(),
            rendered,
            "render → parse → render must be identity"
        );
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        let rendered = b.render();
        let parsed = Baseline::parse(&rendered).expect("parses");
        assert_eq!(parsed.render(), rendered);
        assert!(rendered.contains("\"findings\": []"));
    }

    #[test]
    fn classification_is_line_insensitive_and_multiset_aware() {
        let baseline = Baseline::from_report(&report(vec![
            finding("a.rs", 3, "no-panic-paths", "same"),
            finding("a.rs", 9, "no-panic-paths", "same"),
        ]));
        // Lines moved; one extra duplicate appeared; one brand-new finding.
        let now = report(vec![
            finding("a.rs", 5, "no-panic-paths", "same"),
            finding("a.rs", 11, "no-panic-paths", "same"),
            finding("a.rs", 20, "no-panic-paths", "same"),
            finding("c.rs", 1, "float-eq", "new"),
        ]);
        let c = baseline.classify(&now);
        assert_eq!(c.baselined(), 2);
        assert_eq!(c.fresh(), 2);
        let flags: Vec<bool> = c.entries.iter().map(|(_, b)| *b).collect();
        assert_eq!(flags, vec![true, true, false, false]);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            "",
            "[]",
            "{",
            "{\"findings\": 3}",
            "{\"findings\": [{\"file\": 1}]}",
            "{\"schema\": 2}",
            "{\"findings\": []} trailing",
        ] {
            assert!(Baseline::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
