//! A minimal, panic-free Rust lexer for `fedlint`.
//!
//! The container has no crates.io access, so `fedlint` cannot use `syn` or
//! `proc-macro2`; instead it ships this hand-rolled token scanner. It does
//! not parse Rust — it only needs to answer "which identifiers, operators,
//! and literals appear on which line, outside of strings and comments", which
//! is exactly what the rules in [`crate::rules`] consume. Consequently it
//! understands the full literal surface that could otherwise cause false
//! positives: line and (nested) block comments, cooked strings with escapes,
//! raw strings with arbitrary `#` fences, byte/C-string prefixes, char and
//! byte-char literals, lifetimes, raw identifiers, and numeric literals with
//! separators, exponents, and type suffixes.
//!
//! Robustness contract: `lex` never panics and never loops forever, for any
//! input whatsoever (pinned by a property test over arbitrary byte soup).
//! Every byte access is bounds-checked via [`Lexer::at`], and every loop
//! iteration advances the cursor.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f32`).
    Float,
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Operator / punctuation; multi-char operators like `==` are one token.
    Op,
    /// Line or block comment, delimiters included in `text`.
    Comment,
}

/// One lexed token. `line` is 1-based and refers to the token's first line
/// (comments and strings may span several).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Raw text (lossy UTF-8 for literals; exact for idents and operators).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

/// Lex `src` into a token stream. Never panics; invalid Rust degrades into
/// best-effort tokens rather than errors.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        s: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Multi-byte operators, longest first within each arm of the match below.
const OPS3: [&str; 3] = ["..=", "<<=", ">>="];
const OPS2: [&str; 20] = [
    "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    is_ident_start(c) || c.is_ascii_digit()
}

struct Lexer<'a> {
    s: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    /// Byte at `pos + off`, or 0 past the end (NUL never appears in source
    /// we care about, so it doubles as an EOF sentinel).
    fn at(&self, off: usize) -> u8 {
        self.s.get(self.pos + off).copied().unwrap_or(0)
    }

    /// Advance one byte, counting newlines.
    fn bump(&mut self) {
        if self.at(0) == b'\n' {
            self.line = self.line.saturating_add(1);
        }
        self.pos += 1;
    }

    /// Advance `n` bytes that are known to contain no newline.
    fn skip(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.s.len());
    }

    fn text_from(&self, start: usize) -> String {
        let bytes = self.s.get(start..self.pos).unwrap_or(&[]);
        String::from_utf8_lossy(bytes).into_owned()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = self.text_from(start);
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.s.len() {
            let c = self.at(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.at(1) == b'/' => self.line_comment(),
                b'/' if self.at(1) == b'*' => self.block_comment(),
                b'"' => self.cooked_string(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.s.len() && self.at(0) != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::Comment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.skip(2); // `/*`
        let mut depth = 1usize;
        while self.pos < self.s.len() && depth > 0 {
            if self.at(0) == b'/' && self.at(1) == b'*' {
                depth += 1;
                self.skip(2);
            } else if self.at(0) == b'*' && self.at(1) == b'/' {
                depth -= 1;
                self.skip(2);
            } else {
                self.bump();
            }
        }
        self.push(TokKind::Comment, start, line);
    }

    /// Cooked (escaped) string body, cursor on the opening `"`.
    fn cooked_string(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump(); // opening quote
        while self.pos < self.s.len() {
            match self.at(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.s.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// Raw string body. Cursor sits on the first `#` (or on `"` when
    /// `hashes == 0`); the `r`/`br`/`cr` prefix has already been consumed.
    fn raw_string(&mut self, start: usize, hashes: usize) {
        let line = self.line;
        self.skip(hashes);
        if self.at(0) == b'"' {
            self.bump();
        }
        while self.pos < self.s.len() {
            if self.at(0) == b'"' {
                let closed = (0..hashes).all(|k| self.at(1 + k) == b'#');
                if closed {
                    self.skip(1 + hashes);
                    self.push(TokKind::Str, start, line);
                    return;
                }
            }
            self.bump();
        }
        // Unterminated: emit what we have.
        self.push(TokKind::Str, start, line);
    }

    /// `'`: char literal, byte-char tail, or lifetime.
    fn quote(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1; // the quote
        let c = self.at(0);
        if c == b'\\' {
            // Escaped char literal: the byte after the backslash is payload
            // (it may itself be `'` or `\`, as in `'\''` and `'\\'`), then
            // consume to the closing quote on this line.
            self.pos += 1;
            if self.pos < self.s.len() && self.at(0) != b'\n' {
                self.pos += 1;
            }
            while self.pos < self.s.len() && self.at(0) != b'\'' && self.at(0) != b'\n' {
                self.pos += 1;
            }
            if self.at(0) == b'\'' {
                self.pos += 1;
            }
            self.push(TokKind::Char, start, line);
        } else if is_ident_start(c) {
            // `'a'` is a char, `'a` (no closing quote) is a lifetime.
            let mut n = 1;
            while is_ident_continue(self.at(n)) {
                n += 1;
            }
            if self.at(n) == b'\'' {
                self.skip(n + 1);
                self.push(TokKind::Char, start, line);
            } else {
                self.skip(n);
                self.push(TokKind::Lifetime, start, line);
            }
        } else if c != 0 && c != b'\n' {
            // Non-ident payload: `' '`, `'('`, or a multi-byte UTF-8 char.
            let mut n = 1;
            while n <= 4 && self.at(n) != b'\'' && self.at(n) != 0 && self.at(n) != b'\n' {
                n += 1;
            }
            if self.at(n) == b'\'' {
                self.skip(n + 1);
                self.push(TokKind::Char, start, line);
            } else {
                self.push(TokKind::Op, start, line);
            }
        } else {
            // Lone quote at EOF / EOL.
            self.push(TokKind::Op, start, line);
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        if self.at(0) == b'0' && matches!(self.at(1) | 0x20, b'x' | b'o' | b'b') {
            // Radix literal: digits and suffix lumped together, always Int.
            self.skip(2);
            while is_ident_continue(self.at(0)) {
                self.pos += 1;
            }
            self.push(TokKind::Int, start, line);
            return;
        }
        let digits = |lx: &mut Self| {
            while lx.at(0).is_ascii_digit() || lx.at(0) == b'_' {
                lx.pos += 1;
            }
        };
        digits(self);
        let mut float = false;
        if self.at(0) == b'.' && self.at(1).is_ascii_digit() {
            float = true;
            self.pos += 1;
            digits(self);
        } else if self.at(0) == b'.' && self.at(1) != b'.' && !is_ident_start(self.at(1)) {
            // Trailing-dot float `1.` — but not a range (`1..`) or a method
            // call on an integer (`1.max(2)`).
            float = true;
            self.pos += 1;
        }
        if (self.at(0) | 0x20) == b'e'
            && (self.at(1).is_ascii_digit()
                || (matches!(self.at(1), b'+' | b'-') && self.at(2).is_ascii_digit()))
        {
            float = true;
            self.pos += 1;
            if matches!(self.at(0), b'+' | b'-') {
                self.pos += 1;
            }
            digits(self);
        }
        if is_ident_start(self.at(0)) {
            // Type suffix; `f32`/`f64` force float.
            if self.at(0) == b'f' {
                float = true;
            }
            while is_ident_continue(self.at(0)) {
                self.pos += 1;
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, start, line);
    }

    fn ident_or_prefixed(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.s.len() && is_ident_continue(self.at(0)) {
            self.pos += 1;
        }
        let text = self.text_from(start);
        match text.as_str() {
            // Raw-string-capable prefixes.
            "r" | "br" | "cr" => {
                if self.at(0) == b'"' {
                    self.raw_string(start, 0);
                    return;
                }
                if self.at(0) == b'#' {
                    let mut n = 0;
                    while self.at(n) == b'#' {
                        n += 1;
                    }
                    if self.at(n) == b'"' {
                        self.raw_string(start, n);
                        return;
                    }
                    if text == "r" && is_ident_start(self.at(1)) {
                        // Raw identifier `r#foo`: emit the bare name.
                        self.pos += 1; // '#'
                        let id_start = self.pos;
                        while self.pos < self.s.len() && is_ident_continue(self.at(0)) {
                            self.pos += 1;
                        }
                        self.push(TokKind::Ident, id_start, line);
                        return;
                    }
                }
                self.out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            // Cooked byte / C strings and byte chars.
            "b" | "c" => {
                if self.at(0) == b'"' {
                    self.cooked_string();
                    return;
                }
                if text == "b" && self.at(0) == b'\'' {
                    self.quote();
                    return;
                }
                self.out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ => self.out.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            }),
        }
    }

    fn operator(&mut self) {
        let (start, line) = (self.pos, self.line);
        let rest = self.s.get(self.pos..).unwrap_or(&[]);
        for op in OPS3 {
            if rest.starts_with(op.as_bytes()) {
                self.skip(op.len());
                self.push(TokKind::Op, start, line);
                return;
            }
        }
        for op in OPS2 {
            if rest.starts_with(op.as_bytes()) {
                self.skip(op.len());
                self.push(TokKind::Op, start, line);
                return;
            }
        }
        self.bump();
        self.push(TokKind::Op, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_inside_strings_are_not_tokens() {
        let src = r#"let x = "unwrap() HashMap unsafe"; call(x);"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "call", "x"]);
    }

    #[test]
    fn raw_strings_hide_their_payload() {
        let src = "let s = r#\"panic! \"inner\" unwrap()\"#; s.len();";
        let ids = idents(src);
        assert!(
            !ids.iter().any(|i| i == "panic" || i == "unwrap"),
            "{ids:?}"
        );
        assert!(ids.iter().any(|i| i == "len"));
    }

    #[test]
    fn byte_and_c_strings_are_single_tokens() {
        for src in ["b\"unsafe\"", "c\"unsafe\"", "br#\"unsafe\"#"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].kind, TokKind::Str);
        }
    }

    #[test]
    fn comments_hide_idents_but_are_kept() {
        let src = "// unwrap() here\n/* HashMap\n nested /* unsafe */ done */\ncode();";
        let toks = lex(src);
        let ids: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["code"]);
        let comments = toks.iter().filter(|t| t.kind == TokKind::Comment).count();
        assert_eq!(comments, 2);
        // The block comment spans lines 2..=3, so `code` is on line 4.
        assert_eq!(toks.last().map(|t| t.line), Some(4));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("'a' 'static '\\n' b'x' ' ' '→'");
        let ks: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            ks,
            vec![
                TokKind::Char,
                TokKind::Lifetime,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char,
                TokKind::Char,
            ]
        );
    }

    #[test]
    fn char_literal_payload_is_not_an_ident() {
        // `'u'` must not leak a `u` identifier the rules could match.
        assert!(idents("let c = 'u';").iter().all(|i| i != "u"));
    }

    #[test]
    fn number_classification() {
        use TokKind::*;
        assert_eq!(kinds("1 1.0 1e5 1.5e-3 0xFF 0b1010 1_000 2f32 3usize"), {
            vec![Int, Float, Float, Float, Int, Int, Int, Float, Int]
        });
        // Ranges and method calls on ints keep the dot out of the number.
        assert_eq!(kinds("1..2"), vec![Int, Op, Int]);
        assert_eq!(kinds("1.max(2)")[0], Int);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let ops: Vec<String> = lex("a == b != c && d")
            .into_iter()
            .filter(|t| t.kind == TokKind::Op)
            .map(|t| t.text)
            .collect();
        assert_eq!(ops, vec!["==", "!=", "&&"]);
    }

    #[test]
    fn raw_identifier() {
        let ids = idents("let r#fn = 1;");
        assert_eq!(ids, vec!["let", "fn"]);
    }

    #[test]
    fn escaped_quote_and_backslash_char_literals() {
        // Regression: `'\''` used to terminate at the escaped quote and leak
        // a stray `'` token that could swallow the next real token.
        let toks = lex(r"let q = '\''; let b = '\\'; let n = '\n'; done();");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'", r"'\n'"]);
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["let", "q", "let", "b", "let", "n", "done"]);
    }

    #[test]
    fn deeply_nested_block_comments_count_lines() {
        let src = "/* 1 /* 2 /* 3 unwrap() */ 2 */ 1 */\ncode();";
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["code"]);
        assert_eq!(toks.last().map(|t| t.line), Some(2));
    }

    #[test]
    fn multi_hash_raw_strings_hide_inner_fences() {
        // `"#` inside an `r##"…"##` body must not close the string.
        let src = "let s = r##\"inner \"# fence panic! \"##; next();";
        let toks = lex(src);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["r##\"inner \"# fence panic! \"##"]);
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["let", "s", "next"]);
    }

    #[test]
    fn unterminated_everything_is_survivable() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#"] {
            let _ = lex(src); // must not panic or hang
        }
    }

    #[test]
    fn lexing_is_deterministic() {
        let src = "fn main() { let x = \"s\"; /* c */ x.unwrap(); }";
        assert_eq!(lex(src), lex(src));
    }
}
