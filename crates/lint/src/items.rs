//! A lightweight item parser on top of the lexer.
//!
//! `fedlint`'s structural rules (panic reachability, codec arithmetic
//! discipline, atomic-write discipline) need to know *which function* a
//! token belongs to, not just which line. This module recovers exactly that
//! much structure from the token stream: `fn` / `mod` / `impl` boundaries,
//! in-file module paths, the enclosing `impl` type of methods, `pub`-ness,
//! and `#[cfg(test)]` membership. It is not a Rust parser — generics,
//! expressions, and patterns are skipped with brace/paren matching — and it
//! shares the lexer's robustness contract: never panics, never loops
//! forever, degrades to a best-effort item list on invalid input (pinned by
//! property tests over byte soup).
//!
//! Body spans are expressed as indices into the *code* token slice (comments
//! filtered out) that was parsed: `body = Some((open, close))` brackets the
//! `{` and its matching `}`. Spans of distinct items never partially
//! overlap: they are either disjoint or strictly nested, which the
//! call-graph builder relies on to carve nested `fn` bodies out of their
//! parent's span.

use crate::lexer::{TokKind, Token};

/// What kind of item a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (`fn`), free or associated.
    Fn,
    /// An inline module (`mod name { … }`). Out-of-line `mod name;`
    /// declarations produce no item — the file walker sees the target file
    /// on its own.
    Mod,
    /// An `impl` block; `name` is the self type's final path segment.
    Impl,
}

/// One recovered item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Function name, module name, or impl self-type name.
    pub name: String,
    /// Names of the enclosing inline modules, outermost first.
    pub module: Vec<String>,
    /// For `Fn` items inside an `impl` block: the self type's name.
    pub impl_type: Option<String>,
    /// Carries a `pub` qualifier (any visibility flavour, including
    /// `pub(crate)`).
    pub is_pub: bool,
    /// Declared inside a `#[cfg(test)]` region or under `#[test]`.
    pub is_test: bool,
    /// 1-based line of the item's name (or of `impl`).
    pub decl_line: u32,
    /// Code-token indices of the body's `{` and matching `}`; `None` for
    /// bodyless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the body's closing `}` (or the declaration line).
    pub end_line: u32,
}

impl Item {
    /// Display name for diagnostics: `Type::method` or a bare `function`.
    pub fn display_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Parse the comment-free token stream of one file into an item list.
/// `in_test` is the per-line `#[cfg(test)]` table from the rules layer
/// (1-based line indices).
pub fn parse_items(code: &[Token], in_test: &[bool]) -> Vec<Item> {
    Parser {
        code,
        in_test,
        items: Vec::new(),
        stack: Vec::new(),
        mods: Vec::new(),
        impls: Vec::new(),
    }
    .run()
}

/// One entry per open `{`; `item` points into `Parser::items` when the brace
/// opened an item body rather than an expression/struct block.
struct Frame {
    item: Option<usize>,
}

struct Parser<'a> {
    code: &'a [Token],
    in_test: &'a [bool],
    items: Vec<Item>,
    stack: Vec<Frame>,
    mods: Vec<String>,
    impls: Vec<String>,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.code.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.code.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    fn line(&self, i: usize) -> u32 {
        self.code.get(i).map(|t| t.line).unwrap_or(0)
    }

    fn tested(&self, line: u32) -> bool {
        self.in_test.get(line as usize).copied().unwrap_or(false)
    }

    /// Skip an attribute; `i` sits on `#`, `i + 1` on `[`. Returns the index
    /// past the matching `]`.
    fn skip_attr(&self, i: usize) -> usize {
        let mut j = i + 2;
        let mut depth = 1usize;
        while j < self.code.len() && depth > 0 {
            match self.text(j) {
                "[" => depth += 1,
                "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
            j += 1;
        }
        j.max(i + 2)
    }

    /// Skip a parenthesized group; `i` sits on `(`. Returns the index past
    /// the matching `)`.
    fn skip_parens(&self, i: usize) -> usize {
        let mut j = i + 1;
        let mut depth = 1usize;
        while j < self.code.len() && depth > 0 {
            match self.text(j) {
                "(" => depth += 1,
                ")" => depth = depth.saturating_sub(1),
                _ => {}
            }
            j += 1;
        }
        j.max(i + 1)
    }

    fn open_item(&mut self, idx: usize) {
        self.stack.push(Frame { item: Some(idx) });
    }

    fn close_frame(&mut self, close_idx: usize, close_line: u32) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let Some(idx) = frame.item else {
            return;
        };
        let kind = self.items[idx].kind;
        if let Some(body) = self.items[idx].body.as_mut() {
            body.1 = close_idx;
        }
        self.items[idx].end_line = close_line;
        match kind {
            ItemKind::Mod => {
                self.mods.pop();
            }
            ItemKind::Impl => {
                self.impls.pop();
            }
            ItemKind::Fn => {}
        }
    }

    fn run(mut self) -> Vec<Item> {
        let mut i = 0usize;
        let mut pending_pub = false;
        while i < self.code.len() {
            let t = &self.code[i];
            let is_kw = t.kind == TokKind::Ident;
            match t.text.as_str() {
                "#" if self.text(i + 1) == "[" => {
                    i = self.skip_attr(i);
                }
                "pub" if is_kw => {
                    pending_pub = true;
                    i += 1;
                    if self.text(i) == "(" {
                        i = self.skip_parens(i);
                    }
                }
                "mod" if is_kw && self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    if self.text(i + 2) == "{" {
                        let decl_line = self.line(i + 1);
                        let idx = self.items.len();
                        self.items.push(Item {
                            kind: ItemKind::Mod,
                            name: name.clone(),
                            module: self.mods.clone(),
                            impl_type: None,
                            is_pub: pending_pub,
                            is_test: self.tested(decl_line),
                            decl_line,
                            body: Some((i + 2, i + 2)),
                            end_line: self.line(i + 2),
                        });
                        self.open_item(idx);
                        self.mods.push(name);
                        i += 3;
                    } else {
                        i += 2;
                    }
                    pending_pub = false;
                }
                "fn" if is_kw && self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    let decl_line = self.line(i + 1);
                    // Scan the header to the body `{` or a bodyless `;`,
                    // ignoring braces nested in parens (closure arguments).
                    let mut j = i + 2;
                    let mut paren = 0i64;
                    while j < self.code.len() {
                        match self.text(j) {
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "{" | ";" if paren <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let idx = self.items.len();
                    let mut item = Item {
                        kind: ItemKind::Fn,
                        name,
                        module: self.mods.clone(),
                        impl_type: self.impls.last().cloned(),
                        is_pub: pending_pub,
                        is_test: self.tested(decl_line),
                        decl_line,
                        body: None,
                        end_line: decl_line,
                    };
                    if j < self.code.len() && self.text(j) == "{" {
                        item.body = Some((j, j));
                        item.end_line = self.line(j);
                        self.items.push(item);
                        self.open_item(idx);
                    } else {
                        self.items.push(item);
                    }
                    i = (j + 1).max(i + 2);
                    pending_pub = false;
                }
                "impl" if is_kw => {
                    let decl_line = t.line;
                    let mut j = i + 1;
                    while j < self.code.len() && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if j < self.code.len() && self.text(j) == "{" {
                        let name = impl_self_type(&self.code[i + 1..j]);
                        let idx = self.items.len();
                        self.items.push(Item {
                            kind: ItemKind::Impl,
                            name: name.clone(),
                            module: self.mods.clone(),
                            impl_type: None,
                            is_pub: false,
                            is_test: self.tested(decl_line),
                            decl_line,
                            body: Some((j, j)),
                            end_line: self.line(j),
                        });
                        self.open_item(idx);
                        self.impls.push(name);
                    }
                    i = (j + 1).max(i + 1);
                    pending_pub = false;
                }
                "{" => {
                    self.stack.push(Frame { item: None });
                    i += 1;
                    pending_pub = false;
                }
                "}" => {
                    self.close_frame(i, t.line);
                    i += 1;
                    pending_pub = false;
                }
                ";" | "=" => {
                    pending_pub = false;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        // Unterminated bodies (invalid input): close everything at EOF so
        // spans still nest.
        let eof_idx = self.code.len().saturating_sub(1);
        let eof_line = self.line(eof_idx);
        while !self.stack.is_empty() {
            self.close_frame(eof_idx, eof_line);
        }
        self.items
    }
}

/// Extract the self type's final path segment from an `impl` header (the
/// tokens between `impl` and the body `{`). Handles generics, trait impls
/// (`impl Trait for Type`), paths, references, and `where` clauses.
fn impl_self_type(header: &[Token]) -> String {
    let end = header
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "where")
        .unwrap_or(header.len());
    let header = header.get(..end).unwrap_or(header);

    // The self type follows the last top-level `for` (skipping HRTB
    // `for<…>`); without one it follows the leading generics.
    let mut angle = 0i64;
    let mut seg_start = 0usize;
    for (k, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "for"
                if t.kind == TokKind::Ident
                    && angle <= 0
                    && header.get(k + 1).map(|n| n.text.as_str()) != Some("<") =>
            {
                seg_start = k + 1;
            }
            _ => {}
        }
    }
    let seg = header.get(seg_start..).unwrap_or(&[]);

    // Skip `<…>` generics that open the segment (`impl<T> Foo<T>`).
    let mut k = 0usize;
    if seg.first().is_some_and(|t| t.text == "<") {
        let mut depth = 0i64;
        while k < seg.len() {
            match seg[k].text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            k += 1;
            if depth <= 0 {
                break;
            }
        }
    }

    // First type ident, then follow `::` path segments to the last one.
    while k < seg.len() {
        let t = &seg[k];
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "const") {
            let mut name = t.text.clone();
            while seg.get(k + 1).is_some_and(|n| n.text == "::")
                && seg.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
            {
                name = seg[k + 2].text.clone();
                k += 2;
            }
            return name;
        }
        k += 1;
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Vec<Item> {
        let code: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let lines = src.lines().count() + 2;
        parse_items(&code, &vec![false; lines + 1])
    }

    #[test]
    fn free_fn_and_method_boundaries() {
        let src = "pub fn free(x: u32) -> u32 { x }\n\
                   struct S;\n\
                   impl S {\n    fn method(&self) {}\n    pub fn public(&self) {}\n}\n";
        let items = items_of(src);
        let fns: Vec<_> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "free");
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].impl_type, None);
        assert_eq!(fns[1].name, "method");
        assert!(!fns[1].is_pub);
        assert_eq!(fns[1].impl_type.as_deref(), Some("S"));
        assert!(fns[2].is_pub);
        assert_eq!(fns[2].display_name(), "S::public");
    }

    #[test]
    fn module_paths_nest() {
        let src = "mod outer {\n    pub mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\nfn top() {}\n";
        let items = items_of(src);
        let deep = items.iter().find(|i| i.name == "deep").unwrap();
        assert_eq!(deep.module, vec!["outer", "inner"]);
        let shallow = items.iter().find(|i| i.name == "shallow").unwrap();
        assert_eq!(shallow.module, vec!["outer"]);
        let top = items.iter().find(|i| i.name == "top").unwrap();
        assert!(top.module.is_empty());
    }

    #[test]
    fn impl_self_type_variants() {
        let cases = [
            ("impl Foo { fn a(&self) {} }", "Foo"),
            ("impl<T> Wrapper<T> { fn a(&self) {} }", "Wrapper"),
            ("impl Display for Err2 { fn a(&self) {} }", "Err2"),
            ("impl std::error::Error for Bad { fn a(&self) {} }", "Bad"),
            (
                "impl<'a> From<&'a [f32]> for Tensor { fn a(&self) {} }",
                "Tensor",
            ),
            (
                "impl<T: Clone> Iterator for Iter<T> where T: Send { fn a(&self) {} }",
                "Iter",
            ),
        ];
        for (src, want) in cases {
            let items = items_of(src);
            let f = items.iter().find(|i| i.name == "a").unwrap();
            assert_eq!(f.impl_type.as_deref(), Some(want), "{src}");
        }
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) -> u32 { cb(1) }\n";
        let items = items_of(src);
        let fns: Vec<_> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn bodyless_trait_methods_have_no_span() {
        let src =
            "trait T {\n    fn required(&self) -> u32;\n    fn provided(&self) -> u32 { 1 }\n}\n";
        let items = items_of(src);
        let req = items.iter().find(|i| i.name == "required").unwrap();
        assert!(req.body.is_none());
        let prov = items.iter().find(|i| i.name == "provided").unwrap();
        assert!(prov.body.is_some());
    }

    #[test]
    fn struct_literals_do_not_break_nesting() {
        let src = "fn build() -> P {\n    let p = P { x: 1, y: match 2 { _ => 3 } };\n    p\n}\nfn after() {}\n";
        let items = items_of(src);
        let build = items.iter().find(|i| i.name == "build").unwrap();
        assert_eq!((build.decl_line, build.end_line), (1, 4));
        let after = items.iter().find(|i| i.name == "after").unwrap();
        assert_eq!(after.decl_line, 5);
    }

    #[test]
    fn pub_does_not_leak_past_semicolon_or_brace() {
        let src = "pub struct S { pub x: u32 }\nfn private() {}\npub type A = u32;\nfn also_private() {}\n";
        let items = items_of(src);
        for name in ["private", "also_private"] {
            let f = items.iter().find(|i| i.name == name).unwrap();
            assert!(!f.is_pub, "{name} wrongly marked pub");
        }
    }

    #[test]
    fn spans_nest_or_are_disjoint() {
        let src = "mod m {\n    impl T {\n        fn a(&self) { if true { helper() } }\n        fn b(&self) {}\n    }\n}\nfn c() {}\n";
        let items = items_of(src);
        let spans: Vec<(usize, usize)> = items.iter().filter_map(|i| i.body).collect();
        for (i, &(s1, e1)) in spans.iter().enumerate() {
            assert!(s1 <= e1);
            for &(s2, e2) in spans.iter().skip(i + 1) {
                let disjoint = e1 < s2 || e2 < s1;
                let nested = (s1 < s2 && e2 <= e1) || (s2 < s1 && e1 <= e2);
                assert!(
                    disjoint || nested,
                    "spans overlap: {s1}..{e1} vs {s2}..{e2}"
                );
            }
        }
    }
}
