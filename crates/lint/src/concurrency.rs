//! Interprocedural concurrency analysis — the fedlint v4 lock-set engine
//! and the three rules built on it (DESIGN.md §8, v4):
//!
//! * `lock-order-global` — a workspace-global, interprocedural lock
//!   acquisition-order graph. Every edge that participates in a cycle is
//!   reported with the full acquisition chain
//!   (`lock A at file:line -> call f at file:line -> lock B at file:line`),
//!   and re-acquiring a held lock (directly or through a call chain) is a
//!   self-deadlock finding. Replaces the per-file lock-order graph that
//!   `pool-discipline` carried in v3.
//! * `guard-across-blocking` — no `Mutex`/`RwLock` guard may be live across
//!   a blocking operation: socket read/write/accept, channel recv,
//!   `thread::sleep`/`park`, pool job submission (`run_indexed`,
//!   `run_pair`, `submit`), or a `Condvar` wait — except the wait's *own*
//!   guard, which the condvar releases atomically.
//! * `atomic-ordering-pairing` — a `Release`/`AcqRel` store side on an
//!   atomic field must have a matching `Acquire`/`AcqRel`/`SeqCst` load
//!   side on the same field at some *other* non-test site in the
//!   workspace, and vice versa. `SeqCst` is exempt from demanding a
//!   partner but satisfies either side; `Relaxed` stays under
//!   `pool-discipline`'s justification-pragma regime.
//!
//! # The lock-set model
//!
//! The engine is flow-*insensitive* across functions and statement-ordered
//! within them, built from the same comment-free token stream as
//! [`crate::dataflow`]:
//!
//! * **Lock identity.** A lock is named by its declaration site. The
//!   declaration scan matches `name: Mutex<…>` / `name: RwLock<…>` (struct
//!   fields, statics, and type-ascribed `let`s; `std::sync::`-style path
//!   prefixes allowed, `&`-reference parameters deliberately excluded). A
//!   name declared exactly once is one workspace-global lock wherever it
//!   is acquired; a name declared in two places is *ambiguous* and its
//!   acquisitions are dropped; an undeclared name is a file-scoped lock.
//!   Conflation and dropping both under-report — see the contract below.
//! * **Guard lifetime.** Within a body the walk tracks brace depth:
//!   a `let`-bound guard dies at its scope's `}`, at `drop(var)`, or when
//!   its variable is rebound by a fresh `let`; an unbound (temporary)
//!   guard dies at the next `;` at or below its depth — so a
//!   `match`/`if let` scrutinee temporary correctly lives through the arm
//!   body. Reassignment without `let` (`guard = cv.wait(guard)…`) keeps
//!   the guard, matching condvar usage.
//! * **Acquisitions.** `.lock()` (method form), free-fn `lock(&x)` (the
//!   vendored pool's poison-shrugging helper — the *argument* names the
//!   lock), and `.read()`/`.write()` only on receivers declared exactly
//!   once as `RwLock` (anything else is file/socket I/O).
//! * **Interprocedural propagation.** Per function, the walk records the
//!   held-lock set at every resolved call site ([`crate::callgraph`]
//!   edges). A fixpoint then propagates two summaries up the graph:
//!   *may-acquire* (which locks a call into `f` can take, with a
//!   provenance chain) and *may-block* (can a call into `f` reach a
//!   blocking op, with a chain). Holding `G` at a call site whose callee
//!   may-acquire `L` yields the order edge `G -> L`; whose callee
//!   may-block yields a `guard-across-blocking` finding at the call site.
//!
//! # Under-approximation contract
//!
//! Like the call graph and the taint engine, ambiguity always *drops*
//! facts rather than inventing them: unresolved calls propagate nothing,
//! ambiguously-declared locks are untracked, `.read()`/`.write()` on
//! unknown receivers are ignored, and atomic sites pair by bare field
//! name (two same-named fields in different structs can satisfy each
//! other). The rules therefore under-report and never cry wolf; the
//! fixture suite pins what they *do* catch.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{body_indices, FnNode};
use crate::dataflow::{
    find_path, last_ident_in_group, let_bound_var, matching_close, receiver_name, ATOMIC_METHODS,
};
use crate::items::{Item, ItemKind};
use crate::lexer::{TokKind, Token};
use crate::rules::FileAnalysis;
use crate::Finding;

/// Fixpoint sweep cap; the call graph is shallow, so this is generous.
const MAX_PASSES: usize = 12;
/// Provenance chains longer than this stop propagating (cycle backstop).
const MAX_CHAIN: usize = 12;

/// Operations that block the calling thread. Matched as `name(`, `.name(`
/// or `::name(` when the call does not resolve to a workspace function
/// (resolved calls are analysed precisely through their bodies instead).
const BLOCKING_OPS: [&str; 16] = [
    "accept",
    "flush",
    "park",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "run_indexed",
    "run_pair",
    "sleep",
    "submit",
    "wait",
    "wait_timeout",
    "wait_while",
    "write_all",
];

/// The condvar-wait subset of [`BLOCKING_OPS`]: the first argument is the
/// guard the wait atomically releases, so that one guard is exempt.
const WAIT_OPS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

fn text_at(code: &[Token], i: usize) -> &str {
    code.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

// ---------------------------------------------------------------------------
// Lock identity
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum LockKind {
    Mutex,
    RwLock,
}

/// Workspace lock-declaration table: who declares which lock name.
struct LockTable {
    /// Names declared exactly once: name → (declaring file index, kind).
    once: BTreeMap<String, (usize, LockKind)>,
    /// Names declared at two or more sites: acquisitions are dropped.
    ambiguous: BTreeSet<String>,
}

impl LockTable {
    /// The canonical id for acquiring `name` in file `fi`, or `None` when
    /// the name is ambiguously declared. Ids qualify the bare name with
    /// the declaring (or, for undeclared names, acquiring) file.
    fn id(&self, files: &[FileAnalysis], fi: usize, name: &str) -> Option<String> {
        if self.ambiguous.contains(name) {
            return None;
        }
        let decl_file = match self.once.get(name) {
            Some((dfi, _)) => &files[*dfi].rel_path,
            None => &files[fi].rel_path,
        };
        Some(format!("{decl_file}::{name}"))
    }

    /// Is `name` declared exactly once, as an `RwLock`?
    fn is_rwlock(&self, name: &str) -> bool {
        matches!(self.once.get(name), Some((_, LockKind::RwLock)))
    }
}

/// Token index ranges covered by `#[cfg(test)]` item bodies, so the
/// declaration and atomic scans skip test code.
fn test_token_ranges(items: &[Item]) -> Vec<(usize, usize)> {
    items
        .iter()
        .filter(|it| it.is_test)
        .filter_map(|it| it.body)
        .collect()
}

fn in_ranges(ranges: &[(usize, usize)], k: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= k && k < b)
}

/// Scan every file for `name: Mutex<…>` / `name: RwLock<…>` declarations
/// (fields, statics, type-ascribed lets; optional path prefix; reference
/// parameters excluded by the missing-`&` requirement).
fn scan_declared_locks(files: &[FileAnalysis]) -> LockTable {
    let mut decls: BTreeMap<String, Vec<(usize, LockKind)>> = BTreeMap::new();
    for (fi, fa) in files.iter().enumerate() {
        let code = &fa.code;
        let skip = test_token_ranges(&fa.items);
        for k in 0..code.len() {
            let Some(t) = code.get(k) else { break };
            if t.kind != TokKind::Ident || text_at(code, k + 1) != ":" {
                continue;
            }
            if in_ranges(&skip, k) {
                continue;
            }
            // Skip an optional `std :: sync ::`-style path prefix.
            let mut j = k + 2;
            while code.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && text_at(code, j + 1) == "::"
            {
                j += 2;
            }
            let kind = match text_at(code, j) {
                "Mutex" => LockKind::Mutex,
                "RwLock" => LockKind::RwLock,
                _ => continue,
            };
            if text_at(code, j + 1) != "<" {
                continue;
            }
            decls.entry(t.text.clone()).or_default().push((fi, kind));
        }
    }
    let mut once = BTreeMap::new();
    let mut ambiguous = BTreeSet::new();
    for (name, sites) in decls {
        match sites.as_slice() {
            [single] => {
                once.insert(name, *single);
            }
            _ => {
                ambiguous.insert(name);
            }
        }
    }
    LockTable { once, ambiguous }
}

// ---------------------------------------------------------------------------
// Per-function guard walk
// ---------------------------------------------------------------------------

/// One live guard during the walk.
struct Guard {
    /// Canonical lock id ([`LockTable::id`]).
    lock: String,
    /// Bare lock name, for messages.
    name: String,
    /// `let`-bound variable, if any (temporaries are `None`).
    var: Option<String>,
    /// Brace depth at acquisition.
    depth: i64,
    line: u32,
}

/// A held-lock snapshot entry (guard state frozen at an event).
#[derive(Clone)]
struct HeldAt {
    lock: String,
    name: String,
    var: Option<String>,
    line: u32,
}

/// One direct acquisition, for may-acquire seeding.
struct Acq {
    lock: String,
    name: String,
    line: u32,
}

/// A resolved call site together with the locks held across it.
struct CallCtx {
    callee: usize,
    line: u32,
    held: Vec<HeldAt>,
}

/// A direct blocking operation together with the locks held across it.
struct BlockSite {
    op: String,
    line: u32,
    /// For condvar waits: the first argument identifier (the wait's own
    /// guard, which the condvar releases atomically).
    own_guard: Option<String>,
    held: Vec<HeldAt>,
}

/// Everything the fixpoint and the rule emitters need from one function.
struct FnSummary {
    /// rel_path of the function's file.
    file: String,
    /// Direct acquisitions, token order, deduplicated by lock id.
    acquires: Vec<Acq>,
    /// Same-body order edges: (held guard, then-acquired lock).
    edges: Vec<(HeldAt, Acq)>,
    /// Direct self-deadlocks: (already-held guard, name, re-acquisition line).
    reacquired: Vec<(HeldAt, String, u32)>,
    /// Resolved call sites (held set may be empty — still needed for
    /// summary propagation).
    calls: Vec<CallCtx>,
    /// Direct blocking operations (held set may be empty).
    blocks: Vec<BlockSite>,
}

/// Is token `k` a lock acquisition? Returns `(lock id, bare name)`.
fn acquisition_at(
    files: &[FileAnalysis],
    table: &LockTable,
    fi: usize,
    code: &[Token],
    k: usize,
) -> Option<(String, String)> {
    let t = code.get(k)?;
    if t.kind != TokKind::Ident || text_at(code, k + 1) != "(" {
        return None;
    }
    let prev = if k == 0 { "" } else { text_at(code, k - 1) };
    let name = match t.text.as_str() {
        "lock" if prev == "." => receiver_name(code, k - 1)?,
        "lock" if prev != "::" => last_ident_in_group(code, k + 1)?,
        "read" | "write" if prev == "." => {
            let name = receiver_name(code, k - 1)?;
            if !table.is_rwlock(&name) {
                return None;
            }
            name
        }
        _ => return None,
    };
    let id = table.id(files, fi, &name)?;
    Some((id, name))
}

/// For a condvar wait at token `k` (name followed by `(`): the first
/// identifier in the argument list — the guard the wait releases.
fn wait_own_guard(code: &[Token], k: usize) -> Option<String> {
    let close = matching_close(code, k + 1);
    code[k + 2..close.min(code.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

fn snapshot(held: &[Guard]) -> Vec<HeldAt> {
    held.iter()
        .map(|g| HeldAt {
            lock: g.lock.clone(),
            name: g.name.clone(),
            var: g.var.clone(),
            line: g.line,
        })
        .collect()
}

/// Walk one function body, producing its summary. The guard-lifetime
/// model is documented at module level.
fn summarize_fn(
    files: &[FileAnalysis],
    table: &LockTable,
    nodes: &[FnNode],
    n: usize,
) -> Option<FnSummary> {
    let node = nodes.get(n)?;
    if node.is_test {
        return None;
    }
    let fa = files.get(node.file_idx)?;
    let item = fa.items.get(node.item_idx)?;
    if item.kind != ItemKind::Fn || item.body.is_none() {
        return None;
    }
    let code = &fa.code;
    let sites: BTreeMap<usize, usize> = node.sites.iter().map(|s| (s.tok, s.callee)).collect();

    let mut sum = FnSummary {
        file: fa.rel_path.clone(),
        acquires: Vec::new(),
        edges: Vec::new(),
        reacquired: Vec::new(),
        calls: Vec::new(),
        blocks: Vec::new(),
    };
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 1i64;
    for &k in &body_indices(item, &fa.items) {
        let Some(t) = code.get(k) else { break };
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
            }
            ";" => held.retain(|g| !(g.var.is_none() && g.depth >= depth)),
            "drop"
                if text_at(code, k + 1) == "("
                    && code.get(k + 2).is_some_and(|a| a.kind == TokKind::Ident)
                    && text_at(code, k + 3) == ")" =>
            {
                let var = text_at(code, k + 2).to_string();
                held.retain(|g| g.var.as_deref() != Some(var.as_str()));
            }
            _ if t.kind == TokKind::Ident => {
                if let Some((id, name)) = acquisition_at(files, table, node.file_idx, code, k) {
                    let bound = let_bound_var(code, k);
                    if let Some(v) = &bound {
                        // Rebinding drops the old guard before the new
                        // acquisition completes.
                        held.retain(|g| g.var.as_deref() != Some(v.as_str()));
                    }
                    for g in &held {
                        if g.lock == id {
                            sum.reacquired.push((
                                HeldAt {
                                    lock: g.lock.clone(),
                                    name: g.name.clone(),
                                    var: g.var.clone(),
                                    line: g.line,
                                },
                                name.clone(),
                                t.line,
                            ));
                        } else {
                            sum.edges.push((
                                HeldAt {
                                    lock: g.lock.clone(),
                                    name: g.name.clone(),
                                    var: g.var.clone(),
                                    line: g.line,
                                },
                                Acq {
                                    lock: id.clone(),
                                    name: name.clone(),
                                    line: t.line,
                                },
                            ));
                        }
                    }
                    if !sum.acquires.iter().any(|a| a.lock == id) {
                        sum.acquires.push(Acq {
                            lock: id.clone(),
                            name: name.clone(),
                            line: t.line,
                        });
                    }
                    held.push(Guard {
                        lock: id,
                        name,
                        var: bound,
                        depth,
                        line: t.line,
                    });
                    // A free-fn `lock(&x)` site also resolves as a call to
                    // the pool's helper; the acquisition just recorded *is*
                    // that call's effect, so skip the call-site capture.
                    continue;
                }
                if let Some(&callee) = sites.get(&k) {
                    sum.calls.push(CallCtx {
                        callee,
                        line: t.line,
                        held: snapshot(&held),
                    });
                } else if BLOCKING_OPS.contains(&t.text.as_str()) && text_at(code, k + 1) == "(" {
                    let own_guard = if WAIT_OPS.contains(&t.text.as_str()) {
                        wait_own_guard(code, k)
                    } else {
                        None
                    };
                    sum.blocks.push(BlockSite {
                        op: t.text.clone(),
                        line: t.line,
                        own_guard,
                        held: snapshot(&held),
                    });
                }
            }
            _ => {}
        }
    }
    Some(sum)
}

// ---------------------------------------------------------------------------
// Fixpoint: may-acquire and may-block summaries
// ---------------------------------------------------------------------------

/// Transitive acquisition fact: how a call into this function can take a
/// lock, as a provenance chain of `lock …`/`call …` hops.
#[derive(Clone)]
struct AcqFact {
    name: String,
    chain: Vec<String>,
}

/// Transitive blocking fact with its provenance chain.
#[derive(Clone)]
struct BlockFact {
    chain: Vec<String>,
}

/// The assembled engine state the rule emitters read.
pub(crate) struct LockSets {
    summaries: Vec<Option<FnSummary>>,
    /// Per node: lock id → first-found acquisition chain.
    trans_acq: Vec<BTreeMap<String, AcqFact>>,
    /// Per node: first-found chain to a blocking op, if any.
    trans_block: Vec<Option<BlockFact>>,
    /// Callee display names, indexed like `nodes`.
    displays: Vec<String>,
}

/// Build the lock table, per-function summaries, and the two fixpoint
/// summaries. Deterministic: nodes are swept in index order and existing
/// facts are never overwritten, so chains are first-found and stable.
pub(crate) fn build(files: &[FileAnalysis], nodes: &[FnNode]) -> LockSets {
    let table = scan_declared_locks(files);
    let summaries: Vec<Option<FnSummary>> = (0..nodes.len())
        .map(|n| summarize_fn(files, &table, nodes, n))
        .collect();

    let mut trans_acq: Vec<BTreeMap<String, AcqFact>> = vec![BTreeMap::new(); nodes.len()];
    let mut trans_block: Vec<Option<BlockFact>> = vec![None; nodes.len()];
    for (n, sum) in summaries.iter().enumerate() {
        let Some(sum) = sum else { continue };
        for a in &sum.acquires {
            trans_acq[n].insert(
                a.lock.clone(),
                AcqFact {
                    name: a.name.clone(),
                    chain: vec![format!("lock `{}` at {}:{}", a.name, sum.file, a.line)],
                },
            );
        }
        if let Some(b) = sum.blocks.first() {
            trans_block[n] = Some(BlockFact {
                chain: vec![format!("`{}` at {}:{}", b.op, sum.file, b.line)],
            });
        }
    }

    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for n in 0..nodes.len() {
            let Some(sum) = &summaries[n] else { continue };
            // Two-phase per node: read callees immutably, then apply.
            let mut new_acq: Vec<(String, AcqFact)> = Vec::new();
            let mut new_block: Option<BlockFact> = None;
            for call in &sum.calls {
                let hop = format!(
                    "call `{}` at {}:{}",
                    nodes[call.callee].display, sum.file, call.line
                );
                for (lock, fact) in &trans_acq[call.callee] {
                    if trans_acq[n].contains_key(lock)
                        || new_acq.iter().any(|(l, _)| l == lock)
                        || fact.chain.len() >= MAX_CHAIN
                    {
                        continue;
                    }
                    let mut chain = vec![hop.clone()];
                    chain.extend(fact.chain.iter().cloned());
                    new_acq.push((
                        lock.clone(),
                        AcqFact {
                            name: fact.name.clone(),
                            chain,
                        },
                    ));
                }
                if trans_block[n].is_none() && new_block.is_none() {
                    if let Some(bf) = &trans_block[call.callee] {
                        if bf.chain.len() < MAX_CHAIN {
                            let mut chain = vec![hop.clone()];
                            chain.extend(bf.chain.iter().cloned());
                            new_block = Some(BlockFact { chain });
                        }
                    }
                }
            }
            if !new_acq.is_empty() {
                changed = true;
                for (lock, fact) in new_acq {
                    trans_acq[n].insert(lock, fact);
                }
            }
            if let Some(bf) = new_block {
                trans_block[n] = Some(bf);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    LockSets {
        summaries,
        trans_acq,
        trans_block,
        displays: nodes.iter().map(|n| n.display.clone()).collect(),
    }
}

// ---------------------------------------------------------------------------
// Rule: lock-order-global
// ---------------------------------------------------------------------------

/// One order edge `a -> b` in the global graph, with the site where it is
/// reported and the full acquisition chain that witnesses it.
struct EdgeInfo {
    file: String,
    line: u32,
    a_name: String,
    b_name: String,
    chain: String,
}

/// Emit the workspace-global lock-order findings: every edge on a cycle
/// (with its full chain) plus direct and call-chain self-deadlocks.
pub(crate) fn lock_order_global(sets: &LockSets) -> Vec<Finding> {
    let mut out = Vec::new();
    // (held lock id, acquired lock id) → first witnessing edge.
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    for sum in sets.summaries.iter().flatten() {
        for (g, acq) in &sum.edges {
            let chain = format!(
                "lock `{}` at {}:{} -> lock `{}` at {}:{}",
                g.name, sum.file, g.line, acq.name, sum.file, acq.line
            );
            edges
                .entry((g.lock.clone(), acq.lock.clone()))
                .or_insert_with(|| EdgeInfo {
                    file: sum.file.clone(),
                    line: acq.line,
                    a_name: g.name.clone(),
                    b_name: acq.name.clone(),
                    chain,
                });
        }
        for (g, name, line) in &sum.reacquired {
            out.push(Finding {
                file: sum.file.clone(),
                line: *line,
                rule: "lock-order-global",
                message: format!(
                    "lock `{}` acquired while already held (first acquired at line {}); \
                     self-deadlock on a non-reentrant Mutex/RwLock",
                    name, g.line
                ),
            });
        }
        for call in &sum.calls {
            if call.held.is_empty() {
                continue;
            }
            for (lock, fact) in &sets.trans_acq[call.callee] {
                for g in &call.held {
                    let chain = format!(
                        "lock `{}` at {}:{} -> call `{}` at {}:{} -> {}",
                        g.name,
                        sum.file,
                        g.line,
                        sets.displays[call.callee],
                        sum.file,
                        call.line,
                        fact.chain.join(" -> ")
                    );
                    if g.lock == *lock {
                        out.push(Finding {
                            file: sum.file.clone(),
                            line: call.line,
                            rule: "lock-order-global",
                            message: format!(
                                "lock `{}` is re-acquired through a call chain while still \
                                 held ({chain}); self-deadlock on a non-reentrant Mutex/RwLock",
                                g.name
                            ),
                        });
                    } else {
                        edges
                            .entry((g.lock.clone(), lock.clone()))
                            .or_insert_with(|| EdgeInfo {
                                file: sum.file.clone(),
                                line: call.line,
                                a_name: g.name.clone(),
                                b_name: fact.name.clone(),
                                chain,
                            });
                    }
                }
            }
        }
    }

    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    for ((a, b), e) in &edges {
        if find_path(&adj, b, a).is_none() {
            continue;
        }
        out.push(Finding {
            file: e.file.clone(),
            line: e.line,
            rule: "lock-order-global",
            message: format!(
                "lock-order cycle: `{}` is held while acquiring `{}` ({}); elsewhere \
                 `{}` -> `{}` is (transitively) acquired; impose one global acquisition order",
                e.a_name, e.b_name, e.chain, e.b_name, e.a_name
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: guard-across-blocking
// ---------------------------------------------------------------------------

/// Emit the guard-across-blocking findings: a live guard at a direct
/// blocking op (condvar waits exempt their own guard) or at a call site
/// whose callee may-block.
pub(crate) fn guard_across_blocking(sets: &LockSets) -> Vec<Finding> {
    let mut out = Vec::new();
    for sum in sets.summaries.iter().flatten() {
        for b in &sum.blocks {
            for g in &b.held {
                if g.var.is_some() && g.var == b.own_guard {
                    continue; // the condvar releases this guard atomically
                }
                out.push(Finding {
                    file: sum.file.clone(),
                    line: b.line,
                    rule: "guard-across-blocking",
                    message: format!(
                        "guard on `{}` is held across blocking `{}` (lock `{}` at {}:{} -> \
                         `{}` at {}:{}); drop the guard or shrink its scope before blocking",
                        g.name, b.op, g.name, sum.file, g.line, b.op, sum.file, b.line
                    ),
                });
            }
        }
        for call in &sum.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(bf) = &sets.trans_block[call.callee] else {
                continue;
            };
            for g in &call.held {
                out.push(Finding {
                    file: sum.file.clone(),
                    line: call.line,
                    rule: "guard-across-blocking",
                    message: format!(
                        "guard on `{}` is held across a call that (transitively) blocks \
                         (lock `{}` at {}:{} -> call `{}` at {}:{} -> {}); drop the guard \
                         before the call or hoist the blocking op out of the critical section",
                        g.name,
                        g.name,
                        sum.file,
                        g.line,
                        sets.displays[call.callee],
                        sum.file,
                        call.line,
                        bf.chain.join(" -> ")
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: atomic-ordering-pairing
// ---------------------------------------------------------------------------

/// One non-test atomic operation, classified by what it demands and what
/// it can satisfy. RMW ops take their single ordering on both sides; the
/// second ordering of `compare_exchange*`/`fetch_update` is the
/// failure/fetch load.
struct AtomicSite {
    field: String,
    file: String,
    line: u32,
    op: String,
    /// Store side is Release/AcqRel: needs an acquiring load elsewhere.
    demands_acquire: Option<&'static str>,
    /// Load side is Acquire/AcqRel: needs a releasing store elsewhere.
    demands_release: Option<&'static str>,
    provides_acquire: bool,
    provides_release: bool,
}

fn ordering_name(ord: &str) -> Option<&'static str> {
    match ord {
        "Relaxed" => Some("Relaxed"),
        "Acquire" => Some("Acquire"),
        "Release" => Some("Release"),
        "AcqRel" => Some("AcqRel"),
        "SeqCst" => Some("SeqCst"),
        _ => None,
    }
}

/// The `Ordering::X` names inside a call's argument group, in order.
fn orderings_in_call(code: &[Token], open: usize) -> Vec<&'static str> {
    let close = matching_close(code, open);
    let mut out = Vec::new();
    let mut j = open + 1;
    while j + 2 < close.min(code.len()) {
        if text_at(code, j) == "Ordering" && text_at(code, j + 1) == "::" {
            if let Some(ord) = ordering_name(text_at(code, j + 2)) {
                out.push(ord);
            }
            j += 3;
        } else {
            j += 1;
        }
    }
    out
}

fn classify_site(
    field: String,
    file: String,
    line: u32,
    op: &str,
    ords: &[&'static str],
) -> AtomicSite {
    let mut site = AtomicSite {
        field,
        file,
        line,
        op: op.to_string(),
        demands_acquire: None,
        demands_release: None,
        provides_acquire: false,
        provides_release: false,
    };
    // (store-side orderings, load-side orderings) per op shape.
    let (stores, loads): (Vec<&'static str>, Vec<&'static str>) = match op {
        "load" => (vec![], ords.first().copied().into_iter().collect()),
        "store" => (ords.first().copied().into_iter().collect(), vec![]),
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => (
            ords.first().copied().into_iter().collect(),
            ords.iter().take(2).copied().collect(),
        ),
        // Plain RMW: the one ordering applies to both halves.
        _ => (
            ords.first().copied().into_iter().collect(),
            ords.first().copied().into_iter().collect(),
        ),
    };
    for ord in stores {
        match ord {
            "Release" | "AcqRel" => {
                site.demands_acquire.get_or_insert(ord);
                site.provides_release = true;
            }
            "SeqCst" => site.provides_release = true,
            _ => {}
        }
    }
    for ord in loads {
        match ord {
            "Acquire" | "AcqRel" => {
                site.demands_release.get_or_insert(ord);
                site.provides_acquire = true;
            }
            "SeqCst" => site.provides_acquire = true,
            _ => {}
        }
    }
    site
}

/// Emit the atomic-ordering-pairing findings: demanding sites with no
/// partnering site (by bare field name) anywhere else in the workspace.
pub(crate) fn atomic_ordering_pairing(files: &[FileAnalysis]) -> Vec<Finding> {
    let mut sites: Vec<AtomicSite> = Vec::new();
    for fa in files {
        let code = &fa.code;
        for item in &fa.items {
            if item.kind != ItemKind::Fn || item.is_test || item.body.is_none() {
                continue;
            }
            for &k in &body_indices(item, &fa.items) {
                let Some(t) = code.get(k) else { break };
                if t.kind != TokKind::Ident
                    || !ATOMIC_METHODS.contains(&t.text.as_str())
                    || text_at(code, k + 1) != "("
                    || k == 0
                    || text_at(code, k - 1) != "."
                {
                    continue;
                }
                let Some(field) = receiver_name(code, k - 1) else {
                    continue;
                };
                let ords = orderings_in_call(code, k + 1);
                if ords.is_empty() {
                    continue; // not an atomic call after all (or macro soup)
                }
                sites.push(classify_site(
                    field,
                    fa.rel_path.clone(),
                    t.line,
                    &t.text,
                    &ords,
                ));
            }
        }
    }

    let mut out = Vec::new();
    for (i, s) in sites.iter().enumerate() {
        let partner = |acquire: bool| {
            sites.iter().enumerate().any(|(j, p)| {
                j != i
                    && p.field == s.field
                    && if acquire {
                        p.provides_acquire
                    } else {
                        p.provides_release
                    }
            })
        };
        if let Some(ord) = s.demands_acquire {
            if !partner(true) {
                out.push(Finding {
                    file: s.file.clone(),
                    line: s.line,
                    rule: "atomic-ordering-pairing",
                    message: format!(
                        "`{}.{}` stores with `Ordering::{}` but no other non-test site \
                         performs an Acquire/AcqRel/SeqCst load of `{}` anywhere in the \
                         workspace; the release edge has no acquire to synchronize with — \
                         add the acquiring load or justify a weaker ordering",
                        s.field, s.op, ord, s.field
                    ),
                });
            }
        }
        if let Some(ord) = s.demands_release {
            if !partner(false) {
                out.push(Finding {
                    file: s.file.clone(),
                    line: s.line,
                    rule: "atomic-ordering-pairing",
                    message: format!(
                        "`{}.{}` loads with `Ordering::{}` but no other non-test site \
                         performs a Release/AcqRel/SeqCst store of `{}` anywhere in the \
                         workspace; the acquire edge has no release to synchronize with — \
                         add the releasing store or justify a weaker ordering",
                        s.field, s.op, ord, s.field
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::callgraph::build_graph;
    use crate::rules::{analyze_source, FileAnalysis, FileContext};

    fn analyses(sources: &[(&str, &str)]) -> Vec<FileAnalysis> {
        sources
            .iter()
            .map(|&(rel, src)| {
                let crate_name = rel.split('/').nth(1).unwrap_or("x").to_string();
                let ctx = FileContext {
                    crate_name: &crate_name,
                    rel_path: rel,
                    is_bin: false,
                };
                analyze_source(&ctx, src)
            })
            .collect()
    }

    fn findings(sources: &[(&str, &str)]) -> Vec<(String, u32, &'static str, String)> {
        let files = analyses(sources);
        let nodes = build_graph(&files);
        let sets = super::build(&files, &nodes);
        let mut out = super::lock_order_global(&sets);
        out.extend(super::guard_across_blocking(&sets));
        out.extend(super::atomic_ordering_pairing(&files));
        let mut out: Vec<_> = out
            .into_iter()
            .map(|f| (f.file, f.line, f.rule, f.message))
            .collect();
        out.sort();
        out
    }

    const PAIR: &str = "vendor/rayon/src/pair.rs";

    #[test]
    fn direct_reversed_pair_is_a_cycle_with_chains() {
        let src = "struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                   fn fwd(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   let gb = s.beta.lock().unwrap();\n\
                   drop(gb); drop(ga);\n\
                   }\n\
                   fn bwd(s: &S) {\n\
                   let gb = s.beta.lock().unwrap();\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   drop(ga); drop(gb);\n\
                   }\n";
        let got = findings(&[(PAIR, src)]);
        let rules: Vec<_> = got.iter().map(|f| (f.1, f.2)).collect();
        assert_eq!(
            rules,
            vec![(4, "lock-order-global"), (9, "lock-order-global")]
        );
        assert!(
            got[0].3.contains("`alpha` is held while acquiring `beta`"),
            "{}",
            got[0].3
        );
        assert!(
            got[0]
                .3
                .contains("lock `alpha` at vendor/rayon/src/pair.rs:3 -> lock `beta` at vendor/rayon/src/pair.rs:4"),
            "{}",
            got[0].3
        );
    }

    #[test]
    fn consistent_order_and_drop_before_reacquire_are_clean() {
        let src = "struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                   fn one(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   let gb = s.beta.lock().unwrap();\n\
                   drop(gb); drop(ga);\n\
                   }\n\
                   fn two(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   drop(ga);\n\
                   let gb = s.beta.lock().unwrap();\n\
                   drop(gb);\n\
                   }\n";
        assert_eq!(findings(&[(PAIR, src)]), vec![]);
    }

    #[test]
    fn self_deadlock_direct_and_through_call_chain() {
        let src = "struct S { alpha: Mutex<u32> }\n\
                   fn direct(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   let gb = s.alpha.lock().unwrap();\n\
                   drop(gb); drop(ga);\n\
                   }\n\
                   fn outer(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   inner(s);\n\
                   drop(ga);\n\
                   }\n\
                   fn inner(s: &S) {\n\
                   let g = s.alpha.lock().unwrap();\n\
                   drop(g);\n\
                   }\n";
        let got = findings(&[(PAIR, src)]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0].1, 4);
        assert!(got[0].3.contains("self-deadlock"));
        assert_eq!(got[1].1, 9);
        assert!(
            got[1].3.contains("re-acquired through a call chain"),
            "{}",
            got[1].3
        );
        assert!(
            got[1]
                .3
                .contains("call `inner` at vendor/rayon/src/pair.rs:9 -> lock `alpha` at vendor/rayon/src/pair.rs:13"),
            "{}",
            got[1].3
        );
    }

    #[test]
    fn cross_file_interprocedural_cycle_reports_full_chain() {
        let a = "struct P { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                 pub fn a_then_b(p: &P) {\n\
                 let g = p.alpha.lock().unwrap();\n\
                 grab_beta(p);\n\
                 drop(g);\n\
                 }\n";
        let b = "pub fn grab_beta(p: &crate::P) {\n\
                 let g = p.beta.lock().unwrap();\n\
                 drop(g);\n\
                 }\n\
                 pub fn b_then_a(p: &crate::P) {\n\
                 let g = p.beta.lock().unwrap();\n\
                 grab_alpha(p);\n\
                 drop(g);\n\
                 }\n\
                 pub fn grab_alpha(p: &crate::P) {\n\
                 let g = p.alpha.lock().unwrap();\n\
                 drop(g);\n\
                 }\n";
        let got = findings(&[("vendor/rayon/src/fa.rs", a), ("vendor/rayon/src/fb.rs", b)]);
        let cyc: Vec<_> = got.iter().filter(|f| f.2 == "lock-order-global").collect();
        assert_eq!(cyc.len(), 2, "{got:?}");
        assert!(
            cyc[0].3.contains(
                "lock `alpha` at vendor/rayon/src/fa.rs:3 -> call `grab_beta` at \
                 vendor/rayon/src/fa.rs:4 -> lock `beta` at vendor/rayon/src/fb.rs:2"
            ),
            "{}",
            cyc[0].3
        );
    }

    #[test]
    fn guard_across_sleep_and_transitive_socket_write() {
        let src = "struct S { alpha: Mutex<u32> }\n\
                   fn napper(s: &S) {\n\
                   let g = s.alpha.lock().unwrap();\n\
                   sleep(ms);\n\
                   drop(g);\n\
                   }\n\
                   fn sender(s: &S, out: &mut W) {\n\
                   let g = s.alpha.lock().unwrap();\n\
                   emit(out);\n\
                   drop(g);\n\
                   }\n\
                   fn emit(out: &mut W) {\n\
                   out.write_all(b).unwrap();\n\
                   }\n";
        let got = findings(&[(PAIR, src)]);
        let gab: Vec<_> = got
            .iter()
            .filter(|f| f.2 == "guard-across-blocking")
            .collect();
        assert_eq!(gab.len(), 2, "{got:?}");
        assert_eq!(gab[0].1, 4);
        assert!(gab[0].3.contains("held across blocking `sleep`"));
        assert_eq!(gab[1].1, 9);
        assert!(
            gab[1].3.contains(
                "call `emit` at vendor/rayon/src/pair.rs:9 -> `write_all` at \
                 vendor/rayon/src/pair.rs:13"
            ),
            "{}",
            gab[1].3
        );
    }

    #[test]
    fn condvar_wait_on_own_guard_is_exempt_but_other_guards_fire() {
        let own = "struct S { alpha: Mutex<u32> }\n\
                   fn waiter(s: &S, cv: &Condvar) {\n\
                   let mut g = s.alpha.lock().unwrap();\n\
                   g = cv.wait(g).unwrap();\n\
                   drop(g);\n\
                   }\n";
        assert_eq!(findings(&[(PAIR, own)]), vec![]);

        let other = "struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                     fn waiter(s: &S, cv: &Condvar) {\n\
                     let held = s.beta.lock().unwrap();\n\
                     let mut g = s.alpha.lock().unwrap();\n\
                     g = cv.wait(g).unwrap();\n\
                     drop(g); drop(held);\n\
                     }\n";
        let got = findings(&[(PAIR, other)]);
        let gab: Vec<_> = got
            .iter()
            .filter(|f| f.2 == "guard-across-blocking")
            .collect();
        assert_eq!(gab.len(), 1, "{got:?}");
        assert_eq!(gab[0].1, 5);
        assert!(gab[0].3.contains("`beta`"), "{}", gab[0].3);
    }

    #[test]
    fn unpaired_release_and_acquire_fire_but_pairs_and_seqcst_are_clean() {
        let bad = "struct F { flag: AtomicUsize, seq: AtomicUsize }\n\
                   fn publish(f: &F) {\n\
                   f.flag.store(1, Ordering::Release);\n\
                   }\n\
                   fn observe(f: &F) -> usize {\n\
                   f.seq.load(Ordering::Acquire)\n\
                   }\n";
        let got = findings(&[(PAIR, bad)]);
        let aop: Vec<_> = got
            .iter()
            .filter(|f| f.2 == "atomic-ordering-pairing")
            .collect();
        assert_eq!(aop.len(), 2, "{got:?}");
        assert_eq!(aop[0].1, 3);
        assert!(aop[0].3.contains("no acquire to synchronize with"));
        assert_eq!(aop[1].1, 6);
        assert!(aop[1].3.contains("no release to synchronize with"));

        let good = "struct F { flag: AtomicUsize, n: AtomicUsize }\n\
                    fn publish(f: &F) {\n\
                    f.flag.store(1, Ordering::Release);\n\
                    f.n.store(0, Ordering::SeqCst);\n\
                    }\n\
                    fn observe(f: &F) -> usize {\n\
                    f.flag.load(Ordering::Acquire)\n\
                    + f.n.load(Ordering::SeqCst)\n\
                    + f.n.fetch_add(1, Ordering::AcqRel)\n\
                    }\n";
        assert_eq!(findings(&[(PAIR, good)]), vec![]);
    }

    #[test]
    fn rmw_second_ordering_is_the_failure_load() {
        // compare_exchange(SeqCst, Acquire): the Acquire failure load
        // demands a release partner; none exists.
        let src = "struct F { flag: AtomicUsize }\n\
                   fn bump(f: &F) {\n\
                   let _ = f.flag.compare_exchange(0, 1, Ordering::SeqCst, Ordering::Acquire);\n\
                   }\n";
        let got = findings(&[(PAIR, src)]);
        let aop: Vec<_> = got
            .iter()
            .filter(|f| f.2 == "atomic-ordering-pairing")
            .collect();
        assert_eq!(aop.len(), 1, "{got:?}");
        assert!(aop[0].3.contains("Ordering::Acquire"), "{}", aop[0].3);
    }

    #[test]
    fn ambiguously_declared_locks_are_dropped() {
        // `alpha` declared in two files: no tracking, so the reversed
        // pair with `beta` cannot produce an edge or a cycle.
        let a = "struct S1 { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                 fn fwd(s: &S1) {\n\
                 let ga = s.alpha.lock().unwrap();\n\
                 let gb = s.beta.lock().unwrap();\n\
                 drop(gb); drop(ga);\n\
                 }\n";
        let b = "struct S2 { alpha: Mutex<u32> }\n\
                 fn bwd(s: &S2, t: &crate::S1) {\n\
                 let gb = t.beta.lock().unwrap();\n\
                 let ga = s.alpha.lock().unwrap();\n\
                 drop(ga); drop(gb);\n\
                 }\n";
        assert_eq!(
            findings(&[("vendor/rayon/src/m1.rs", a), ("vendor/rayon/src/m2.rs", b)]),
            vec![]
        );
    }

    #[test]
    fn engine_is_deterministic() {
        let src = "struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n\
                   fn fwd(s: &S) {\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   let gb = s.beta.lock().unwrap();\n\
                   sleep(ms);\n\
                   drop(gb); drop(ga);\n\
                   }\n\
                   fn bwd(s: &S) {\n\
                   let gb = s.beta.lock().unwrap();\n\
                   let ga = s.alpha.lock().unwrap();\n\
                   drop(ga); drop(gb);\n\
                   }\n";
        assert_eq!(findings(&[(PAIR, src)]), findings(&[(PAIR, src)]));
    }
}
