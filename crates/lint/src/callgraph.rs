//! The approximate intra-workspace call graph and the global rules built on
//! it: `panic-reachability` and `rng-stream-collision`.
//!
//! Call resolution is identifier-based and deliberately conservative —
//! anything ambiguous is *ignored* rather than guessed, so the graph
//! under-approximates real calls and the rules under-report rather than
//! spray false positives. Three call shapes resolve:
//!
//! * `self.method(…)` — to a method of the enclosing `impl` type in the
//!   same crate (other receivers are invisible to a typeless analysis);
//! * `path::to::f(…)` / `Type::f(…)` — when the path's qualifier segments
//!   are a suffix of exactly one candidate's full path
//!   `[crate, file modules…, inline modules…, impl type]`, with
//!   `fedclust_<crate>` and `crate`/`self`/`super`/`Self` prefixes
//!   normalized away;
//! * bare `f(…)` — to a unique free function: first in the same
//!   file + module, then unique in the crate, then unique in the workspace.
//!
//! Determinism: nodes are numbered in (sorted file, declaration order),
//! adjacency lists are sorted and deduplicated, and reachability is a BFS
//! that visits callees in node order — repeated runs produce byte-identical
//! findings and the reported chain is a shortest one.

use crate::items::{Item, ItemKind};
use crate::lexer::{TokKind, Token};
use crate::rules::FileAnalysis;
use crate::Finding;
use std::collections::{BTreeMap, VecDeque};

/// Crates whose non-test `pub fn`s must not transitively reach a panic.
const PANIC_REACH_CRATES: [&str; 5] = ["cluster", "core", "fl", "nn", "tensor"];
/// Crates where RNG stream consumption is scope-checked.
const RNG_SCOPE_CRATES: [&str; 2] = ["core", "fl"];

/// Identifiers never treated as a bare call even when followed by `(`:
/// keywords and the ubiquitous enum constructors.
const NON_CALLS: [&str; 28] = [
    "Err", "None", "Ok", "Self", "Some", "as", "async", "await", "box", "break", "const",
    "continue", "dyn", "else", "fn", "for", "if", "in", "let", "loop", "match", "move", "mut",
    "ref", "return", "static", "where", "while",
];

/// One resolved call site inside a body: the callee node and the token
/// index of the call's name (so the taint engine can read its arguments).
pub(crate) struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub(crate) tok: usize,
    /// Callee node index.
    pub(crate) callee: usize,
    /// `self.method(…)` form — arguments shift past the receiver.
    pub(crate) method: bool,
}

/// One function in the workspace graph.
pub(crate) struct FnNode {
    pub(crate) file_idx: usize,
    /// Index of the backing item in its file's `items` vec.
    pub(crate) item_idx: usize,
    /// `[crate, file modules…, inline modules…, impl type?]`.
    path: Vec<String>,
    name: String,
    pub(crate) display: String,
    file: String,
    crate_name: String,
    module: Vec<String>,
    impl_type: Option<String>,
    is_pub: bool,
    pub(crate) is_test: bool,
    is_bin: bool,
    decl_line: u32,
    /// Sorted, deduplicated callee node indices.
    calls: Vec<usize>,
    /// Resolved call sites in token order (unsorted, may repeat callees).
    pub(crate) sites: Vec<CallSite>,
    /// Unsuppressed panic sites in this body, sorted by line.
    panics: Vec<(u32, String)>,
}

/// Run the cross-file rules over the per-file analyses. Findings are
/// pragma-filtered here (the driver cannot: it no longer sees the pragmas)
/// and returned unsorted.
pub fn global_findings(files: &[FileAnalysis]) -> Vec<Finding> {
    global_findings_timed(files, None)
}

/// [`global_findings`] with optional per-rule/per-stage wall-time
/// accounting.
pub fn global_findings_timed(
    files: &[FileAnalysis],
    mut timings: Option<&mut crate::Timings>,
) -> Vec<Finding> {
    use std::time::Instant;
    let mut out = Vec::new();
    let start = Instant::now();
    let nodes = build_graph(files);
    crate::record_elapsed(&mut timings, "infra:callgraph", start);
    let start = Instant::now();
    panic_reachability(&nodes, &mut out);
    crate::record_elapsed(&mut timings, "panic-reachability", start);
    let start = Instant::now();
    stream_collisions(files, &mut out);
    duplicate_derives(files, &mut out);
    crate::record_elapsed(&mut timings, "rng-stream-collision", start);
    let start = Instant::now();
    out.extend(crate::dataflow::taint_findings(
        files,
        &crate::dataflow::untrusted_input_spec(),
    ));
    crate::record_elapsed(&mut timings, "untrusted-input-taint", start);
    let start = Instant::now();
    out.extend(crate::dataflow::taint_findings(
        files,
        &crate::dataflow::determinism_spec(),
    ));
    crate::record_elapsed(&mut timings, "determinism-taint", start);
    let start = Instant::now();
    let locksets = crate::concurrency::build(files, &nodes);
    crate::record_elapsed(&mut timings, "infra:lockset-engine", start);
    let start = Instant::now();
    out.extend(crate::concurrency::lock_order_global(&locksets));
    crate::record_elapsed(&mut timings, "lock-order-global", start);
    let start = Instant::now();
    out.extend(crate::concurrency::guard_across_blocking(&locksets));
    crate::record_elapsed(&mut timings, "guard-across-blocking", start);
    let start = Instant::now();
    out.extend(crate::concurrency::atomic_ordering_pairing(files));
    crate::record_elapsed(&mut timings, "atomic-ordering-pairing", start);
    out.retain(|f| {
        files
            .iter()
            .find(|fa| fa.rel_path == f.file)
            .is_none_or(|fa| !fa.suppressed(f.rule, f.line))
    });
    out
}

/// The in-file module path implied by a file's location under `src/`:
/// `crates/fl/src/methods/ifca.rs` → `["methods", "ifca"]`.
fn file_mods(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("/src/") else {
        return Vec::new();
    };
    let tail = rel.get(pos + 5..).unwrap_or("");
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<String> = tail
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if parts
        .last()
        .is_some_and(|s| s == "mod" || s == "lib" || s == "main")
    {
        parts.pop();
    }
    parts
}

/// Path-segment equality with the crate-import alias: callers write
/// `fedclust_tensor::…` for the crate directory `tensor`.
fn seg_eq(call_seg: &str, cand_seg: &str) -> bool {
    call_seg == cand_seg || call_seg.strip_prefix("fedclust_") == Some(cand_seg)
}

fn token_at(code: &[Token], i: usize) -> Option<&Token> {
    code.get(i)
}

fn text_at(code: &[Token], i: usize) -> &str {
    code.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Iterate the token indices of `item`'s body, skipping the bodies of other
/// `fn` items nested inside it.
pub(crate) fn body_indices(item: &Item, all_items: &[Item]) -> Vec<usize> {
    let Some((start, end)) = item.body else {
        return Vec::new();
    };
    let mut skips: Vec<(usize, usize)> = all_items
        .iter()
        .filter(|o| o.kind == ItemKind::Fn)
        .filter_map(|o| o.body)
        .filter(|&(s, e)| s > start && e < end)
        .collect();
    skips.sort_unstable();
    let mut out = Vec::new();
    let mut k = start.saturating_add(1);
    while k < end {
        if let Some(&(s, e)) = skips.iter().find(|&&(s, e)| s <= k && k <= e) {
            k = e.max(s).saturating_add(1);
            continue;
        }
        out.push(k);
        k += 1;
    }
    out
}

pub(crate) fn build_graph(files: &[FileAnalysis]) -> Vec<FnNode> {
    let mut nodes: Vec<FnNode> = Vec::new();
    // (file_idx, item_idx) -> node idx, and name -> node idxs for resolution.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();

    for (fi, fa) in files.iter().enumerate() {
        let mods = file_mods(&fa.rel_path);
        for (ii, item) in fa.items.iter().enumerate() {
            if item.kind != ItemKind::Fn {
                continue;
            }
            let mut path = vec![fa.crate_name.clone()];
            path.extend(mods.iter().cloned());
            path.extend(item.module.iter().cloned());
            if let Some(t) = &item.impl_type {
                path.push(t.clone());
            }
            let idx = nodes.len();
            node_of.insert((fi, ii), idx);
            nodes.push(FnNode {
                file_idx: fi,
                item_idx: ii,
                path,
                name: item.name.clone(),
                display: item.display_name(),
                file: fa.rel_path.clone(),
                crate_name: fa.crate_name.clone(),
                module: item.module.clone(),
                impl_type: item.impl_type.clone(),
                is_pub: item.is_pub,
                is_test: item.is_test,
                is_bin: fa.is_bin,
                decl_line: item.decl_line,
                calls: Vec::new(),
                sites: Vec::new(),
                panics: Vec::new(),
            });
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        by_name.entry(&node.name).or_default().push(idx);
    }
    let by_name: BTreeMap<String, Vec<usize>> = by_name
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();

    // Second pass: extract call sites and panic sites from each body.
    // (node, call sites, panic sites as (line, what)).
    type NodeEdges = (usize, Vec<CallSite>, Vec<(u32, String)>);
    let mut edges: Vec<NodeEdges> = Vec::new();
    for (fi, fa) in files.iter().enumerate() {
        for (ii, item) in fa.items.iter().enumerate() {
            let Some(&me) = node_of.get(&(fi, ii)) else {
                continue;
            };
            let (sites, panics) = scan_body(fa, item, &nodes, &by_name, me);
            edges.push((me, sites, panics));
        }
    }
    for (me, sites, panics) in edges {
        let mut calls: Vec<usize> = sites.iter().map(|s| s.callee).collect();
        calls.sort_unstable();
        calls.dedup();
        nodes[me].calls = calls;
        nodes[me].sites = sites;
        nodes[me].panics = panics;
    }
    nodes
}

/// Extract resolved call sites and unsuppressed panic sites from one body.
fn scan_body(
    fa: &FileAnalysis,
    item: &Item,
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    me: usize,
) -> (Vec<CallSite>, Vec<(u32, String)>) {
    let code = &fa.code;
    let mut sites: Vec<CallSite> = Vec::new();
    let mut panics = Vec::new();
    let site_suppressed = |line: u32| {
        fa.suppressed("no-panic-paths", line) || fa.suppressed("panic-reachability", line)
    };
    for k in body_indices(item, &fa.items) {
        let Some(t) = token_at(code, k) else {
            continue;
        };
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = text_at(code, k + 1);
        if next == "!" {
            if matches!(
                t.text.as_str(),
                "panic" | "todo" | "unimplemented" | "unreachable"
            ) && !item.is_test
                && !site_suppressed(t.line)
            {
                panics.push((t.line, format!("`{}!`", t.text)));
            }
            continue;
        }
        if next != "(" {
            continue;
        }
        let prev = if k == 0 { "" } else { text_at(code, k - 1) };
        match prev {
            "." => {
                if matches!(t.text.as_str(), "unwrap" | "expect") {
                    if !item.is_test && !site_suppressed(t.line) {
                        panics.push((t.line, format!("`.{}()`", t.text)));
                    }
                } else if k >= 2 && text_at(code, k - 2) == "self" {
                    // `self.method(…)`: resolve within the enclosing impl.
                    if let Some(impl_type) = &item.impl_type {
                        if let Some(cands) = by_name.get(&t.text) {
                            let hits: Vec<usize> = cands
                                .iter()
                                .copied()
                                .filter(|&c| {
                                    nodes[c].impl_type.as_deref() == Some(impl_type.as_str())
                                        && nodes[c].crate_name == nodes[me].crate_name
                                })
                                .collect();
                            let resolved = match hits.as_slice() {
                                [one] => Some(*one),
                                many => {
                                    let same_file: Vec<usize> = many
                                        .iter()
                                        .copied()
                                        .filter(|&c| nodes[c].file_idx == nodes[me].file_idx)
                                        .collect();
                                    match same_file.as_slice() {
                                        [one] => Some(*one),
                                        _ => None,
                                    }
                                }
                            };
                            if let Some(callee) = resolved {
                                sites.push(CallSite {
                                    tok: k,
                                    callee,
                                    method: true,
                                });
                            }
                        }
                    }
                }
            }
            "::" => {
                // Collect the qualifier segments leading into this call.
                let mut segs: Vec<String> = vec![t.text.clone()];
                let mut j = k;
                while j >= 2
                    && text_at(code, j - 1) == "::"
                    && token_at(code, j - 2).is_some_and(|p| p.kind == TokKind::Ident)
                {
                    segs.insert(0, text_at(code, j - 2).to_string());
                    j -= 2;
                }
                if let Some(callee) = resolve_path(&segs, item, nodes, by_name, me) {
                    sites.push(CallSite {
                        tok: k,
                        callee,
                        method: false,
                    });
                }
            }
            "fn" => {}
            _ => {
                if NON_CALLS.contains(&t.text.as_str()) {
                    continue;
                }
                if let Some(callee) = resolve_bare(&t.text, nodes, by_name, me) {
                    sites.push(CallSite {
                        tok: k,
                        callee,
                        method: false,
                    });
                }
            }
        }
    }
    panics.sort_unstable();
    panics.dedup();
    (sites, panics)
}

/// Resolve `a::b::f(…)`: qualifier segments must suffix-match exactly one
/// candidate's full path.
fn resolve_path(
    segs: &[String],
    item: &Item,
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    me: usize,
) -> Option<usize> {
    let (name, qual) = segs.split_last()?;
    // Normalize: drop leading `crate`/`self`/`super`, map `Self` to the
    // enclosing impl type.
    let mut prefix: Vec<String> = qual.to_vec();
    while prefix
        .first()
        .is_some_and(|s| s == "crate" || s == "self" || s == "super")
    {
        prefix.remove(0);
    }
    for s in prefix.iter_mut() {
        if s == "Self" {
            if let Some(t) = &item.impl_type {
                *s = t.clone();
            }
        }
    }
    if prefix.is_empty() {
        return resolve_bare(name, nodes, by_name, me);
    }
    let cands = by_name.get(name)?;
    let hits: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            let cp = &nodes[c].path;
            prefix.len() <= cp.len()
                && prefix
                    .iter()
                    .zip(cp.iter().skip(cp.len() - prefix.len()))
                    .all(|(p, s)| seg_eq(p, s))
        })
        .collect();
    match hits.as_slice() {
        [one] => Some(*one),
        many => {
            let same_file: Vec<usize> = many
                .iter()
                .copied()
                .filter(|&c| nodes[c].file_idx == nodes[me].file_idx)
                .collect();
            match same_file.as_slice() {
                [one] => Some(*one),
                _ => None,
            }
        }
    }
}

/// Resolve a bare `f(…)` to a unique free function, same module first.
fn resolve_bare(
    name: &str,
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    me: usize,
) -> Option<usize> {
    let cands = by_name.get(name)?;
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| nodes[c].impl_type.is_none())
        .collect();
    let local: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| nodes[c].file_idx == nodes[me].file_idx && nodes[c].module == nodes[me].module)
        .collect();
    if let [one] = local.as_slice() {
        return Some(*one);
    }
    if !local.is_empty() {
        return None;
    }
    let in_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| nodes[c].crate_name == nodes[me].crate_name)
        .collect();
    if let [one] = in_crate.as_slice() {
        return Some(*one);
    }
    if !in_crate.is_empty() {
        return None;
    }
    match free.as_slice() {
        [one] => Some(*one),
        _ => None,
    }
}

/// `panic-reachability`: BFS from every public library fn; report the
/// shortest chain to a function containing an unsuppressed panic site.
fn panic_reachability(nodes: &[FnNode], out: &mut Vec<Finding>) {
    for (root, node) in nodes.iter().enumerate() {
        if !node.is_pub
            || node.is_test
            || node.is_bin
            || !PANIC_REACH_CRATES.contains(&node.crate_name.as_str())
        {
            continue;
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        parent.insert(root, root);
        queue.push_back(root);
        let mut hit: Option<usize> = None;
        while let Some(n) = queue.pop_front() {
            // The root's own sites belong to `no-panic-paths`; a chain needs
            // at least one call edge.
            if n != root && !nodes[n].panics.is_empty() {
                hit = Some(n);
                break;
            }
            for &c in &nodes[n].calls {
                parent.entry(c).or_insert_with(|| {
                    queue.push_back(c);
                    n
                });
            }
        }
        let Some(target) = hit else {
            continue;
        };
        let mut chain = vec![target];
        let mut cur = target;
        while cur != root {
            cur = parent[&cur];
            chain.push(cur);
        }
        chain.reverse();
        let names: Vec<&str> = chain.iter().map(|&n| nodes[n].display.as_str()).collect();
        let (line, what) = &nodes[target].panics[0];
        out.push(Finding {
            file: node.file.clone(),
            line: node.decl_line,
            rule: "panic-reachability",
            message: format!(
                "`pub fn {}` can transitively panic via {}: {} at {}:{}; return a Result, make \
                 the callee infallible, or pragma the panic site to stop propagation",
                node.display,
                names.join(" -> "),
                what,
                nodes[target].file,
                line
            ),
        });
    }
}

/// `rng-stream-collision` (a): two distinct `streams::` constants sharing a
/// value anywhere in the workspace.
fn stream_collisions(files: &[FileAnalysis], out: &mut Vec<Finding>) {
    struct ConstDef {
        file: String,
        line: u32,
        name: String,
    }
    let mut by_value: BTreeMap<u128, Vec<ConstDef>> = BTreeMap::new();
    for fa in files {
        for item in &fa.items {
            if item.kind != ItemKind::Mod || item.name != "streams" {
                continue;
            }
            let idxs = body_indices(item, &fa.items);
            let mut p = 0usize;
            while p < idxs.len() {
                let k = idxs[p];
                if text_at(&fa.code, k) != "const" {
                    p += 1;
                    continue;
                }
                let name_tok = token_at(&fa.code, k + 1);
                let Some(name_tok) = name_tok.filter(|t| t.kind == TokKind::Ident) else {
                    p += 1;
                    continue;
                };
                // Scan `NAME : type = <int> ;` for the value.
                let mut q = p + 2;
                let mut value = None;
                while q < idxs.len() {
                    let j = idxs[q];
                    let tok = token_at(&fa.code, j);
                    match tok.map(|t| t.text.as_str()).unwrap_or("") {
                        ";" => break,
                        "=" => {
                            if let Some(v) =
                                token_at(&fa.code, idxs.get(q + 1).copied().unwrap_or(j))
                                    .filter(|t| t.kind == TokKind::Int)
                            {
                                value = parse_int(&v.text);
                            }
                            break;
                        }
                        _ => q += 1,
                    }
                }
                if let Some(v) = value {
                    by_value.entry(v).or_default().push(ConstDef {
                        file: fa.rel_path.clone(),
                        line: name_tok.line,
                        name: name_tok.text.clone(),
                    });
                }
                p += 1;
            }
        }
    }
    for (value, defs) in &by_value {
        let Some((first, rest)) = defs.split_first() else {
            continue;
        };
        for d in rest {
            out.push(Finding {
                file: d.file.clone(),
                line: d.line,
                rule: "rng-stream-collision",
                message: format!(
                    "`streams::{}` has value {}, colliding with `streams::{}` ({}:{}); stream \
                     labels must be unique or derived RNG streams overlap",
                    d.name, value, first.name, first.file, first.line
                ),
            });
        }
    }
}

/// Parse an integer literal's text (decimal / hex / octal / binary, with
/// `_` separators and a type suffix).
fn parse_int(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    u128::from_str_radix(digits.get(..end).unwrap_or(""), radix).ok()
}

/// `rng-stream-collision` (b): within one function in `fl`/`core` library
/// code, two `derive(…, &[…])` calls consuming a token-identical stream
/// slice — the same logical stream in the same `(round, client)` scope.
fn duplicate_derives(files: &[FileAnalysis], out: &mut Vec<Finding>) {
    for fa in files {
        if fa.is_bin || !RNG_SCOPE_CRATES.contains(&fa.crate_name.as_str()) {
            continue;
        }
        for item in &fa.items {
            if item.kind != ItemKind::Fn || item.is_test {
                continue;
            }
            let mut seen: BTreeMap<String, u32> = BTreeMap::new();
            let idxs = body_indices(item, &fa.items);
            for (p, &k) in idxs.iter().enumerate() {
                let Some(t) = token_at(&fa.code, k) else {
                    continue;
                };
                if t.kind != TokKind::Ident || t.text != "derive" || text_at(&fa.code, k + 1) != "("
                {
                    continue;
                }
                // `#[derive(…)]` attributes are not calls.
                if k >= 2 && text_at(&fa.code, k - 1) == "[" && text_at(&fa.code, k - 2) == "#" {
                    continue;
                }
                let Some(sig) = derive_signature(&fa.code, &idxs[p..]) else {
                    continue;
                };
                match seen.get(&sig) {
                    Some(&first) => out.push(Finding {
                        file: fa.rel_path.clone(),
                        line: t.line,
                        rule: "rng-stream-collision",
                        message: format!(
                            "`derive` re-consumes stream `[{}]` first consumed at line {} in \
                             `{}`; one logical stream per (round, client) scope — derive a \
                             distinct stream or pragma with justification",
                            sig,
                            first,
                            item.display_name()
                        ),
                    }),
                    None => {
                        seen.insert(sig, t.line);
                    }
                }
            }
        }
    }
}

/// Token-text signature of the first `&[…]` slice inside a `derive(…)`
/// call; `idxs` starts at the `derive` token and stays within the body.
fn derive_signature(code: &[Token], idxs: &[usize]) -> Option<String> {
    let mut paren = 0i64;
    let mut p = 1usize; // past `derive`
    while p < idxs.len() {
        let k = idxs[p];
        match text_at(code, k) {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren <= 0 {
                    return None;
                }
            }
            "&" if paren >= 1 && text_at(code, k + 1) == "[" => {
                let mut depth = 0i64;
                let mut parts = Vec::new();
                let mut q = p + 1;
                while q < idxs.len() {
                    let j = idxs[q];
                    match text_at(code, j) {
                        "[" => {
                            depth += 1;
                            if depth > 1 {
                                parts.push("[".to_string());
                            }
                        }
                        "]" => {
                            depth -= 1;
                            if depth <= 0 {
                                return Some(parts.join(" "));
                            }
                            parts.push("]".to_string());
                        }
                        other => parts.push(other.to_string()),
                    }
                    q += 1;
                }
                return None;
            }
            _ => {}
        }
        p += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_mods_shapes() {
        assert!(file_mods("crates/fl/src/lib.rs").is_empty());
        assert_eq!(file_mods("crates/fl/src/engine.rs"), vec!["engine"]);
        assert_eq!(
            file_mods("crates/fl/src/methods/ifca.rs"),
            vec!["methods", "ifca"]
        );
        assert_eq!(file_mods("crates/fl/src/methods/mod.rs"), vec!["methods"]);
    }

    #[test]
    fn int_literal_parsing() {
        assert_eq!(parse_int("10"), Some(10));
        assert_eq!(parse_int("1_000"), Some(1000));
        assert_eq!(parse_int("0xFFu64"), Some(255));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("7u64"), Some(7));
        assert_eq!(parse_int("xyz"), None);
    }

    #[test]
    fn seg_eq_accepts_crate_alias() {
        assert!(seg_eq("tensor", "tensor"));
        assert!(seg_eq("fedclust_tensor", "tensor"));
        assert!(!seg_eq("fedclust_tensor", "nn"));
    }
}
