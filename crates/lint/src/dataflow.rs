//! Per-function dataflow for `fedlint`: def-use chains over locals, an
//! interprocedural taint engine, and the thread-pool concurrency checks.
//!
//! The engine recovers, for every `fn` body, its parameter names, its `let`
//! bindings and plain reassignments (each with the token range of its
//! right-hand side), and its `return`/trailing expressions ([`fn_flows`]).
//! On top of that, [`taint_findings`] runs a flow-insensitive-per-pass,
//! interprocedurally-propagated taint analysis: a [`TaintSpec`] names the
//! source calls whose results (or `&mut` buffer arguments) are tainted, the
//! sanitizer calls that launder a binding, and the sink shapes that turn a
//! tainted use into a [`Finding`]. Taint crosses function boundaries along
//! the [`crate::callgraph`] edges — tainted argument to parameter, tainted
//! return to call-site — and every finding's message carries the full
//! source → variable → call chain.
//!
//! Precision philosophy (same as the call graph): **ambiguity drops taint**.
//! Bindings from `for`/`match` patterns, struct-field writes, receivers the
//! call graph cannot resolve, and anything else the extractor does not
//! understand simply stop propagation — the rules under-report rather than
//! invent findings. The lattice is monotone: taint is only ever added within
//! a fixpoint pass, so adding a source can add findings but never remove one
//! (pinned by a property test).
//!
//! Robustness contract: like the lexer and item parser, everything here is
//! total — arbitrary token soup must never panic or hang (every range is
//! bounds-clamped, every loop advances, fixpoints are iteration-capped).

use crate::items::{Item, ItemKind};
use crate::lexer::{TokKind, Token};
use crate::rules::FileAnalysis;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Interprocedural fixpoint passes; taint deeper than this many call hops
/// is dropped (ambiguity policy, and a termination backstop).
const MAX_PASSES: usize = 10;
/// Provenance hops kept per chain before the message stops growing.
const MAX_CHAIN_HOPS: usize = 12;
/// Longest right-hand side an extractor will scan before cutting the range.
const MAX_EXPR_TOKENS: usize = 2000;

// ---------------------------------------------------------------------------
// Def-use extraction
// ---------------------------------------------------------------------------

/// One binding site of a local: a `let` name or a plain reassignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    /// The bound name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// `[start, end)` token-index range of the right-hand side, into the
    /// file's comment-free token stream.
    pub rhs: (usize, usize),
}

/// One declared parameter name. `position` is the zero-based argument
/// segment (the receiver, if any, is segment 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The parameter name.
    pub name: String,
    /// Zero-based position in the parameter list.
    pub position: usize,
}

/// The def-use structure of one `fn` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFlow {
    /// Index of the owning item in the file's `items` vec.
    pub item_idx: usize,
    /// First parameter segment is a `self` receiver.
    pub has_receiver: bool,
    /// Declared parameter names.
    pub params: Vec<Param>,
    /// `let` bindings and reassignments, in token order.
    pub defs: Vec<Def>,
    /// Token ranges of `return` expressions plus the trailing expression.
    pub rets: Vec<(usize, usize)>,
}

/// Identifier shapes that can name a local: lowercase/underscore start,
/// not a keyword that appears inside patterns or parameter lists.
fn is_local_name(name: &str) -> bool {
    let starts_lower = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
    starts_lower
        && name != "_"
        && !matches!(
            name,
            "box" | "const" | "dyn" | "impl" | "mut" | "ref" | "self" | "fn"
        )
}

fn text_at(code: &[Token], i: usize) -> &str {
    code.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Scan an expression starting at `from`: the range ends at the first `;`
/// or top-level `else` at the starting delimiter depth, at a delimiter that
/// closes past the start, or (for `if let`/`while let` scrutinees) at a `{`
/// at the starting depth. Always returns `from <= end <= limit`.
fn expr_range(code: &[Token], from: usize, limit: usize, stop_at_brace: bool) -> (usize, usize) {
    let limit = limit.min(code.len());
    let mut depth = 0i64;
    let mut j = from;
    while j < limit && j - from < MAX_EXPR_TOKENS {
        match text_at(code, j) {
            "(" | "[" => depth += 1,
            "{" => {
                if depth == 0 && stop_at_brace {
                    return (from, j);
                }
                depth += 1;
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return (from, j);
                }
            }
            ";" if depth == 0 => return (from, j),
            "else" if depth == 0 => return (from, j),
            _ => {}
        }
        j += 1;
    }
    (from, j)
}

/// Parse the parameter list of the `fn` whose keyword sits at `fn_tok`.
fn parse_params(code: &[Token], fn_tok: usize, body_start: usize) -> (bool, Vec<Param>) {
    let mut k = fn_tok + 2; // past `fn name`
    if text_at(code, k) == "<" {
        // Skip the generics. Inside a header, `<`/`>` are only generic
        // delimiters; shift operators cannot appear.
        let mut angle = 0i64;
        while k < body_start.min(code.len()) {
            match text_at(code, k) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            k += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    if text_at(code, k) != "(" {
        return (false, Vec::new());
    }
    let (mut paren, mut angle, mut bracket) = (0i64, 0i64, 0i64);
    let mut params = Vec::new();
    let mut position = 0usize;
    let mut in_pattern = true;
    let mut has_receiver = false;
    while k < body_start.min(code.len()) {
        let t = &code[k];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            ":" if paren == 1 && angle == 0 && bracket == 0 => in_pattern = false,
            "," if paren == 1 && angle == 0 && bracket == 0 => {
                position += 1;
                in_pattern = true;
            }
            _ => {
                if in_pattern && paren >= 1 && angle == 0 && t.kind == TokKind::Ident {
                    if t.text == "self" && position == 0 {
                        has_receiver = true;
                    } else if is_local_name(&t.text) {
                        params.push(Param {
                            name: t.text.clone(),
                            position,
                        });
                    }
                }
            }
        }
        k += 1;
    }
    (has_receiver, params)
}

/// Recover the def-use structure of every `fn` item with a body. Total and
/// deterministic on arbitrary token soup; unmatched items are skipped.
pub fn fn_flows(code: &[Token], items: &[Item]) -> Vec<FnFlow> {
    let mut flows = Vec::new();
    let mut cursor = 0usize;
    for (item_idx, item) in items.iter().enumerate() {
        if item.kind != ItemKind::Fn {
            continue;
        }
        let Some((start, raw_end)) = item.body else {
            continue;
        };
        let end = raw_end.min(code.len());
        if start >= end {
            continue;
        }
        // Locate this item's `fn` keyword: the last `fn <name>` pair at or
        // after a monotone cursor and before the body opens (items come in
        // declaration order, so the cursor never has to back up).
        let mut fn_tok = None;
        let mut k = cursor;
        while k < start && k + 1 < code.len() {
            if code[k].kind == TokKind::Ident
                && code[k].text == "fn"
                && code[k + 1].kind == TokKind::Ident
                && code[k + 1].text == item.name
            {
                fn_tok = Some(k);
            }
            k += 1;
        }
        let Some(fn_tok) = fn_tok else { continue };
        cursor = fn_tok + 1;
        let (has_receiver, params) = parse_params(code, fn_tok, start);
        let (mut defs, mut rets) = collect_defs(code, start, end);
        normalize_spans(&mut defs, &mut rets);
        flows.push(FnFlow {
            item_idx,
            has_receiver,
            params,
            defs,
            rets,
        });
    }
    flows
}

/// Clamp partially overlapping spans so every pair nests or stays
/// disjoint. Well-formed code never crosses — block initializers nest and
/// `;` separates siblings — but half-written sources can make an `if let`
/// scrutinee (which stops at `{`) and a plain `let` rhs (which scans
/// through the brace group) claim crossing ranges, and the taint walk
/// relies on proper nesting. Truncating the later-starting span of a
/// crossing pair only ever shrinks ranges, so taint is dropped, never
/// invented.
fn normalize_spans(defs: &mut [Def], rets: &mut [(usize, usize)]) {
    let mut all: Vec<(usize, usize)> = defs
        .iter()
        .map(|d| d.rhs)
        .chain(rets.iter().copied())
        .collect();
    // Fixpoint: every truncation strictly lowers one span end while keeping
    // the span non-empty (the crossing condition has b0 < a1), so the sum
    // of ends strictly decreases and the loop terminates.
    loop {
        let mut changed = false;
        for i in 0..all.len() {
            for j in 0..all.len() {
                let (a0, a1) = all[i];
                let (b0, b1) = all[j];
                if a0 <= b0 && b0 < a1 && a1 < b1 {
                    all[j].1 = a1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (d, s) in defs.iter_mut().zip(&all) {
        d.rhs = *s;
    }
    for (r, s) in rets.iter_mut().zip(all.iter().skip(defs.len())) {
        *r = *s;
    }
}

/// Walk a body span collecting `let` defs, reassignments, and return ranges.
fn collect_defs(code: &[Token], start: usize, end: usize) -> (Vec<Def>, Vec<(usize, usize)>) {
    let mut defs = Vec::new();
    let mut rets = Vec::new();
    let mut depth = 1i64;
    let mut tail_start = start + 1;
    let mut k = start + 1;
    while k < end {
        let t = &code[k];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth == 1 => tail_start = k + 1,
            "let" if t.kind == TokKind::Ident => {
                parse_let(code, k, end, &mut defs);
            }
            "return" if t.kind == TokKind::Ident => {
                let r = expr_range(code, k + 1, end, false);
                if r.0 < r.1 {
                    rets.push(r);
                }
            }
            _ => {
                // Plain or compound reassignment at statement start.
                let is_assign_op = code.get(k + 1).is_some_and(|n| {
                    n.kind == TokKind::Op
                        && matches!(
                            n.text.as_str(),
                            "=" | "+="
                                | "-="
                                | "*="
                                | "/="
                                | "%="
                                | "&="
                                | "|="
                                | "^="
                                | "<<="
                                | ">>="
                        )
                });
                let stmt_start =
                    k == start + 1 || matches!(text_at(code, k.wrapping_sub(1)), ";" | "{" | "}");
                if t.kind == TokKind::Ident && is_local_name(&t.text) && is_assign_op && stmt_start
                {
                    let rhs = expr_range(code, k + 2, end, false);
                    if rhs.0 < rhs.1 {
                        defs.push(Def {
                            name: t.text.clone(),
                            line: t.line,
                            rhs,
                        });
                    }
                }
            }
        }
        k += 1;
    }
    if tail_start < end {
        rets.push((tail_start, end));
    }
    (defs, rets)
}

/// Parse one `let` statement starting at the `let` token: collect the
/// pattern's binding names, then the `=`-to-terminator right-hand side.
fn parse_let(code: &[Token], let_tok: usize, end: usize, defs: &mut Vec<Def>) {
    let is_cond = let_tok > 0 && matches!(text_at(code, let_tok - 1), "if" | "while");
    let mut names: Vec<(String, u32)> = Vec::new();
    let mut depth = 0i64;
    let mut in_type = false;
    let mut j = let_tok + 1;
    let mut eq = None;
    while j < end.min(code.len()) && j - let_tok < 128 {
        let t = &code[j];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return;
                }
            }
            ":" if depth == 0 => in_type = true,
            "=" if depth == 0 && t.kind == TokKind::Op => {
                eq = Some(j);
                break;
            }
            ";" if depth == 0 => return, // `let x;` — no initializer
            _ => {
                if !in_type && t.kind == TokKind::Ident && is_local_name(&t.text) {
                    names.push((t.text.clone(), t.line));
                }
            }
        }
        j += 1;
    }
    let Some(eq) = eq else { return };
    let rhs = expr_range(code, eq + 1, end, is_cond);
    if rhs.0 >= rhs.1 {
        return;
    }
    for (name, line) in names {
        defs.push(Def { name, line, rhs });
    }
}

// ---------------------------------------------------------------------------
// Taint engine
// ---------------------------------------------------------------------------

/// Provenance of a tainted value: where it came from, and the chain of
/// variables / calls it flowed through (capped at [`MAX_CHAIN_HOPS`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Chain {
    origin: String,
    hops: Vec<String>,
}

impl Chain {
    fn new(origin: String) -> Self {
        Chain {
            origin,
            hops: Vec::new(),
        }
    }

    fn hop(&self, h: String) -> Self {
        let mut c = self.clone();
        if c.hops.last() != Some(&h) && c.hops.len() < MAX_CHAIN_HOPS {
            c.hops.push(h);
        }
        c
    }

    /// Render the full source → … chain for a finding message.
    pub fn describe(&self) -> String {
        if self.hops.is_empty() {
            self.origin.clone()
        } else {
            format!("{} -> {}", self.origin, self.hops.join(" -> "))
        }
    }
}

/// Which sink shapes a taint rule reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkSet {
    /// Bare `+`/`-`/`*`, slice indexing, and capacity allocation on
    /// tainted values (`untrusted-input-taint`).
    UntrustedLength,
    /// Replayed-state constructors and seed/wire/meter calls
    /// (`determinism-taint`).
    Determinism,
}

/// A taint rule: sources, sanitizers, and sinks. The spec is data so the
/// monotonicity property test can vary the source set.
#[derive(Debug, Clone)]
pub struct TaintSpec {
    /// The rule name findings are reported under.
    pub rule: &'static str,
    /// `(qualifier, name)` call patterns whose *result* is tainted; an
    /// empty qualifier matches the name in any call position.
    pub source_calls: Vec<(&'static str, &'static str)>,
    /// Reader-style methods whose `&mut` buffer argument becomes tainted.
    pub source_mut_args: Vec<&'static str>,
    /// Treat `<…ptr…> as usize` casts as sources.
    pub ptr_cast_source: bool,
    /// Treat `thread::current().id()` as a source.
    pub thread_id_source: bool,
    /// Calls that launder taint out of an expression (bounds-checking,
    /// checked/saturating arithmetic, fallible conversion).
    pub sanitizers: Vec<&'static str>,
    /// The sink shapes to report.
    pub sinks: SinkSet,
}

/// The `untrusted-input-taint` rule: bytes from disk (and future socket
/// reads) are hostile; lengths derived from them must be checked before
/// arithmetic, indexing, or allocation.
pub fn untrusted_input_spec() -> TaintSpec {
    TaintSpec {
        rule: "untrusted-input-taint",
        source_calls: vec![("fs", "read"), ("fs", "read_to_string")],
        source_mut_args: vec![
            "peek",
            "read",
            "read_exact",
            "read_to_end",
            "read_to_string",
            "recv",
            "recv_from",
        ],
        ptr_cast_source: false,
        thread_id_source: false,
        sanitizers: vec![
            "checked_add",
            "checked_div",
            "checked_mul",
            "checked_rem",
            "checked_sub",
            "clamp",
            "count",
            "get",
            "len",
            "min",
            "position",
            "saturating_add",
            "saturating_mul",
            "saturating_sub",
            "try_from",
            "try_into",
        ],
        sinks: SinkSet::UntrustedLength,
    }
}

/// The `determinism-taint` rule: wall-clock, parallelism, thread identity,
/// and address-derived values must never reach replayed state. There are no
/// sanitizers — nondeterminism cannot be laundered, only kept away from the
/// sinks (telemetry types are simply not sinks; that is the allowlist).
pub fn determinism_spec() -> TaintSpec {
    TaintSpec {
        rule: "determinism-taint",
        source_calls: vec![
            ("Instant", "now"),
            ("SystemTime", "now"),
            ("", "available_parallelism"),
            ("", "current_num_threads"),
        ],
        source_mut_args: vec![],
        ptr_cast_source: true,
        thread_id_source: true,
        sanitizers: vec![],
        sinks: SinkSet::Determinism,
    }
}

/// Replayed-state type names whose construction is a determinism sink.
const DET_SINK_TYPES: [&str; 4] = ["Checkpoint", "CommMeter", "MethodState", "RunResult"];
/// Call names that write into replayed state, derive RNG streams, or charge
/// the communication meter.
const DET_SINK_CALLS: [&str; 8] = [
    "derive",
    "down",
    "down_wire",
    "encode",
    "from_bytes",
    "seed_from_u64",
    "up",
    "up_wire",
];
/// Tokens before `Type {` that mean "type position", not a struct literal.
const NOT_A_LITERAL: [&str; 11] = [
    "->", ":", "&", "<", "as", "dyn", "enum", "for", "impl", "struct", "trait",
];

/// Per-function taint state during the interprocedural fixpoint.
#[derive(Default, Clone)]
struct NodeTaint {
    vars: BTreeMap<String, Chain>,
    param_in: BTreeMap<usize, Chain>,
    ret: Option<Chain>,
}

/// Run one taint rule over the whole workspace and return its findings
/// (unsorted, not pragma-filtered — the caller applies suppression).
pub fn taint_findings(files: &[FileAnalysis], spec: &TaintSpec) -> Vec<Finding> {
    let nodes = crate::callgraph::build_graph(files);
    let file_flows: Vec<Vec<FnFlow>> = files
        .iter()
        .map(|fa| fn_flows(&fa.code, &fa.items))
        .collect();
    // node index -> flow, via (file_idx, item_idx).
    let mut flow_of: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut by_item: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (fi, flows) in file_flows.iter().enumerate() {
        for (xi, fl) in flows.iter().enumerate() {
            by_item.insert((fi, fl.item_idx), xi);
        }
    }
    for (ni, node) in nodes.iter().enumerate() {
        flow_of[ni] = by_item.get(&(node.file_idx, node.item_idx)).copied();
    }

    let mut st: Vec<NodeTaint> = vec![NodeTaint::default(); nodes.len()];
    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        let mut pending: Vec<(usize, usize, Chain)> = Vec::new();
        for ni in 0..nodes.len() {
            let Some(xi) = flow_of[ni] else { continue };
            let node = &nodes[ni];
            let fa = &files[node.file_idx];
            let flow = &file_flows[node.file_idx][xi];

            // Seed: tainted parameters and direct `&mut` buffer sources.
            let mut vars: BTreeMap<String, Chain> = BTreeMap::new();
            for p in &flow.params {
                if let Some(c) = st[ni].param_in.get(&p.position) {
                    vars.insert(p.name.clone(), c.hop(format!("`{}`", p.name)));
                }
            }
            if let Some((start, end)) = fa.items.get(node.item_idx).and_then(|it| it.body) {
                seed_mut_arg_sources(fa, start, end, spec, &mut vars);
            }

            // Intra-function fixpoint over the def list.
            for _round in 0..flow.defs.len() + 1 {
                let mut grew = false;
                for d in &flow.defs {
                    if vars.contains_key(&d.name) {
                        continue;
                    }
                    if let Some(c) = expr_taint(fa, d.rhs, &vars, spec, &nodes, &st, ni) {
                        vars.insert(d.name.clone(), c.hop(format!("`{}`", d.name)));
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }

            // Return taint.
            let ret = flow
                .rets
                .iter()
                .find_map(|&r| expr_taint(fa, r, &vars, spec, &nodes, &st, ni));
            if st[ni].ret.is_none() {
                if let Some(rc) = ret {
                    st[ni].ret = Some(rc);
                    changed = true;
                }
            }

            // Argument -> parameter propagation along resolved call sites.
            for site in &node.sites {
                let Some(cxi) = flow_of[site.callee] else {
                    continue;
                };
                let callee_flow = &file_flows[nodes[site.callee].file_idx][cxi];
                let offset = usize::from(site.method && callee_flow.has_receiver);
                for (pos, range) in arg_ranges(&fa.code, site.tok) {
                    let target = pos + offset;
                    if st[site.callee].param_in.contains_key(&target) {
                        continue;
                    }
                    if let Some(c) = expr_taint(fa, range, &vars, spec, &nodes, &st, ni) {
                        pending.push((
                            site.callee,
                            target,
                            c.hop(format!("arg #{target} of `{}`", nodes[site.callee].display)),
                        ));
                    }
                }
            }

            st[ni].vars = vars;
        }
        for (callee, pos, chain) in pending {
            if let std::collections::btree_map::Entry::Vacant(e) = st[callee].param_in.entry(pos) {
                e.insert(chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Sink pass.
    let mut out = Vec::new();
    for (ni, node) in nodes.iter().enumerate() {
        if node.is_test || st[ni].vars.is_empty() {
            continue;
        }
        let fa = &files[node.file_idx];
        let Some(item) = fa.items.get(node.item_idx) else {
            continue;
        };
        let idxs = crate::callgraph::body_indices(item, &fa.items);
        match spec.sinks {
            SinkSet::UntrustedLength => {
                sink_untrusted(fa, &idxs, &st[ni].vars, spec, &mut out);
            }
            SinkSet::Determinism => {
                sink_determinism(fa, &idxs, &st[ni].vars, spec, &mut out);
            }
        }
    }
    out
}

/// Taint `&mut` buffer arguments of reader calls: `f.read_to_end(&mut buf)`
/// taints `buf` directly.
fn seed_mut_arg_sources(
    fa: &FileAnalysis,
    start: usize,
    end: usize,
    spec: &TaintSpec,
    vars: &mut BTreeMap<String, Chain>,
) {
    let code = &fa.code;
    for k in start + 1..end.min(code.len()) {
        let t = &code[k];
        if t.kind != TokKind::Ident
            || !spec.source_mut_args.contains(&t.text.as_str())
            || text_at(code, k.wrapping_sub(1)) != "."
            || text_at(code, k + 1) != "("
        {
            continue;
        }
        let mut depth = 0i64;
        let mut j = k + 1;
        while j < code.len() && j - k < 64 {
            match text_at(code, j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "&" if text_at(code, j + 1) == "mut" => {
                    if let Some(arg) = code.get(j + 2).filter(|a| {
                        a.kind == TokKind::Ident
                            && is_local_name(&a.text)
                            && text_at(code, j + 3) != "."
                    }) {
                        vars.entry(arg.text.clone()).or_insert_with(|| {
                            Chain::new(format!(
                                "`{}(&mut {})` at {}:{}",
                                t.text, arg.text, fa.rel_path, t.line
                            ))
                            .hop(format!("`{}`", arg.text))
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Split the argument list of the call whose name token is at `name_tok`
/// into `(position, token range)` pairs; commas only split at depth 1.
fn arg_ranges(code: &[Token], name_tok: usize) -> Vec<(usize, (usize, usize))> {
    let open = name_tok + 1;
    if text_at(code, open) != "(" {
        return Vec::new();
    }
    let close = matching_close(code, open);
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut pos = 0usize;
    let mut seg_start = open + 1;
    for k in open..close.min(code.len()) {
        match text_at(code, k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 1 => {
                if seg_start < k {
                    out.push((pos, (seg_start, k)));
                }
                pos += 1;
                seg_start = k + 1;
            }
            _ => {}
        }
    }
    if seg_start < close {
        out.push((pos, (seg_start, close)));
    }
    out
}

/// Is the ident at `k` a *use* of a local (not a field, method, path
/// segment, or struct-literal field name)?
fn is_local_use(code: &[Token], k: usize) -> bool {
    let prev = if k == 0 { "" } else { text_at(code, k - 1) };
    let next = text_at(code, k + 1);
    prev != "." && prev != "::" && next != ":" && next != "::" && next != "!"
}

/// Evaluate the taint of an expression range: `Some(chain)` if it contains
/// a tainted local use, a source call, or a call whose return is tainted —
/// unless a sanitizer call in the range launders the whole expression.
fn expr_taint(
    fa: &FileAnalysis,
    range: (usize, usize),
    vars: &BTreeMap<String, Chain>,
    spec: &TaintSpec,
    nodes: &[crate::callgraph::FnNode],
    st: &[NodeTaint],
    me: usize,
) -> Option<Chain> {
    let code = &fa.code;
    let (a, b) = (range.0, range.1.min(code.len()));
    if a >= b {
        return None;
    }
    for k in a..b {
        let t = &code[k];
        if t.kind == TokKind::Ident
            && spec.sanitizers.contains(&t.text.as_str())
            && text_at(code, k + 1) == "("
        {
            return None;
        }
    }
    let mut best: Option<(usize, Chain)> = None;
    let consider = |k: usize, c: Chain, best: &mut Option<(usize, Chain)>| {
        if best.as_ref().is_none_or(|(bk, _)| k < *bk) {
            *best = Some((k, c));
        }
    };
    for k in a..b {
        let t = &code[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some(c) = vars.get(&t.text) {
            if is_local_use(code, k) {
                consider(k, c.clone(), &mut best);
            }
        }
        if text_at(code, k + 1) == "(" {
            if let Some(origin) = source_call_origin(fa, k, spec) {
                consider(k, Chain::new(origin), &mut best);
            }
        }
        if spec.ptr_cast_source && t.text == "as" && text_at(code, k + 1) == "usize" {
            let window = code[k.saturating_sub(5)..k].iter();
            if window
                .filter(|w| w.kind == TokKind::Ident)
                .any(|w| w.text.contains("ptr"))
            {
                consider(
                    k,
                    Chain::new(format!(
                        "pointer-to-usize cast at {}:{}",
                        fa.rel_path, t.line
                    )),
                    &mut best,
                );
            }
        }
    }
    for site in &nodes[me].sites {
        if site.tok < a || site.tok >= b {
            continue;
        }
        if let Some(rc) = &st[site.callee].ret {
            consider(
                site.tok,
                rc.hop(format!("`{}()`", nodes[site.callee].display)),
                &mut best,
            );
        }
    }
    best.map(|(_, c)| c)
}

/// Does the call at token `k` match one of the spec's source patterns?
fn source_call_origin(fa: &FileAnalysis, k: usize, spec: &TaintSpec) -> Option<String> {
    let code = &fa.code;
    let t = &code[k];
    let prev = if k == 0 { "" } else { text_at(code, k - 1) };
    for (qual, name) in &spec.source_calls {
        if t.text != *name {
            continue;
        }
        if qual.is_empty() {
            return Some(format!("`{}()` at {}:{}", name, fa.rel_path, t.line));
        }
        if prev == "::" && k >= 2 && text_at(code, k - 2) == *qual {
            return Some(format!(
                "`{}::{}()` at {}:{}",
                qual, name, fa.rel_path, t.line
            ));
        }
    }
    if spec.thread_id_source && t.text == "id" && prev == "." {
        let window = code[k.saturating_sub(8)..k].iter();
        if window
            .filter(|w| w.kind == TokKind::Ident)
            .any(|w| w.text == "current" || w.text == "Thread")
        {
            return Some(format!(
                "`thread::current().id()` at {}:{}",
                fa.rel_path, t.line
            ));
        }
    }
    None
}

/// Find the matching close delimiter for the open delimiter at `open`.
pub(crate) fn matching_close(code: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < code.len() && j - open < MAX_EXPR_TOKENS {
        match text_at(code, j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth <= 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j.min(code.len())
}

/// First tainted local use inside `[a, b)`, honoring the sanitizer launder.
fn group_taint<'a>(
    code: &[Token],
    a: usize,
    b: usize,
    vars: &'a BTreeMap<String, Chain>,
    spec: &TaintSpec,
) -> Option<(&'a str, &'a Chain)> {
    let b = b.min(code.len());
    for k in a..b {
        let t = &code[k];
        if t.kind == TokKind::Ident
            && spec.sanitizers.contains(&t.text.as_str())
            && text_at(code, k + 1) == "("
        {
            return None;
        }
    }
    for k in a..b {
        let t = &code[k];
        if t.kind != TokKind::Ident || !is_local_use(code, k) {
            continue;
        }
        if let Some((name, c)) = vars.get_key_value(&t.text) {
            return Some((name.as_str(), c));
        }
    }
    None
}

/// `untrusted-input-taint` sinks: bare arithmetic, indexing, and capacity
/// allocation on tainted values.
fn sink_untrusted(
    fa: &FileAnalysis,
    idxs: &[usize],
    vars: &BTreeMap<String, Chain>,
    spec: &TaintSpec,
    out: &mut Vec<Finding>,
) {
    let code = &fa.code;
    for &k in idxs {
        let Some(t) = code.get(k) else { continue };
        if t.kind == TokKind::Op && matches!(t.text.as_str(), "+" | "-" | "*") {
            let binary = k.checked_sub(1).and_then(|p| code.get(p)).is_some_and(|p| {
                matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                    || p.text == ")"
                    || p.text == "]"
            });
            if !binary {
                continue;
            }
            let operand = [k.wrapping_sub(1), k + 1]
                .into_iter()
                .filter_map(|i| code.get(i).map(|w| (i, w)))
                .find(|(i, w)| {
                    w.kind == TokKind::Ident && vars.contains_key(&w.text) && is_local_use(code, *i)
                });
            if let Some((_, w)) = operand {
                let chain = &vars[&w.text];
                out.push(Finding {
                    file: fa.rel_path.clone(),
                    line: t.line,
                    rule: spec.rule,
                    message: format!(
                        "unchecked `{}` on tainted value `{}` (tainted by {}); route \
                         input-derived lengths through checked_*/saturating_* arithmetic",
                        t.text,
                        w.text,
                        chain.describe()
                    ),
                });
            }
        } else if t.kind == TokKind::Ident && text_at(code, k + 1) == "[" {
            let close = matching_close(code, k + 1);
            if let Some((name, chain)) = group_taint(code, k + 2, close, vars, spec) {
                out.push(Finding {
                    file: fa.rel_path.clone(),
                    line: t.line,
                    rule: spec.rule,
                    message: format!(
                        "slice index derived from tainted value `{}` (tainted by {}); use \
                         `.get(…)` and propagate a decode error instead of panicking",
                        name,
                        chain.describe()
                    ),
                });
            }
        } else if t.kind == TokKind::Ident
            && t.text == "with_capacity"
            && text_at(code, k + 1) == "("
        {
            let close = matching_close(code, k + 1);
            if let Some((name, chain)) = group_taint(code, k + 2, close, vars, spec) {
                out.push(Finding {
                    file: fa.rel_path.clone(),
                    line: t.line,
                    rule: spec.rule,
                    message: format!(
                        "`with_capacity` sized by tainted value `{}` (tainted by {}); clamp or \
                         validate the length before allocating for hostile input",
                        name,
                        chain.describe()
                    ),
                });
            }
        } else if t.kind == TokKind::Ident
            && t.text == "vec"
            && text_at(code, k + 1) == "!"
            && text_at(code, k + 2) == "["
        {
            let close = matching_close(code, k + 2);
            // Only `vec![elem; n]` allocates by a length expression.
            let has_semi = (k + 3..close).any(|j| text_at(code, j) == ";");
            if !has_semi {
                continue;
            }
            if let Some((name, chain)) = group_taint(code, k + 3, close, vars, spec) {
                out.push(Finding {
                    file: fa.rel_path.clone(),
                    line: t.line,
                    rule: spec.rule,
                    message: format!(
                        "`vec![…; n]` sized by tainted value `{}` (tainted by {}); clamp or \
                         validate the length before allocating for hostile input",
                        name,
                        chain.describe()
                    ),
                });
            }
        }
    }
}

/// `determinism-taint` sinks: replayed-state constructors and the seed /
/// wire / meter calls.
fn sink_determinism(
    fa: &FileAnalysis,
    idxs: &[usize],
    vars: &BTreeMap<String, Chain>,
    spec: &TaintSpec,
    out: &mut Vec<Finding>,
) {
    let code = &fa.code;
    let push = |line: u32, sink: &str, name: &str, chain: &Chain, out: &mut Vec<Finding>| {
        out.push(Finding {
            file: fa.rel_path.clone(),
            line,
            rule: spec.rule,
            message: format!(
                "nondeterministic value `{}` flows into `{}` (tainted by {}); replayed state \
                 must derive only from (seed, round, client) — keep wall-clock, parallelism, \
                 and address-derived values in telemetry",
                name,
                sink,
                chain.describe()
            ),
        });
    };
    for &k in idxs {
        let Some(t) = code.get(k) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = if k == 0 { "" } else { text_at(code, k - 1) };
        let next = text_at(code, k + 1);
        if DET_SINK_TYPES.contains(&t.text.as_str()) {
            // `RunResult { … }` / `CommMeter(…)` construction…
            let group_open = if next == "(" || (next == "{" && !NOT_A_LITERAL.contains(&prev)) {
                Some(k + 1)
            } else if next == "::"
                && code.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
                && matches!(text_at(code, k + 3), "(" | "{")
            {
                // …or `MethodState::Variant(…)`.
                Some(k + 3)
            } else {
                None
            };
            if let Some(open) = group_open {
                let close = matching_close(code, open);
                if let Some((name, chain)) = group_taint(code, open + 1, close, vars, spec) {
                    push(t.line, &t.text, name, chain, out);
                }
            }
        } else if DET_SINK_CALLS.contains(&t.text.as_str()) && next == "(" {
            // Skip `#[derive(…)]` attributes.
            if k >= 2 && prev == "[" && text_at(code, k - 2) == "#" {
                continue;
            }
            let close = matching_close(code, k + 1);
            if let Some((name, chain)) = group_taint(code, k + 2, close, vars, spec) {
                push(t.line, &t.text, name, chain, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// pool-discipline
// ---------------------------------------------------------------------------

/// Atomic RMW / load / store method names whose `Ordering::Relaxed` use
/// needs a justification pragma. Shared with [`crate::concurrency`]'s
/// atomic-ordering-pairing scan.
pub(crate) const ATOMIC_METHODS: [&str; 13] = [
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "store",
    "swap",
];

/// `pool-discipline`: the vendored thread-pool's concurrency protocol.
/// Two checks over `vendor/rayon/src` files: (a) every
/// `Ordering::Relaxed` needs a justification pragma, (b) `unsafe impl
/// Send/Sync` needs a `// SAFETY:` comment. (The v3 per-file lock-order
/// check moved to the workspace-global, interprocedural
/// `lock-order-global` rule in [`crate::concurrency`].)
pub fn pool_discipline(
    rel_path: &str,
    code: &[Token],
    _items: &[Item],
    in_test: &[bool],
    safety_ok: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    if !rel_path.starts_with("vendor/rayon/") {
        return;
    }
    let test_line = |line: u32| in_test.get(line as usize).copied().unwrap_or(false);
    relaxed_orderings(rel_path, code, &test_line, out);
    unsafe_impl_send_sync(rel_path, code, &test_line, safety_ok, out);
}

/// Check (a): naked `Ordering::Relaxed`.
fn relaxed_orderings(
    rel_path: &str,
    code: &[Token],
    test_line: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for k in 0..code.len() {
        if !(text_at(code, k) == "Ordering"
            && text_at(code, k + 1) == "::"
            && text_at(code, k + 2) == "Relaxed")
        {
            continue;
        }
        let line = code[k + 2].line;
        if test_line(line) {
            continue;
        }
        // Name the atomic op for the message: walk back to the enclosing
        // `field.method(` if it is nearby.
        let mut what = String::from("an atomic operation");
        for m in (k.saturating_sub(12)..k).rev() {
            let t = &code[m];
            if t.kind == TokKind::Ident
                && ATOMIC_METHODS.contains(&t.text.as_str())
                && text_at(code, m + 1) == "("
            {
                if m >= 2 && text_at(code, m - 1) == "." {
                    if let Some(f) = code.get(m - 2).filter(|f| f.kind == TokKind::Ident) {
                        what = format!("`{}.{}`", f.text, t.text);
                        break;
                    }
                }
                what = format!("`{}`", t.text);
                break;
            }
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line,
            rule: "pool-discipline",
            message: format!(
                "`Ordering::Relaxed` on {what} without a justification pragma; state-machine \
                 atomics need Acquire/Release, or a `// fedlint::allow(pool-discipline): …` \
                 stating why reordering is harmless"
            ),
        });
    }
}

/// Check (c): `unsafe impl Send/Sync` without a SAFETY comment. Overlaps
/// with `unsafe-needs-safety-comment` deliberately — the pool's Send/Sync
/// claims are load-bearing enough to gate under both names.
fn unsafe_impl_send_sync(
    rel_path: &str,
    code: &[Token],
    test_line: &dyn Fn(u32) -> bool,
    safety_ok: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for k in 0..code.len() {
        if !(text_at(code, k) == "unsafe" && text_at(code, k + 1) == "impl") {
            continue;
        }
        let line = code[k].line;
        if test_line(line) || safety_ok(line) {
            continue;
        }
        // Find the trait name between `impl` and the body / `for`.
        let mut traited = None;
        for j in k + 2..(k + 16).min(code.len()) {
            match text_at(code, j) {
                "Send" | "Sync" => {
                    traited = Some(text_at(code, j).to_string());
                    break;
                }
                "{" | ";" | "for" => break,
                _ => {}
            }
        }
        let Some(traited) = traited else { continue };
        out.push(Finding {
            file: rel_path.to_string(),
            line,
            rule: "pool-discipline",
            message: format!(
                "`unsafe impl {traited}` without a `// SAFETY:` comment; the pool's thread-safety \
                 claims must document the invariant that makes cross-thread access sound"
            ),
        });
    }
}

/// Deterministic DFS path from `from` to `to` in the lock graph. Used by
/// [`crate::concurrency`]'s global cycle detection.
pub(crate) fn find_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut stack = vec![vec![from]];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(path) = stack.pop() {
        let cur = *path.last()?;
        if cur == to {
            return Some(path);
        }
        if !seen.insert(cur) {
            continue;
        }
        if let Some(nexts) = adj.get(cur) {
            // Reverse so the lexicographically smallest neighbour pops first.
            for n in nexts.iter().rev() {
                let mut p = path.clone();
                p.push(n);
                stack.push(p);
            }
        }
    }
    None
}

/// The receiver field/local of a `.lock()` call: the identifier ending the
/// postfix chain before the dot at `dot`.
pub(crate) fn receiver_name(code: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    if text_at(code, j) == "]" {
        // Skip a balanced index group: `slots[i].lock()`.
        let mut depth = 0i64;
        loop {
            match text_at(code, j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        j = j.checked_sub(1)?;
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
    }
    code.get(j)
        .filter(|t| t.kind == TokKind::Ident && t.text != "self")
        .map(|t| t.text.clone())
}

/// The last identifier inside a call's argument group — for the free-fn
/// form `lock(&self.queue)`, that names the Mutex field.
pub(crate) fn last_ident_in_group(code: &[Token], open: usize) -> Option<String> {
    let close = matching_close(code, open);
    code[open + 1..close.min(code.len())]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "self" && t.text != "mut")
        .map(|t| t.text.clone())
}

/// Was the acquisition at token `k` bound by a `let` in the same statement?
/// Returns the bound variable name.
pub(crate) fn let_bound_var(code: &[Token], k: usize) -> Option<String> {
    let floor = k.saturating_sub(16);
    let mut j = k;
    while j > floor {
        j -= 1;
        match text_at(code, j) {
            ";" | "{" | "}" => return None,
            "let" => {
                let name = code
                    .get(j + 1)
                    .filter(|t| t.text == "mut")
                    .map(|_| j + 2)
                    .unwrap_or(j + 1);
                return code
                    .get(name)
                    .filter(|t| t.kind == TokKind::Ident && is_local_name(&t.text))
                    .map(|t| t.text.clone());
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn flows_of(src: &str) -> (Vec<Token>, Vec<FnFlow>) {
        let code: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let in_test = vec![false; src.lines().count() + 3];
        let items = crate::items::parse_items(&code, &in_test);
        let flows = fn_flows(&code, &items);
        (code, flows)
    }

    #[test]
    fn params_defs_and_rets_are_recovered() {
        let (_, flows) = flows_of(
            "fn f(a: usize, b: &[u8]) -> usize {\n    let c = a + 1;\n    let mut d = c;\n    d = b.len();\n    return d;\n}\n",
        );
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert!(!f.has_receiver);
        assert_eq!(
            f.params,
            vec![
                Param {
                    name: "a".into(),
                    position: 0
                },
                Param {
                    name: "b".into(),
                    position: 1
                }
            ]
        );
        let names: Vec<&str> = f.defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["c", "d", "d"]);
        assert_eq!(
            f.rets.len(),
            1,
            "one explicit return; a body ending in `return x;` has no tail expression"
        );
    }

    #[test]
    fn receiver_and_generics_are_handled() {
        let (_, flows) =
            flows_of("impl T { fn m<X: Into<u32>>(&mut self, n: X) -> u32 { n.into() } }\n");
        assert_eq!(flows.len(), 1);
        assert!(flows[0].has_receiver);
        assert_eq!(
            flows[0].params,
            vec![Param {
                name: "n".into(),
                position: 1
            }]
        );
    }

    #[test]
    fn nested_let_defs_are_seen() {
        let (_, flows) = flows_of("fn f(x: u32) -> u32 { let a = { let b = x; b }; a }\n");
        let names: Vec<&str> = flows[0].defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn def_spans_nest_or_are_disjoint() {
        let (_, flows) =
            flows_of("fn f(x: u32) -> u32 { let a = { let b = x + 1; b }; let c = a; c }\n");
        let spans: Vec<(usize, usize)> = flows[0].defs.iter().map(|d| d.rhs).collect();
        for (i, &(a0, a1)) in spans.iter().enumerate() {
            assert!(a0 <= a1);
            for &(b0, b1) in spans.iter().skip(i + 1) {
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                let disjoint = a1 <= b0 || b1 <= a0;
                assert!(
                    nested || disjoint,
                    "overlap: {:?} vs {:?}",
                    (a0, a1),
                    (b0, b1)
                );
            }
        }
    }
}
