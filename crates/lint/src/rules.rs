//! The `fedlint` rules: each one turns a token stream into findings.
//!
//! Every rule protects a named workspace invariant (DESIGN.md §8):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety-comment` | every `unsafe` is justified in writing |
//! | `deterministic-iteration` | no hasher-ordered containers on replayed paths |
//! | `deterministic-reduction` | no fold-during-iteration on parallel iterators |
//! | `no-panic-paths` | library code of core crates cannot panic |
//! | `rng-stream-discipline` | RNG streams derive from named `streams::` labels |
//! | `float-eq` | no exact float equality without an explicit waiver |
//! | `codec-checked-arith` | codec regions use checked arithmetic and `.get(…)` |
//! | `atomic-write-discipline` | persisted writes follow tmp → fsync → rename |
//! | `panic-reachability` | public library fns cannot *transitively* panic ([`crate::callgraph`]) |
//! | `rng-stream-collision` | stream labels unique; one stream per scope ([`crate::callgraph`]) |
//! | `untrusted-input-taint` | input-derived lengths are checked before arith/index/alloc ([`crate::dataflow`]) |
//! | `determinism-taint` | nondeterministic values never flow into replayed state ([`crate::dataflow`]) |
//! | `pool-discipline` | the vendored pool's atomics and `unsafe impl`s follow protocol ([`crate::dataflow`]) |
//! | `lock-order-global` | the workspace-global lock acquisition order is cycle-free ([`crate::concurrency`]) |
//! | `guard-across-blocking` | no lock guard is held across a blocking operation ([`crate::concurrency`]) |
//! | `atomic-ordering-pairing` | release/acquire atomic sides pair up across the workspace ([`crate::concurrency`]) |
//!
//! Exemptions are granted per line by a pragma comment:
//! `// fedlint::allow(<rule>): <reason>` — the reason is mandatory, and the
//! pragma covers its own line plus the next line (so it can sit directly
//! above the flagged expression, including inside method chains). A
//! malformed pragma is itself a finding (`pragma-syntax`) and suppresses
//! nothing.

use crate::items::{parse_items, Item, ItemKind};
use crate::lexer::{lex, TokKind, Token};
use crate::Finding;

/// Rule identifiers, sorted, as accepted by the allow pragma.
pub const RULE_NAMES: [&str; 16] = [
    "atomic-ordering-pairing",
    "atomic-write-discipline",
    "codec-checked-arith",
    "determinism-taint",
    "deterministic-iteration",
    "deterministic-reduction",
    "float-eq",
    "guard-across-blocking",
    "lock-order-global",
    "no-panic-paths",
    "panic-reachability",
    "pool-discipline",
    "rng-stream-collision",
    "rng-stream-discipline",
    "unsafe-needs-safety-comment",
    "untrusted-input-taint",
];

/// One `--explain` entry: the rule name and its documentation text. This
/// table is the single source for `fedlint --explain`, and the README rule
/// list is tested against it (`tests/explain.rs`).
pub const RULE_DOCS: [(&str, &str); 17] = [
    (
        "atomic-ordering-pairing",
        "Every Release/AcqRel store side on an atomic field must have a matching \
         Acquire/AcqRel/SeqCst load side on the same field at some other non-test site in the \
         workspace, and vice versa — a release edge with no acquire (or the reverse) \
         synchronizes nothing and usually marks a missing or misordered partner. SeqCst \
         satisfies either side without demanding one; Relaxed is pool-discipline's business \
         (justification pragma).",
    ),
    (
        "atomic-write-discipline",
        "Persisted state must be written atomically: tmp file, write, fsync, rename. A bare \
         write to the final path can be torn by a crash and break replay/recovery.",
    ),
    (
        "codec-checked-arith",
        "Codec (wire encode/decode) regions must use checked arithmetic and checked indexing \
         (`.get(…)`): attacker-controlled lengths must not be able to overflow or panic.",
    ),
    (
        "determinism-taint",
        "Nondeterministic sources (wall clock, hasher state, thread ids, env) must not flow \
         into replayed state in the deterministic crates; bit-identical replay is the \
         workspace's core guarantee.",
    ),
    (
        "deterministic-iteration",
        "No hasher-ordered containers (HashMap/HashSet iteration) on replayed paths in the \
         deterministic crates; use BTreeMap/BTreeSet or sort first.",
    ),
    (
        "deterministic-reduction",
        "No fold/reduce during parallel iteration: float addition is not associative, so \
         reduction order must be fixed (indexed writes, then a sequential fold).",
    ),
    (
        "float-eq",
        "No exact float equality (`==`/`!=` on floats) without an explicit waiver; almost-equal \
         comparisons must use an epsilon or bit-exact intent must be documented.",
    ),
    (
        "guard-across-blocking",
        "No Mutex/RwLock guard may be live across a blocking operation — socket \
         read/write/accept/flush, channel recv, thread::sleep/park, pool job submission, or a \
         Condvar wait on a different mutex (the wait's own guard is exempt: the condvar \
         releases it atomically). Interprocedural: holding a guard across a call whose callee \
         (transitively) blocks is reported with the full file:line chain.",
    ),
    (
        "lock-order-global",
        "The workspace-global lock acquisition-order graph must be cycle-free. Lock identity \
         is tracked by declaration site; held-lock sets propagate along the call graph to a \
         fixpoint, so a lock acquired in one file and held across calls into another still \
         produces edges. Every edge on a cycle is reported with the full acquisition chain \
         (lock A at file:line -> call f -> lock B at file:line), and re-acquiring a held lock \
         (directly or through a call chain) is a self-deadlock finding.",
    ),
    (
        "no-panic-paths",
        "Library code of the core crates must not panic: no unwrap/expect/panic!/indexing \
         where a checked alternative exists. Binaries and tests are exempt.",
    ),
    (
        "panic-reachability",
        "Public library functions of the panic-free crates must not transitively reach a \
         panic site through the workspace call graph.",
    ),
    (
        "pool-discipline",
        "The vendored thread pool's concurrency protocol: every Ordering::Relaxed needs a \
         justification pragma stating why reordering is harmless, and every `unsafe impl \
         Send/Sync` needs a SAFETY comment. (The v3 per-file lock-order check is superseded \
         by the interprocedural lock-order-global rule.)",
    ),
    (
        "pragma-syntax",
        "A malformed `// fedlint::allow(<rule>): <reason>` pragma — unknown rule name or \
         missing reason — is itself a finding and suppresses nothing, so a typo cannot \
         silently disable a rule.",
    ),
    (
        "rng-stream-collision",
        "RNG stream labels must be unique workspace-wide and each scope must draw from one \
         stream; collisions correlate supposedly-independent randomness.",
    ),
    (
        "rng-stream-discipline",
        "RNGs must be constructed from named `streams::` label constants (not ad-hoc seeds) \
         so every random draw is attributable and replayable.",
    ),
    (
        "unsafe-needs-safety-comment",
        "Every `unsafe` block or impl needs a `// SAFETY:` comment documenting the invariant \
         that makes it sound.",
    ),
    (
        "untrusted-input-taint",
        "Lengths and counts decoded from untrusted input must be bounds-checked before they \
         reach arithmetic, indexing, or allocation (dataflow taint over the decoder).",
    ),
];

/// Crates whose library code must be panic-free (`no-panic-paths`).
const PANIC_FREE_CRATES: [&str; 6] = ["cluster", "core", "data", "fl", "nn", "tensor"];
/// Crates where iteration order reaches aggregation/clustering/telemetry.
const DETERMINISTIC_CRATES: [&str; 3] = ["cluster", "core", "fl"];
/// Crates whose RNGs must derive from named stream constants.
const RNG_CRATES: [&str; 2] = ["core", "fl"];

/// How far (in lines) the `SAFETY:` search walks up through comments,
/// attributes, and blank lines before giving up.
const SAFETY_WALK_LIMIT: u32 = 64;

/// Everything the rules need to know about one source file.
pub struct FileContext<'a> {
    /// Crate directory name under `crates/` (`fl`, `tensor`, ...).
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes, for findings.
    pub rel_path: &'a str,
    /// Binary target (`src/main.rs` or under `src/bin/`): exempt from the
    /// library-code rules.
    pub is_bin: bool,
}

/// A `fedlint::allow` pragma, parsed from a comment.
struct Pragma {
    line: u32,
    rule: String,
    valid: bool,
}

/// Per-line facts derived from the token stream (indices are 1-based lines).
struct LineInfo {
    /// Line carries at least one non-comment token.
    has_code: Vec<bool>,
    /// First non-comment token on the line is `#` (attribute line).
    starts_attr: Vec<bool>,
    /// Some comment covering this line contains `SAFETY:`.
    has_safety: Vec<bool>,
    /// Line is inside a `#[cfg(test)]` item (test module or function).
    in_test: Vec<bool>,
}

impl LineInfo {
    fn get(v: &[bool], line: u32) -> bool {
        v.get(line as usize).copied().unwrap_or(false)
    }
}

/// Everything the structural (cross-file) pass needs from one file, plus
/// the file's local findings. Produced by [`analyze_source`]; consumed by
/// [`crate::callgraph`].
pub struct FileAnalysis {
    /// Crate directory name under `crates/`.
    pub crate_name: String,
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Binary target (exempt from library rules and reachability roots).
    pub is_bin: bool,
    /// Comment-free token stream; [`Item`] body spans index into this.
    pub code: Vec<Token>,
    /// Recovered `fn`/`mod`/`impl` items.
    pub items: Vec<Item>,
    pragmas: Vec<Pragma>,
    /// Local-rule findings, pragma-filtered and unsorted.
    pub findings: Vec<Finding>,
}

impl FileAnalysis {
    /// Is a finding of `rule` at `line` suppressed by a valid pragma in this
    /// file? (A pragma covers its own line and the next.)
    pub(crate) fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.valid && p.rule == rule && (p.line == line || p.line + 1 == line))
    }
}

/// Run every local rule over one file; the returned analysis carries the
/// findings plus the structure the global pass consumes.
pub fn analyze_source(ctx: &FileContext<'_>, src: &str) -> FileAnalysis {
    analyze_source_timed(ctx, src, None)
}

/// [`analyze_source`] with optional per-rule wall-time accounting.
pub fn analyze_source_timed(
    ctx: &FileContext<'_>,
    src: &str,
    mut timings: Option<&mut crate::Timings>,
) -> FileAnalysis {
    use std::time::Instant;
    let start = Instant::now();
    let tokens = lex(src);
    let code_owned: Vec<Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .cloned()
        .collect();
    let code: Vec<&Token> = code_owned.iter().collect();
    let info = line_info(src, &tokens, &code);
    let pragmas = collect_pragmas(&tokens);
    let items = parse_items(&code_owned, &info.in_test);
    crate::record_elapsed(&mut timings, "infra:parse", start);

    type RuleFn<'a> = &'a dyn Fn(&mut Vec<Finding>);
    let mut findings = Vec::new();
    let timed_rules: [(&str, RuleFn); 6] = [
        ("unsafe-needs-safety-comment", &|f| {
            rule_unsafe_safety(ctx, &code, &info, f)
        }),
        ("deterministic-iteration", &|f| {
            rule_deterministic_iteration(ctx, &code, &info, f)
        }),
        ("deterministic-reduction", &|f| {
            rule_deterministic_reduction(ctx, &code, &info, f)
        }),
        ("no-panic-paths", &|f| {
            rule_no_panic_paths(ctx, &code, &info, f)
        }),
        ("rng-stream-discipline", &|f| {
            rule_rng_stream_discipline(ctx, &code, &info, f)
        }),
        ("float-eq", &|f| rule_float_eq(ctx, &code, &info, f)),
    ];
    for (key, rule) in timed_rules {
        let start = Instant::now();
        rule(&mut findings);
        crate::record_elapsed(&mut timings, key, start);
    }
    let start = Instant::now();
    rule_codec_checked_arith(ctx, &code_owned, &items, &mut findings);
    crate::record_elapsed(&mut timings, "codec-checked-arith", start);
    let start = Instant::now();
    rule_atomic_write(ctx, &code_owned, &items, &mut findings);
    crate::record_elapsed(&mut timings, "atomic-write-discipline", start);
    let safety_ok = |line: u32| safety_reachable(&info, line);
    let start = Instant::now();
    crate::dataflow::pool_discipline(
        ctx.rel_path,
        &code_owned,
        &items,
        &info.in_test,
        &safety_ok,
        &mut findings,
    );
    crate::record_elapsed(&mut timings, "pool-discipline", start);

    // Apply pragma suppression: a valid pragma covers its line and the next.
    findings.retain(|f| {
        !pragmas
            .iter()
            .any(|p| p.valid && p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
    });

    // Malformed pragmas are findings themselves and cannot be suppressed.
    for p in &pragmas {
        if !p.valid {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line: p.line,
                rule: "pragma-syntax",
                message: format!(
                    "malformed fedlint pragma (rule `{}`): expected \
                     `// fedlint::allow(<rule>): <reason>` with a known rule and a non-empty reason",
                    p.rule
                ),
            });
        }
    }
    FileAnalysis {
        crate_name: ctx.crate_name.to_string(),
        rel_path: ctx.rel_path.to_string(),
        is_bin: ctx.is_bin,
        code: code_owned,
        items,
        pragmas,
        findings,
    }
}

/// Local findings only — the historical entry point, kept for tests that
/// exercise a single file without the global pass.
pub fn scan_source(ctx: &FileContext<'_>, src: &str) -> Vec<Finding> {
    analyze_source(ctx, src).findings
}

/// Build the per-line fact tables.
fn line_info(src: &str, tokens: &[Token], code: &[&Token]) -> LineInfo {
    let n_lines = src.lines().count().max(1) + 2;
    let mut has_code = vec![false; n_lines + 1];
    let mut starts_attr = vec![false; n_lines + 1];
    let mut has_safety = vec![false; n_lines + 1];
    let mut first_code_seen = vec![false; n_lines + 1];

    for t in tokens {
        let span = t.text.matches('\n').count() as u32;
        match t.kind {
            TokKind::Comment => {
                if t.text.contains("SAFETY:") {
                    for l in t.line..=t.line.saturating_add(span) {
                        if let Some(slot) = has_safety.get_mut(l as usize) {
                            *slot = true;
                        }
                    }
                }
            }
            _ => {
                for l in t.line..=t.line.saturating_add(span) {
                    if let Some(slot) = has_code.get_mut(l as usize) {
                        *slot = true;
                    }
                }
                let li = t.line as usize;
                if li < first_code_seen.len() && !first_code_seen[li] {
                    first_code_seen[li] = true;
                    starts_attr[li] = t.kind == TokKind::Op && t.text == "#";
                }
            }
        }
    }

    let in_test = test_regions(code, n_lines + 1);
    LineInfo {
        has_code,
        starts_attr,
        has_safety,
        in_test,
    }
}

/// Mark every line inside a `#[cfg(test)]` item's braces (plus the attribute
/// itself) as test code. Handles `#[cfg(test)] mod tests { ... }` and
/// `#[cfg(test)]` on any other braced item; an item ended by `;` before any
/// `{` produces no region.
fn test_regions(code: &[&Token], n_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; n_lines + 1];
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `cfg` + `test`; a bare `#[test]`
        // (exactly one inner token) marks a test fn directly.
        let bare_test = code.get(i + 2).is_some_and(|t| t.text == "test")
            && code.get(i + 3).is_some_and(|t| t.text == "]");
        let mut j = i + 2;
        let mut depth = 1usize;
        let (mut saw_cfg, mut saw_test) = (false, false);
        while j < code.len() && depth > 0 {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !((saw_cfg && saw_test) || bare_test) {
            i = j.max(i + 1);
            continue;
        }
        let attr_line = code[i].line;
        // Find the item's opening brace (skipping over further attributes is
        // implicit: their `[`/`]` don't open braces). A `;` first means a
        // braceless item — no region.
        let mut k = j;
        while k < code.len() && code[k].text != "{" && code[k].text != ";" {
            k += 1;
        }
        if k >= code.len() || code[k].text == ";" {
            i = k.max(i + 1);
            continue;
        }
        // Match braces to the item's end.
        let mut brace = 0usize;
        let mut end_line = code[k].line;
        let mut m = k;
        while m < code.len() {
            match code[m].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = code[m].line;
                        break;
                    }
                }
                _ => {}
            }
            end_line = code[m].line;
            m += 1;
        }
        for l in attr_line..=end_line {
            if let Some(slot) = in_test.get_mut(l as usize) {
                *slot = true;
            }
        }
        i = m.max(i + 1);
    }
    in_test
}

/// Parse allow pragmas out of comments. Only comments that *begin* with the
/// pragma (after the comment markers) count — prose that merely mentions the
/// grammar, like this crate's own docs, is not a pragma attempt.
fn collect_pragmas(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("fedlint::allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Pragma {
                line: t.line,
                rule: String::new(),
                valid: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reason_ok = after
            .strip_prefix(':')
            .map(|r| {
                let r = r.trim_end_matches("*/").trim();
                !r.is_empty()
            })
            .unwrap_or(false);
        let known = RULE_NAMES.contains(&rule.as_str());
        out.push(Pragma {
            line: t.line,
            valid: known && reason_ok,
            rule,
        });
    }
    out
}

fn push(ctx: &FileContext<'_>, out: &mut Vec<Finding>, line: u32, rule: &'static str, msg: String) {
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// Is a `SAFETY:` comment on `line` itself, or reachable by walking up
/// through comment, attribute, and blank lines only? Shared by
/// `unsafe-needs-safety-comment` and `pool-discipline`.
fn safety_reachable(info: &LineInfo, line: u32) -> bool {
    if LineInfo::get(&info.has_safety, line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    let floor = line.saturating_sub(SAFETY_WALK_LIMIT);
    while l > floor && l > 0 {
        if LineInfo::get(&info.has_safety, l) {
            return true;
        }
        if LineInfo::get(&info.has_code, l) && !LineInfo::get(&info.starts_attr, l) {
            return false; // a real code line interrupts the comment run
        }
        l -= 1;
    }
    false
}

/// `unsafe-needs-safety-comment`: every `unsafe` token must have a comment
/// containing `SAFETY:` on its own line or reachable by walking up through
/// comment, attribute, and blank lines only.
fn rule_unsafe_safety(
    ctx: &FileContext<'_>,
    code: &[&Token],
    info: &LineInfo,
    out: &mut Vec<Finding>,
) {
    for t in code {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        if !safety_reachable(info, t.line) {
            push(
                ctx,
                out,
                t.line,
                "unsafe-needs-safety-comment",
                "`unsafe` without a preceding `// SAFETY:` comment justifying the invariant"
                    .to_string(),
            );
        }
    }
}

/// `deterministic-iteration`: no `HashMap`/`HashSet` in library code of
/// crates whose iteration order reaches aggregation, clustering, or
/// telemetry.
fn rule_deterministic_iteration(
    ctx: &FileContext<'_>,
    code: &[&Token],
    info: &LineInfo,
    out: &mut Vec<Finding>,
) {
    if ctx.is_bin || !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in code {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !LineInfo::get(&info.in_test, t.line)
        {
            push(
                ctx,
                out,
                t.line,
                "deterministic-iteration",
                format!(
                    "`{}` is hasher-ordered; use `BTreeMap`/`BTreeSet` or a sorted Vec so replay \
                     is independent of hasher state",
                    t.text
                ),
            );
        }
    }
}

/// The parallel-iterator entry points whose downstream chain the
/// `deterministic-reduction` rule audits.
const PAR_ENTRY_POINTS: [&str; 5] = [
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_iter",
    "par_iter_mut",
];

/// `deterministic-reduction`: a `.sum()`/`.fold()`/`.reduce()` chained
/// directly on a `par_iter()`-family call accumulates floats in whatever
/// order worker threads finish — nondeterministic across thread counts.
/// Library code must collect into index order first and reduce the
/// ordered buffer (`collect-then-reduce`); the vendored pool's own `sum`
/// does exactly that, but fedlint bans the shape so a future swap to real
/// rayon (tree reduction) cannot silently change bytes.
fn rule_deterministic_reduction(
    ctx: &FileContext<'_>,
    code: &[&Token],
    info: &LineInfo,
    out: &mut Vec<Finding>,
) {
    if ctx.is_bin {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !PAR_ENTRY_POINTS.contains(&t.text.as_str())
            || code.get(i + 1).is_none_or(|n| n.text != "(")
            || LineInfo::get(&info.in_test, t.line)
        {
            continue;
        }
        // Walk the method chain at the entry point's delimiter depth.
        // Anything inside `(…)`/`[…]`/`{…}` (closure bodies, arguments) is
        // deeper and skipped; the chain ends at `;`, `,`, or a delimiter
        // that closes past the entry depth.
        let mut depth = 0isize;
        let mut j = i + 1;
        while let Some(tok) = code.get(j) {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," if depth == 0 => break,
                "." if depth == 0 => {
                    if let Some(m) = code.get(j + 1) {
                        if m.kind == TokKind::Ident {
                            if m.text == "collect" {
                                break; // ordered materialisation: chain is safe
                            }
                            if matches!(m.text.as_str(), "sum" | "fold" | "reduce") {
                                push(
                                    ctx,
                                    out,
                                    m.line,
                                    "deterministic-reduction",
                                    format!(
                                        "`.{}()` directly on `{}()` accumulates in thread-completion \
                                         order; collect into index order first, then reduce the \
                                         ordered buffer (collect-then-reduce)",
                                        m.text, t.text
                                    ),
                                );
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// `no-panic-paths`: `.unwrap()`, `.expect(`, `panic!`, `todo!`,
/// `unimplemented!` are banned in library code of the panic-free crates.
fn rule_no_panic_paths(
    ctx: &FileContext<'_>,
    code: &[&Token],
    info: &LineInfo,
    out: &mut Vec<Finding>,
) {
    if ctx.is_bin || !PANIC_FREE_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || LineInfo::get(&info.in_test, t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| code.get(p));
        let next = code.get(i + 1);
        let method_call = |name: &str| {
            t.text == name
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
        };
        if method_call("unwrap") || method_call("expect") {
            push(
                ctx,
                out,
                t.line,
                "no-panic-paths",
                format!(
                    "`.{}()` in library code can panic; return a `Result`, rewrite infallibly, or \
                     justify with a fedlint::allow pragma",
                    t.text
                ),
            );
        } else if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && next.is_some_and(|n| n.text == "!")
        {
            push(
                ctx,
                out,
                t.line,
                "no-panic-paths",
                format!(
                    "`{}!` in library code; the resilient server must not panic through here",
                    t.text
                ),
            );
        }
    }
}

/// `rng-stream-discipline`: in `fl`/`core` library code, `derive(seed, &[…])`
/// must lead its stream slice with a named constant (`streams::X`), never a
/// bare integer literal; direct `seed_from_u64(<literal>)` is banned too.
fn rule_rng_stream_discipline(
    ctx: &FileContext<'_>,
    code: &[&Token],
    info: &LineInfo,
    out: &mut Vec<Finding>,
) {
    if ctx.is_bin || !RNG_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || LineInfo::get(&info.in_test, t.line) {
            continue;
        }
        if t.text == "seed_from_u64"
            && code.get(i + 1).is_some_and(|n| n.text == "(")
            && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Int)
        {
            push(
                ctx,
                out,
                t.line,
                "rng-stream-discipline",
                "RNG seeded from a bare integer literal; derive it from the experiment seed and a \
                 named `streams::` constant instead"
                    .to_string(),
            );
            continue;
        }
        if t.text != "derive" || code.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        // Skip `#[derive(...)]` attributes.
        let in_attr = i >= 2 && code[i - 1].text == "[" && code[i - 2].text == "#";
        if in_attr {
            continue;
        }
        // Scan the call's argument list for `&[`, then inspect the slice's
        // first element.
        let mut depth = 0usize;
        let mut j = i + 1;
        while let Some(tok) = code.get(j) {
            match tok.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "&" if depth >= 1 && code.get(j + 1).is_some_and(|n| n.text == "[") => {
                    if let Some(first) = code.get(j + 2) {
                        if first.kind == TokKind::Int {
                            push(
                                ctx,
                                out,
                                first.line,
                                "rng-stream-discipline",
                                format!(
                                    "RNG stream starts with bare literal `{}`; lead with a named \
                                     `streams::` constant so streams stay collision-free and greppable",
                                    first.text
                                ),
                            );
                        }
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// `float-eq`: `==` / `!=` with a float literal operand. (A lexer cannot see
/// types, so float-vs-float variable comparisons are out of scope; literal
/// comparisons are where every workspace instance lived.)
fn rule_float_eq(ctx: &FileContext<'_>, code: &[&Token], info: &LineInfo, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Op
            || (t.text != "==" && t.text != "!=")
            || LineInfo::get(&info.in_test, t.line)
        {
            continue;
        }
        let float_adjacent = i
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .is_some_and(|p| p.kind == TokKind::Float)
            || code.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
        if float_adjacent {
            push(
                ctx,
                out,
                t.line,
                "float-eq",
                format!(
                    "exact float comparison `{}` against a literal; use a tolerance or justify the \
                     exact-zero/sentinel semantics with a fedlint::allow pragma",
                    t.text
                ),
            );
        }
    }
}

/// Does an identifier smell like a length, offset, or count — the values a
/// hostile checkpoint controls?
fn lenish(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    l == "n"
        || ["len", "pos", "offset", "idx", "count", "size"]
            .iter()
            .any(|p| l.contains(p))
}

/// `codec-checked-arith`: inside designated codec regions (the checkpoint
/// decoder, the federation snapshot restore path, and the wire codec's
/// decode path), unchecked `+`/`-`/`*` on length/offset-named values and
/// bare slice indexing are banned — checksum-valid hostile lengths must
/// not be able to panic or over-allocate.
fn rule_codec_checked_arith(
    ctx: &FileContext<'_>,
    code: &[Token],
    items: &[Item],
    out: &mut Vec<Finding>,
) {
    let in_checkpoint = ctx.rel_path.ends_with("fl/src/checkpoint.rs");
    let in_persist = ctx.rel_path.ends_with("core/src/persist.rs");
    let in_codec = ctx.rel_path.ends_with("fl/src/codec.rs");
    let in_proto =
        ctx.rel_path.ends_with("proto/src/wire.rs") || ctx.rel_path.ends_with("proto/src/msg.rs");
    if ctx.is_bin || !(in_checkpoint || in_persist || in_codec || in_proto) {
        return;
    }
    for item in items {
        if item.kind != ItemKind::Fn || item.is_test {
            continue;
        }
        let codec = (in_checkpoint
            && (item.impl_type.as_deref() == Some("Dec") || item.name.starts_with("decode")))
            || (in_persist && matches!(item.name.as_str(), "restore" | "from_json"))
            || (in_codec && item.name.starts_with("decode"))
            || (in_proto
                && (item.impl_type.as_deref() == Some("Dec")
                    || item.name.starts_with("decode")
                    || item.name.starts_with("read_")));
        if !codec {
            continue;
        }
        let Some((start, end)) = item.body else {
            continue;
        };
        for k in start + 1..end.min(code.len()) {
            let t = &code[k];
            let next_is = |txt: &str| code.get(k + 1).is_some_and(|n| n.text == txt);
            if t.kind == TokKind::Op && matches!(t.text.as_str(), "+" | "-" | "*") {
                // Binary position: the left operand just ended.
                let binary = k.checked_sub(1).and_then(|p| code.get(p)).is_some_and(|p| {
                    matches!(p.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                        || p.text == ")"
                        || p.text == "]"
                });
                let window = code[k.saturating_sub(4)..(k + 5).min(code.len())]
                    .iter()
                    .any(|w| w.kind == TokKind::Ident && lenish(&w.text));
                if binary && window {
                    push(
                        ctx,
                        out,
                        t.line,
                        "codec-checked-arith",
                        format!(
                            "unchecked `{}` on length/offset arithmetic in a codec region; use \
                             `checked_{}`/`saturating_{}` so hostile lengths cannot overflow",
                            t.text,
                            op_name(&t.text),
                            op_name(&t.text)
                        ),
                    );
                }
            } else if t.kind == TokKind::Ident && next_is("[") && !lenish_exempt(&t.text) {
                push(
                    ctx,
                    out,
                    t.line,
                    "codec-checked-arith",
                    format!(
                        "bare indexing `{}[…]` in a codec region can panic on hostile input; use \
                         `.get(…)` and propagate a decode error",
                        t.text
                    ),
                );
            }
        }
    }
}

fn op_name(op: &str) -> &'static str {
    match op {
        "+" => "add",
        "-" => "sub",
        _ => "mul",
    }
}

/// Identifier-before-`[` shapes that are not indexing expressions.
fn lenish_exempt(name: &str) -> bool {
    // `vec![…]` is lexed as `vec ! [`, so the `[` never follows the ident
    // directly; the only non-indexing shape left is an array type after a
    // primitive keyword, which does not occur ident-adjacent. Attribute
    // `#[…]` starts with `#`. Nothing to exempt today — kept as a named
    // hook so future shapes get a deliberate decision.
    let _ = name;
    false
}

/// `atomic-write-discipline`: in checkpoint/persist modules and the lint
/// CLI itself, a function that creates or writes a file must also fsync
/// (`sync_all`/`sync_data`) and `rename` before returning — the
/// torn-write-safe tmp → fsync → rename protocol must never be split across
/// helpers where a crash window hides.
fn rule_atomic_write(
    ctx: &FileContext<'_>,
    code: &[Token],
    items: &[Item],
    out: &mut Vec<Finding>,
) {
    // The lint CLI's own report/baseline writes are persisted artifacts too
    // (dogfooding): it is a binary, but the discipline still applies.
    let lint_cli = ctx.rel_path.ends_with("lint/src/main.rs");
    let applies = ctx.rel_path.ends_with("/checkpoint.rs")
        || ctx.rel_path.ends_with("/persist.rs")
        || lint_cli;
    if (ctx.is_bin && !lint_cli) || !applies {
        return;
    }
    for item in items {
        if item.kind != ItemKind::Fn || item.is_test {
            continue;
        }
        let Some((start, end)) = item.body else {
            continue;
        };
        let mut trigger: Option<(u32, &'static str)> = None;
        let mut has_sync = false;
        let mut has_rename = false;
        for k in start + 1..end.min(code.len()) {
            let t = &code[k];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |txt: &str| code.get(k + 1).is_some_and(|n| n.text == txt);
            let nth_is = |off: usize, txt: &str| code.get(k + off).is_some_and(|n| n.text == txt);
            if t.text == "File" && next_is("::") && nth_is(2, "create") {
                trigger.get_or_insert((t.line, "File::create"));
            } else if t.text == "write"
                && next_is("(")
                && k >= 2
                && code[k - 1].text == "::"
                && code[k - 2].text == "fs"
            {
                trigger.get_or_insert((t.line, "fs::write"));
            } else if t.text == "write_all"
                && next_is("(")
                && k.checked_sub(1)
                    .and_then(|p| code.get(p))
                    .is_some_and(|p| p.text == ".")
            {
                trigger.get_or_insert((t.line, "write_all"));
            } else if (t.text == "sync_all" || t.text == "sync_data") && next_is("(") {
                has_sync = true;
            } else if t.text == "rename" && next_is("(") {
                has_rename = true;
            }
        }
        if let Some((line, what)) = trigger {
            if !(has_sync && has_rename) {
                push(
                    ctx,
                    out,
                    line,
                    "atomic-write-discipline",
                    format!(
                        "`{}` in `{}` without both `sync_all`/`sync_data` and `rename` in the \
                         same function; persisted writes must follow the tmp → fsync → rename \
                         protocol so a crash never leaves a torn file",
                        what,
                        item.display_name()
                    ),
                );
            }
        }
    }
}
