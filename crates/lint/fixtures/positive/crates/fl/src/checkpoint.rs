//! Positive fixture: codec and atomic-write violations. Exact lines matter.

use std::fs::File;
use std::io::Write;

pub struct Dec {
    bytes: Vec<u8>,
    pos: usize,
}

impl Dec {
    fn take(&mut self, n: usize) -> &[u8] {
        let end = self.pos + n; // codec-checked-arith @13 (unchecked `+`)
        let out = &self.bytes[self.pos..end]; // codec-checked-arith @14 (bare indexing)
        self.pos = end;
        out
    }
}

pub fn decode_header(bytes: &[u8]) -> u32 {
    u32::from(bytes[0]) // codec-checked-arith @21 (bare indexing)
}

pub fn save_unsynced(path: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?; // atomic-write-discipline @25 (no fsync, no rename)
    f.write_all(data)?;
    Ok(())
}
