//! Positive fixture: RNG stream collisions — a duplicated constant value
//! and a re-consumed stream slice in one scope.

pub mod streams {
    pub const ALPHA: u64 = 3;
    pub const BETA: u64 = 3; // rng-stream-collision @6 (value collides with ALPHA)
}

pub fn double_consume(seed: u64, round: u64) {
    let _a = derive(seed, &[streams::ALPHA, round]);
    let _b = derive(seed, &[streams::ALPHA, round]); // rng-stream-collision @11 (same slice, same scope)
}
