//! Seeded `determinism-taint` violations: wall-clock readings flow through
//! a helper's return value into replayed state and a seed derivation.

pub struct RunResult {
    pub wall_ms: u64,
    pub acc: f64,
}

pub fn finish() -> RunResult {
    let wall = elapsed_ms();
    RunResult {
        wall_ms: wall,
        acc: 0.0,
    }
}

fn elapsed_ms() -> u64 {
    let now = std::time::Instant::now();
    now.elapsed().as_millis() as u64
}

pub fn reseed() -> u64 {
    let stamp = std::time::Instant::now().elapsed().as_nanos() as u64;
    seed_from_u64(stamp)
}

fn seed_from_u64(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37)
}
