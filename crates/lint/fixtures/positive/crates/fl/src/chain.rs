//! Positive fixture: a public fn that only *transitively* reaches a panic.

pub fn entry(x: Option<u32>) -> u32 {
    helper(x) // panic-reachability reported at `entry` (line 3), chain entry -> helper
}

fn helper(x: Option<u32>) -> u32 {
    x.unwrap() // no-panic-paths @8; also the chain's panic site
}
