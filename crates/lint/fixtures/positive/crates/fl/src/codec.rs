//! Positive fixture: wire-codec decode-path violations. Exact lines matter.

pub fn decode_frame(bytes: &[u8], n: usize, offset: usize) -> Vec<f32> {
    let end = offset + n; // codec-checked-arith @4 (unchecked `+`)
    let payload = &bytes[offset..end]; // codec-checked-arith @5 (bare indexing)
    let mut out = Vec::new();
    for chunk in payload.chunks_exact(4) {
        let mut arr = [0u8; 4];
        arr.copy_from_slice(chunk);
        out.push(f32::from_le_bytes(arr));
    }
    out
}

pub fn wire_len(n: usize) -> usize {
    n * 8 // encode-side arithmetic: the decode-path gate must stay silent
}
