//! Positive fixture: order-dependent reductions chained directly on
//! parallel iterators. The rule tests assert exact (rule, line) pairs —
//! keep line numbers stable when editing.

pub fn unordered_sum(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * 2.0).sum() // deterministic-reduction @6
}

pub fn unordered_fold(n: usize) -> f32 {
    (0..n)
        .into_par_iter()
        .map(|i| i as f32)
        .fold(0.0, |a, b| a + b) // deterministic-reduction @13
}

pub fn unordered_reduce(xs: &mut [f32]) -> f32 {
    xs.par_iter_mut().map(|x| *x).reduce(f32::max) // deterministic-reduction @17
}

pub fn turbofish_sum(xs: &[f32]) -> f32 {
    xs.par_chunks(4).map(|c| c.len() as f32).sum::<f32>() // deterministic-reduction @21
}
