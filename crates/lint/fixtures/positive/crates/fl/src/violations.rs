//! Positive fixture: every construct in here must produce a finding when
//! scanned as `fl` library code. The rule tests assert exact (rule, line)
//! pairs — keep line numbers stable when editing.

use std::collections::HashMap; // deterministic-iteration @5

pub fn panics(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // no-panic-paths @8
    let b = x.expect("present"); // no-panic-paths @9
    if a == 0 {
        panic!("boom"); // no-panic-paths @11
    }
    if b == 1 {
        todo!(); // no-panic-paths @14
    }
    if b == 2 {
        unimplemented!(); // no-panic-paths @17
    }
    a + b
}

pub fn nondeterministic() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // deterministic-iteration @23
    m.len()
}

pub fn bad_rng(seed: u64) {
    let _rng = derive(seed, &[42, 7]); // rng-stream-discipline @28
    let _direct = SmallRng::seed_from_u64(1234); // rng-stream-discipline @29
}

pub fn float_compare(x: f32) -> bool {
    x == 1.5 // float-eq @33
}

pub fn misuse(x: Option<u32>) -> u32 {
    // fedlint::allow(no-panic-paths)
    x.unwrap() // the pragma above has no reason: pragma-syntax @37, finding stays @38
}
