//! Seeded `untrusted-input-taint` violations: a length read from disk
//! flows through two calls into allocation, arithmetic, and indexing.

pub fn load_report(path: &std::path::Path) -> Vec<u8> {
    let raw = std::fs::read(path).unwrap_or_default();
    parse_report(&raw)
}

fn parse_report(payload: &[u8]) -> Vec<u8> {
    let n = header_len(payload);
    let mut out = Vec::with_capacity(n);
    let end = n * 4;
    if let Some(&b) = payload.get(end) {
        out.push(b);
    }
    let tail = payload[end];
    out.push(tail);
    out
}

fn header_len(payload: &[u8]) -> usize {
    payload.first().copied().unwrap_or(0) as usize
}
