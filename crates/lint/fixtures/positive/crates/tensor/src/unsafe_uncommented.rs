//! Positive fixture: `unsafe` without a SAFETY justification.

#[target_feature(enable = "avx2")]
unsafe fn kernel(x: &[f32]) -> f32 {
    // unsafe-needs-safety-comment (line 4)
    x.iter().sum()
}

pub fn caller(x: &[f32]) -> f32 {
    unsafe { kernel(x) } // unsafe-needs-safety-comment (line 10)
}
