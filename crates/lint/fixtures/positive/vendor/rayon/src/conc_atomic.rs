//! Seeded atomic-ordering-pairing violations: a Release store and an
//! Acquire load, each on a field no other site touches.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Beacon {
    pub ready: AtomicUsize,
    pub epoch: AtomicUsize,
}

pub fn publish(b: &Beacon) {
    b.ready.store(1, Ordering::Release);
}

pub fn observe(b: &Beacon) -> usize {
    b.epoch.load(Ordering::Acquire)
}
