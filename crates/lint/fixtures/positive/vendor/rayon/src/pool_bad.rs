//! Seeded `pool-discipline` violations: a naked Relaxed ordering, a
//! reversed lock pair, and an unjustified `unsafe impl Send`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub struct Shared {
    next: AtomicUsize,
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

unsafe impl Send for Shared {}

pub fn claim(s: &Shared) -> usize {
    s.next.fetch_add(1, Ordering::Relaxed)
}

pub fn forward(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    *ga + *gb
}

pub fn backward(s: &Shared) -> u32 {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    *ga - *gb
}
