//! Seeded cross-file lock-order cycle, first half: hold `alpha`, then
//! acquire `beta` through a call into `conc_cycle_b`.

use std::sync::Mutex;

pub struct Rings {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

pub fn alpha_then_beta(r: &Rings) -> u32 {
    let g = r.alpha.lock().unwrap();
    let v = grab_beta(r);
    *g + v
}
