//! Seeded cross-file lock-order cycle, second half: `grab_beta` is the
//! callee the first half reaches while holding `alpha`; `beta_then_alpha`
//! closes the cycle by holding `beta` across a call that takes `alpha`.

use std::sync::Mutex;

pub fn grab_beta(r: &crate::Rings) -> u32 {
    let g = r.beta.lock().unwrap();
    *g
}

pub fn beta_then_alpha(r: &crate::Rings) -> u32 {
    let g = r.beta.lock().unwrap();
    let v = grab_alpha(r);
    *g - v
}

pub fn grab_alpha(r: &crate::Rings) -> u32 {
    let g = r.alpha.lock().unwrap();
    *g
}
