//! Seeded guard-across-blocking violations: a guard held across a direct
//! `thread::sleep`, and one held across a call whose callee writes to a
//! socket.

use std::io::Write;
use std::sync::Mutex;

pub struct Station {
    pub journal: Mutex<Vec<u8>>,
}

pub fn nap_with_journal(st: &Station) {
    let g = st.journal.lock().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1));
    drop(g);
}

pub fn send_with_journal(st: &Station, out: &mut std::net::TcpStream) {
    let g = st.journal.lock().unwrap();
    ship(out);
    drop(g);
}

fn ship(out: &mut std::net::TcpStream) {
    let _ = out.write_all(b"frame");
}
