//! Negative fixture: `unsafe` with proper SAFETY justifications, in both
//! positions fedlint's walk-up must handle (above attributes, and directly
//! above an inline block).

// SAFETY: callers must verify avx2 support via is_x86_feature_detected!
// before calling; the body only does bounds-checked slice reads.
#[target_feature(enable = "avx2")]
unsafe fn kernel(x: &[f32]) -> f32 {
    x.iter().sum()
}

pub fn caller(x: &[f32]) -> f32 {
    if x.len() > 1 {
        // SAFETY: feature support is assumed verified by the caller of this
        // fixture function; this exercises the walk-up over comment lines.
        return unsafe { kernel(x) };
    }
    0.0
}

// fedlint-fixture: covers unsafe-needs-safety-comment
