//! Negative fixture: a wire-codec decode path that survives hostile
//! lengths — every size is checked, every access bounds-checked.

pub enum CodecError {
    Truncated,
}

pub fn decode_frame(bytes: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    let total = n.checked_mul(4).ok_or(CodecError::Truncated)?;
    let payload = bytes.get(..total).ok_or(CodecError::Truncated)?;
    Ok(payload
        .chunks_exact(4)
        .map(|c| {
            let mut arr = [0u8; 4];
            arr.copy_from_slice(c);
            f32::from_le_bytes(arr)
        })
        .collect())
}

// fedlint-fixture: covers codec-checked-arith
