//! Checked handling of untrusted input: sanitizer calls launder the taint
//! before any allocation, arithmetic, or indexing.

pub fn load_report_ok(path: &std::path::Path) -> Vec<u8> {
    let raw = std::fs::read(path).unwrap_or_default();
    parse_report_ok(&raw)
}

fn parse_report_ok(payload: &[u8]) -> Vec<u8> {
    let n = header_len_ok(payload).min(1024);
    let mut out = Vec::with_capacity(n);
    let end = n.saturating_mul(4);
    if let Some(&b) = payload.get(end) {
        out.push(b);
    }
    out
}

fn header_len_ok(payload: &[u8]) -> usize {
    payload.first().copied().unwrap_or(0) as usize
}

// fedlint-fixture: covers untrusted-input-taint
