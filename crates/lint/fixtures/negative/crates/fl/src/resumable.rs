//! Negative fixture: a public entry point whose helper is Result-returning
//! (no reachable panic), and distinct RNG streams per scope. The `streams`
//! constants here must not collide with `clean.rs`'s. Zero findings.

pub mod streams {
    pub const ROUND: u64 = 1;
    pub const CLIENT: u64 = 2;
}

pub fn entry(x: Option<u32>) -> Result<u32, String> {
    helper(x)
}

fn helper(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn two_streams(seed: u64, round: u64) {
    let _a = derive(seed, &[streams::ROUND, round]);
    let _b = derive(seed, &[streams::CLIENT, round]);
}

// fedlint-fixture: covers rng-stream-collision, panic-reachability
