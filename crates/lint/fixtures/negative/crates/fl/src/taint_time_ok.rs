//! Wall-clock readings are fine in telemetry-only types — `Telemetry` is
//! not replayed state, so it is not a determinism sink.

pub struct Telemetry {
    pub wall_ms: u64,
}

pub fn observe() -> Telemetry {
    let wall = std::time::Instant::now().elapsed().as_millis() as u64;
    Telemetry { wall_ms: wall }
}

// fedlint-fixture: covers determinism-taint
