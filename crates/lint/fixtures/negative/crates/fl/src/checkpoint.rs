//! Negative fixture: codec and persist code in the blessed shapes — checked
//! arithmetic, `.get`-based decoding, and the full tmp → fsync → rename
//! write protocol. Must produce zero findings.

use std::fs::File;
use std::io::Write;

pub struct Dec {
    bytes: Vec<u8>,
    pos: usize,
}

impl Dec {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }
}

pub fn decode_header(bytes: &[u8]) -> Option<u32> {
    bytes.first().copied().map(u32::from)
}

pub fn save_atomic(dir: &std::path::Path, data: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join("ckpt.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    f.sync_all()?;
    std::fs::rename(&tmp, dir.join("ckpt.bin"))?;
    Ok(())
}

// fedlint-fixture: covers atomic-write-discipline, codec-checked-arith
