//! Negative fixture: superficially scary code that must produce ZERO
//! findings. It doubles as an integration test of the lexer's literal
//! awareness — every banned construct below appears only inside strings,
//! raw strings, char literals, comments, or test code, or carries a valid
//! allow pragma.

pub mod streams {
    pub const SAMPLING: u64 = 5;
}

// Mentions in comments are fine: unwrap(), HashMap, unsafe, panic!, == 1.0

pub fn strings_hide_everything() -> (usize, char, &'static str) {
    let s = "x.unwrap() HashMap unsafe panic! == 1.0";
    let raw = r#"expect("x") HashSet todo! derive(seed, &[42]) != 0.5"#;
    let byte = b"unimplemented! seed_from_u64(7)";
    let ch = 'u'; // a char literal, not the start of `unwrap`
    (s.len() + raw.len() + byte.len(), ch, "done")
}

pub fn pragma_justified(x: Option<u32>) -> u32 {
    // fedlint::allow(no-panic-paths): fixture — invariant: caller always passes Some
    x.unwrap()
}

pub fn trailing_pragma(x: Option<u32>) -> u32 {
    x.unwrap() // fedlint::allow(no-panic-paths): fixture — same-line pragma form
}

pub fn good_rng(seed: u64) {
    let _rng = derive(seed, &[streams::SAMPLING, 3]); // named stream leads; round index after is fine
}

pub fn ordered() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    m.len()
}

pub fn tolerant_compare(x: f32) -> bool {
    (x - 1.5).abs() < 1e-6
}

pub fn sentinel_compare(x: f32) -> bool {
    // fedlint::allow(float-eq): fixture — exact-zero sentinel semantics
    x == 0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_are_exempt() {
        use std::collections::HashMap;
        let m: HashMap<u32, f32> = HashMap::new();
        assert!(m.get(&0).copied().unwrap_or(1.0) == 1.0);
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

// fedlint-fixture: covers deterministic-iteration, no-panic-paths, rng-stream-discipline, float-eq, pragma-syntax
