//! Negative fixture: parallel chains that must produce ZERO
//! `deterministic-reduction` findings — either they materialise results
//! in index order before reducing (collect-then-reduce), the reduction
//! runs sequentially inside a worker's closure, or the chain never
//! reduces at all.

pub fn collect_then_reduce(xs: &[f32]) -> f32 {
    let doubled: Vec<f32> = xs.par_iter().map(|x| x * 2.0).collect();
    doubled.iter().fold(0.0, |a, b| a + b)
}

pub fn sequential_sum_inside_closure(rows: &[Vec<f32>]) -> Vec<f32> {
    rows.par_iter().map(|row| row.iter().sum()).collect()
}

pub fn for_each_never_reduces(out: &mut [f32]) {
    out.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
        for x in chunk {
            *x = i as f32;
        }
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_reduce_directly() {
        let v = vec![1.0f32, 2.0];
        let s: f32 = v.par_iter().map(|x| *x).sum();
        assert!(s > 2.9);
    }
}

// fedlint-fixture: covers deterministic-reduction
