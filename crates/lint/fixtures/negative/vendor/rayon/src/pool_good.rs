//! Disciplined pool shapes: a justified Relaxed ordering, one global lock
//! order, a guard dropped before the next acquisition, and a documented
//! `unsafe impl`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub struct Shared {
    next: AtomicUsize,
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

// SAFETY: Shared owns no thread-affine state; the Mutexes serialize every
// access to the interior values.
unsafe impl Send for Shared {}

pub fn claim(s: &Shared) -> usize {
    // fedlint::allow(pool-discipline): pure claim counter; fetch_add atomicity alone guarantees unique indices, and claim order never reaches results.
    s.next.fetch_add(1, Ordering::Relaxed)
}

pub fn first_then_second(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    *ga + *gb
}

pub fn also_first_then_second(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    *ga - *gb
}

pub fn drop_before_reacquire(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap();
    let v = *ga;
    drop(ga);
    let gb = s.b.lock().unwrap();
    *gb + v
}

// fedlint-fixture: covers pool-discipline
