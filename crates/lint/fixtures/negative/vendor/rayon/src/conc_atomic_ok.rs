//! Paired release/acquire atomics: the Release store's partner Acquire
//! load exists on the same field, and SeqCst sites satisfy either side
//! without demanding one.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Gate {
    pub latch: AtomicUsize,
    pub count: AtomicUsize,
}

pub fn open(g: &Gate) {
    g.latch.store(1, Ordering::Release);
    g.count.fetch_add(1, Ordering::SeqCst);
}

pub fn is_open(g: &Gate) -> bool {
    g.latch.load(Ordering::Acquire) == 1
}

// fedlint-fixture: covers atomic-ordering-pairing
