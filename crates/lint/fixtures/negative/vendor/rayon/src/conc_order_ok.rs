//! One global acquisition order (`outer` before `inner`), both directly
//! and while holding `outer` across a call — the safe shape of the
//! interprocedural lock-order analysis.

use std::sync::Mutex;

pub struct Nested {
    pub outer: Mutex<u32>,
    pub inner: Mutex<u32>,
}

pub fn outer_then_inner(n: &Nested) -> u32 {
    let g = n.outer.lock().unwrap();
    let v = grab_inner(n);
    *g + v
}

pub fn grab_inner(n: &Nested) -> u32 {
    let g = n.inner.lock().unwrap();
    *g
}

pub fn straight_line(n: &Nested) -> u32 {
    let go = n.outer.lock().unwrap();
    let gi = n.inner.lock().unwrap();
    *go * *gi
}

// fedlint-fixture: covers lock-order-global
