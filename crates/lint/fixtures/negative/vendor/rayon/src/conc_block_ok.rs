//! Safe blocking shapes: the guard is dropped before the thread sleeps,
//! and a `Condvar` wait holds only its own guard (which the condvar
//! releases atomically).

use std::sync::{Condvar, Mutex};

pub struct Inbox {
    pub mail: Mutex<Vec<u8>>,
    pub bell: Condvar,
}

pub fn drain_then_sleep(ib: &Inbox) {
    let mut g = ib.mail.lock().unwrap();
    g.clear();
    drop(g);
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn wait_for_mail(ib: &Inbox) -> usize {
    let mut g = ib.mail.lock().unwrap();
    while g.is_empty() {
        g = ib.bell.wait(g).unwrap();
    }
    g.len()
}

// fedlint-fixture: covers guard-across-blocking
