//! The zero-finding baseline, pinned: `fedlint --deny` must pass on this
//! workspace. Any PR that reintroduces a HashMap on a replayed path, an
//! unjustified `unsafe`, or a panic in library code fails this test (and the
//! `== fedlint ==` CI step) with a file:line diagnostic.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_finding_free() {
    let report = lint::scan_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "fedlint must stay clean on the workspace; drive these to zero or add justified pragmas:\n{}",
        lint::render_human(&report)
    );
    // Sanity: the scan actually covered the workspace, not an empty dir.
    assert!(
        report.files_scanned >= 50,
        "only {} files scanned — walker broke?",
        report.files_scanned
    );
}

#[test]
fn workspace_scan_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lint::scan_workspace(&root).expect("scan 1");
    let b = lint::scan_workspace(&root).expect("scan 2");
    assert_eq!(lint::render_human(&a), lint::render_human(&b));
    assert_eq!(lint::render_json(&a), lint::render_json(&b));
}

/// The committed ratchet baseline must parse, round-trip byte-identically
/// (so `--update-baseline` never produces diff noise), and classify the
/// live workspace scan with zero *new* findings — the exact invariant the
/// `--deny --baseline` CI step enforces.
#[test]
fn committed_baseline_round_trips_and_admits_no_new_findings() {
    let path = workspace_root().join("results").join("lint_baseline.json");
    let text = std::fs::read_to_string(&path).expect("committed baseline exists");
    let baseline = lint::baseline::Baseline::parse(&text).expect("baseline parses");
    assert_eq!(
        baseline.render(),
        text,
        "baseline file must be byte-identical to its own re-render; \
         regenerate with `fedlint --baseline results/lint_baseline.json --update-baseline`"
    );
    let report = lint::scan_workspace(&workspace_root()).expect("workspace scans");
    let classified = baseline.classify(&report);
    assert_eq!(
        classified.fresh(),
        0,
        "workspace has findings not in the committed baseline"
    );
}
