//! Property tests for the fedlint lexer, item parser, and dataflow engine:
//! arbitrary byte soup must never panic them, hang them, or make them
//! nondeterministic; parsed item spans and def-use spans must always nest
//! properly; and the taint lattice must be monotone (adding a source can
//! only add findings, never remove one).

use lint::dataflow::{fn_flows, taint_findings, untrusted_input_spec};
use lint::items::parse_items;
use lint::lexer::{lex, TokKind};
use lint::rules::{analyze_source, FileContext};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Lex `src` and run the item parser the way `analyze_source` does:
/// comment tokens stripped, every token treated as non-test code.
fn parse(src: &str) -> Vec<lint::items::Item> {
    let toks: Vec<_> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let in_test = vec![false; toks.len()];
    parse_items(&toks, &in_test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer survives arbitrary bytes (lossy-decoded, as the scanner
    /// does for on-disk files) and is deterministic.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward lexer-relevant delimiters, to hit the
    /// string/comment/char state machines far more often than uniform bytes
    /// would.
    #[test]
    fn delimiter_soup_never_panics(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "\"", "'", "r#\"", "\"#", "/*", "*/", "//", "\n",
            "\\", "b'", "unsafe", "1.0", "==", "r#", "#", "x",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .collect();
        let toks = lex(&src);
        // Line numbers never decrease through the stream.
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            last = t.line;
        }
    }

    /// Whatever surrounds it, a cooked string's payload never leaks
    /// identifier tokens.
    #[test]
    fn string_payloads_never_leak(n in 0usize..64) {
        let src = format!("let s = \"{} unwrap() unsafe\";", "x".repeat(n));
        let ids: Vec<String> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        prop_assert_eq!(ids, vec!["let".to_string(), "s".to_string()]);
    }

    /// The item parser survives arbitrary byte soup and is deterministic.
    #[test]
    fn item_parser_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let a = parse(&src);
        let b = parse(&src);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward item-parser-relevant keywords and
    /// delimiters: unbalanced braces, dangling attributes, half-written
    /// fn/impl/mod headers. Must never panic, and every item's body span
    /// must either nest inside or be disjoint from every other's.
    #[test]
    fn item_spans_nest_on_structured_soup(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "fn f", "mod m", "impl T", "{", "}", "(", ")", ";",
            "#[cfg(test)]", "#[test]", "pub", "for U", "<'a>", "where T:",
            "x", "\n",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .map(|p| format!("{} ", p))
            .collect();
        let items = parse(&src);
        for (i, a) in items.iter().enumerate() {
            let Some((a0, a1)) = a.body else { continue };
            prop_assert!(a0 <= a1, "inverted span on {:?}", a);
            for b in items.iter().skip(i + 1) {
                let Some((b0, b1)) = b.body else { continue };
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                let disjoint = a1 < b0 || b1 < a0;
                prop_assert!(
                    nested || disjoint,
                    "overlapping item spans: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
    }

    /// The dataflow extractor survives arbitrary byte soup and is
    /// deterministic (runs on the same comment-free stream the scanner uses).
    #[test]
    fn dataflow_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks: Vec<_> = lex(&src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let in_test = vec![false; toks.len()];
        let items = parse_items(&toks, &in_test);
        let a = fn_flows(&toks, &items);
        let b = fn_flows(&toks, &items);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward dataflow-relevant shapes: half-written
    /// `let`s, assignments, reads, calls, returns. The whole analysis —
    /// per-file rules plus the interprocedural taint pass — must never
    /// panic, and every def's right-hand-side span must stay in bounds and
    /// nest-or-stay-disjoint with every other's.
    #[test]
    fn def_use_spans_nest_on_structured_soup(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "fn f(x: usize)", "{", "}", "let y =", "std::fs::read(p)",
            "x + 1", "buf[i]", "Vec::with_capacity(n)", "return x", ";",
            "f(x)", ".min(4)", "=", "if let Some(z)", "\n", "x",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .map(|p| format!("{} ", p))
            .collect();
        let ctx = FileContext {
            crate_name: "fl",
            rel_path: "crates/fl/src/soup.rs",
            is_bin: false,
        };
        let fa = analyze_source(&ctx, &src);
        let files = [fa];
        let t1 = taint_findings(&files, &untrusted_input_spec());
        let t2 = taint_findings(&files, &untrusted_input_spec());
        prop_assert_eq!(t1, t2);
        let flows = fn_flows(&files[0].code, &files[0].items);
        let spans: Vec<(usize, usize)> = flows
            .iter()
            .flat_map(|f| f.defs.iter().map(|d| d.rhs))
            .collect();
        for (i, &(a0, a1)) in spans.iter().enumerate() {
            prop_assert!(a0 <= a1, "inverted def span");
            prop_assert!(a1 <= files[0].code.len(), "def span out of bounds");
            for &(b0, b1) in spans.iter().skip(i + 1) {
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                let disjoint = a1 <= b0 || b1 <= a0;
                prop_assert!(
                    nested || disjoint,
                    "overlapping def spans: {:?} vs {:?}",
                    (a0, a1),
                    (b0, b1)
                );
            }
        }
    }

    /// Monotone taint lattice: running with a superset of sources can add
    /// findings but never remove one — pinned as (file, line) set inclusion
    /// (chains, and so messages, may legitimately differ).
    #[test]
    fn taint_lattice_is_monotone(picks in proptest::collection::vec(0usize..16, 0..192)) {
        const PIECES: [&str; 16] = [
            "fn g(buf: &[u8])", "{", "}", "let n =", "std::fs::read(p)",
            "std::fs::read_to_string(p)", "f.read_to_end(&mut buf)", "n * 2",
            "buf[n]", "Vec::with_capacity(n)", ";", "g(&n)", ".len()",
            "=", "\n", "n",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .map(|p| format!("{} ", p))
            .collect();
        let ctx = FileContext {
            crate_name: "fl",
            rel_path: "crates/fl/src/soup.rs",
            is_bin: false,
        };
        let files = [analyze_source(&ctx, &src)];
        let mut small = untrusted_input_spec();
        small.source_calls = vec![("fs", "read")];
        small.source_mut_args = Vec::new();
        let big = untrusted_input_spec();
        let key = |f: &lint::Finding| (f.file.clone(), f.line);
        let small_set: BTreeSet<_> = taint_findings(&files, &small).iter().map(key).collect();
        let big_set: BTreeSet<_> = taint_findings(&files, &big).iter().map(key).collect();
        prop_assert!(
            small_set.is_subset(&big_set),
            "adding sources removed findings: {:?} not in {:?}",
            small_set.difference(&big_set).collect::<Vec<_>>(),
            big_set
        );
    }
}
