//! Property tests for the fedlint lexer: arbitrary byte soup must never
//! panic it, hang it, or make it nondeterministic.

use lint::lexer::{lex, TokKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer survives arbitrary bytes (lossy-decoded, as the scanner
    /// does for on-disk files) and is deterministic.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward lexer-relevant delimiters, to hit the
    /// string/comment/char state machines far more often than uniform bytes
    /// would.
    #[test]
    fn delimiter_soup_never_panics(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "\"", "'", "r#\"", "\"#", "/*", "*/", "//", "\n",
            "\\", "b'", "unsafe", "1.0", "==", "r#", "#", "x",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .collect();
        let toks = lex(&src);
        // Line numbers never decrease through the stream.
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            last = t.line;
        }
    }

    /// Whatever surrounds it, a cooked string's payload never leaks
    /// identifier tokens.
    #[test]
    fn string_payloads_never_leak(n in 0usize..64) {
        let src = format!("let s = \"{} unwrap() unsafe\";", "x".repeat(n));
        let ids: Vec<String> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        prop_assert_eq!(ids, vec!["let".to_string(), "s".to_string()]);
    }
}
