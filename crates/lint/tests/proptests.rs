//! Property tests for the fedlint lexer and item parser: arbitrary byte
//! soup must never panic them, hang them, or make them nondeterministic,
//! and parsed item spans must always nest properly.

use lint::items::parse_items;
use lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Lex `src` and run the item parser the way `analyze_source` does:
/// comment tokens stripped, every token treated as non-test code.
fn parse(src: &str) -> Vec<lint::items::Item> {
    let toks: Vec<_> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let in_test = vec![false; toks.len()];
    parse_items(&toks, &in_test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer survives arbitrary bytes (lossy-decoded, as the scanner
    /// does for on-disk files) and is deterministic.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward lexer-relevant delimiters, to hit the
    /// string/comment/char state machines far more often than uniform bytes
    /// would.
    #[test]
    fn delimiter_soup_never_panics(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "\"", "'", "r#\"", "\"#", "/*", "*/", "//", "\n",
            "\\", "b'", "unsafe", "1.0", "==", "r#", "#", "x",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .collect();
        let toks = lex(&src);
        // Line numbers never decrease through the stream.
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            last = t.line;
        }
    }

    /// Whatever surrounds it, a cooked string's payload never leaks
    /// identifier tokens.
    #[test]
    fn string_payloads_never_leak(n in 0usize..64) {
        let src = format!("let s = \"{} unwrap() unsafe\";", "x".repeat(n));
        let ids: Vec<String> = lex(&src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        prop_assert_eq!(ids, vec!["let".to_string(), "s".to_string()]);
    }

    /// The item parser survives arbitrary byte soup and is deterministic.
    #[test]
    fn item_parser_never_panics_on_byte_soup(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let a = parse(&src);
        let b = parse(&src);
        prop_assert_eq!(a, b);
    }

    /// Structured soup biased toward item-parser-relevant keywords and
    /// delimiters: unbalanced braces, dangling attributes, half-written
    /// fn/impl/mod headers. Must never panic, and every item's body span
    /// must either nest inside or be disjoint from every other's.
    #[test]
    fn item_spans_nest_on_structured_soup(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "fn f", "mod m", "impl T", "{", "}", "(", ")", ";",
            "#[cfg(test)]", "#[test]", "pub", "for U", "<'a>", "where T:",
            "x", "\n",
        ];
        let src: String = picks
            .iter()
            .map(|&i| PIECES.get(i).copied().unwrap_or(""))
            .map(|p| format!("{} ", p))
            .collect();
        let items = parse(&src);
        for (i, a) in items.iter().enumerate() {
            let Some((a0, a1)) = a.body else { continue };
            prop_assert!(a0 <= a1, "inverted span on {:?}", a);
            for b in items.iter().skip(i + 1) {
                let Some((b0, b1)) = b.body else { continue };
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                let disjoint = a1 < b0 || b1 < a0;
                prop_assert!(
                    nested || disjoint,
                    "overlapping item spans: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
    }
}
