//! `--explain` backing table: RULE_DOCS must cover every rule exactly
//! once, stay sorted (deterministic `--explain` listing order), and agree
//! with the README rule list so the two cannot drift apart.

use lint::rules::{RULE_DOCS, RULE_NAMES};

#[test]
fn rule_docs_cover_every_rule_plus_pragma_syntax_exactly_once() {
    let doc_names: Vec<&str> = RULE_DOCS.iter().map(|(name, _)| *name).collect();
    let mut expected: Vec<&str> = RULE_NAMES.to_vec();
    expected.push("pragma-syntax");
    expected.sort_unstable();
    assert_eq!(doc_names, expected);
}

#[test]
fn rule_docs_are_sorted_and_substantive() {
    let mut sorted = RULE_DOCS.to_vec();
    sorted.sort_by_key(|(name, _)| *name);
    assert_eq!(RULE_DOCS.to_vec(), sorted, "RULE_DOCS must stay sorted");
    for (name, doc) in RULE_DOCS {
        assert!(
            doc.len() > 60,
            "doc for {name} is too short to be useful: {doc:?}"
        );
    }
}

#[test]
fn readme_rule_list_matches_rule_names() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("read README.md");
    for rule in RULE_NAMES {
        assert!(
            readme.contains(rule),
            "README rule list is missing `{rule}` — it must stay in sync with RULE_NAMES"
        );
    }
    assert!(
        readme.contains(&format!("{} rules", RULE_NAMES.len())),
        "README must state the rule count ({} rules)",
        RULE_NAMES.len()
    );
}
