//! Rule-coverage meta-test: every rule in `RULE_NAMES` (plus the built-in
//! `pragma-syntax`) must have at least one positive fixture finding and at
//! least one negative fixture that declares it clean-covers the rule via a
//! `// fedlint-fixture: covers <rule>[, <rule>]` marker. New rules cannot
//! ship untested: adding a name to `RULE_NAMES` without fixtures fails here.

use lint::rules::RULE_NAMES;
use lint::scan_workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

const MARKER: &str = "// fedlint-fixture: covers ";

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

/// All rule names the suite must cover.
fn all_rules() -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = RULE_NAMES.to_vec();
    rules.push("pragma-syntax");
    rules
}

/// Collect `covers` markers from every `.rs` file under `dir`, as
/// rule -> files claiming negative coverage.
fn collect_markers(dir: &Path, out: &mut BTreeMap<String, Vec<String>>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_markers(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let text = std::fs::read_to_string(&path).expect("fixture readable");
            for line in text.lines() {
                let Some(rules) = line.trim().strip_prefix(MARKER) else {
                    continue;
                };
                for rule in rules.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    out.entry(rule.to_string())
                        .or_default()
                        .push(path.display().to_string());
                }
            }
        }
    }
}

#[test]
fn every_rule_has_a_positive_fixture_finding() {
    let report = scan_workspace(&fixture_root("positive")).expect("positive fixture scans");
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in all_rules() {
        assert!(
            fired.contains(rule),
            "rule `{rule}` has no positive fixture finding — every rule needs a fixture that \
             makes it fire"
        );
    }
}

#[test]
fn every_rule_has_a_negative_coverage_marker() {
    let mut markers: BTreeMap<String, Vec<String>> = BTreeMap::new();
    collect_markers(&fixture_root("negative"), &mut markers);
    let known = all_rules();
    for (rule, files) in &markers {
        assert!(
            known.contains(&rule.as_str()),
            "marker in {:?} names unknown rule `{rule}` — fix the typo or register the rule",
            files
        );
    }
    for rule in known {
        assert!(
            markers.contains_key(rule),
            "rule `{rule}` has no negative fixture marker — add \
             `{MARKER}{rule}` to a clean fixture exercising its safe shape"
        );
    }
}

#[test]
fn negative_markers_sit_in_a_clean_tree() {
    // The markers certify clean coverage, so the tree they sit in must
    // actually be clean — otherwise a marker could point at a file whose
    // "safe shape" secretly fires.
    let report = scan_workspace(&fixture_root("negative")).expect("negative fixture scans");
    assert_eq!(report.findings, Vec::new());
}

#[test]
fn positive_fixture_pins_exact_lines_for_dataflow_rules() {
    // Exact-line anchors for the v3 rules, per the coverage contract: a
    // finding that drifts off its seeded line is a precision regression.
    let report = scan_workspace(&fixture_root("positive")).expect("positive fixture scans");
    let lines = |rule: &str, suffix: &str| -> Vec<u32> {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.file.ends_with(suffix))
            .map(|f| f.line)
            .collect()
    };
    assert_eq!(
        lines("untrusted-input-taint", "taint_len.rs"),
        vec![11, 12, 16]
    );
    assert_eq!(lines("determinism-taint", "taint_time.rs"), vec![11, 24]);
    assert_eq!(lines("pool-discipline", "pool_bad.rs"), vec![13, 16]);
    // v4 concurrency rules.
    assert_eq!(lines("lock-order-global", "pool_bad.rs"), vec![21, 27]);
    assert_eq!(lines("lock-order-global", "conc_cycle_a.rs"), vec![13]);
    assert_eq!(lines("lock-order-global", "conc_cycle_b.rs"), vec![14]);
    assert_eq!(
        lines("guard-across-blocking", "conc_block.rs"),
        vec![14, 20]
    );
    assert_eq!(
        lines("atomic-ordering-pairing", "conc_atomic.rs"),
        vec![12, 16]
    );
}
