//! Fixture-based rule tests: one positive and one negative case per rule,
//! exercised through the same `scan_workspace` driver the binary uses.

use lint::{scan_workspace, Report};
use std::path::PathBuf;

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

fn scan(which: &str) -> Report {
    scan_workspace(&fixture_root(which)).expect("fixture tree scans")
}

fn lines_for(report: &Report, rule: &str, file_suffix: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.file.ends_with(file_suffix))
        .map(|f| f.line)
        .collect()
}

#[test]
fn positive_fixture_fires_every_rule() {
    let report = scan("positive");
    let v = "violations.rs";
    assert_eq!(
        lines_for(&report, "no-panic-paths", v),
        vec![8, 9, 11, 14, 17, 38],
        "unwrap/expect/panic!/todo!/unimplemented! + pragma-less unwrap"
    );
    assert_eq!(
        lines_for(&report, "deterministic-iteration", v),
        vec![5, 23]
    );
    assert_eq!(lines_for(&report, "rng-stream-discipline", v), vec![28, 29]);
    assert_eq!(lines_for(&report, "float-eq", v), vec![33]);
    assert_eq!(
        lines_for(&report, "deterministic-reduction", "par_reduce.rs"),
        vec![6, 13, 17, 21],
        "sum, multi-line fold, reduce, turbofish sum — each directly on a par chain"
    );
    assert_eq!(lines_for(&report, "pragma-syntax", v), vec![37]);
    assert_eq!(
        lines_for(
            &report,
            "unsafe-needs-safety-comment",
            "unsafe_uncommented.rs"
        ),
        vec![4, 10],
        "both the unsafe fn and the unsafe block"
    );
    // v2 structural rules.
    assert_eq!(
        lines_for(&report, "codec-checked-arith", "checkpoint.rs"),
        vec![13, 14, 21],
        "unchecked `+` on pos, slice index in Dec::take, bare index in decode_header"
    );
    assert_eq!(
        lines_for(&report, "codec-checked-arith", "fl/src/codec.rs"),
        vec![4, 5],
        "unchecked `+` and bare indexing in a decode fn; encode-side wire_len stays silent"
    );
    assert_eq!(
        lines_for(&report, "atomic-write-discipline", "checkpoint.rs"),
        vec![25],
        "File::create without sync_all/rename in the same fn"
    );
    assert_eq!(
        lines_for(&report, "panic-reachability", "chain.rs"),
        vec![3]
    );
    assert_eq!(
        lines_for(&report, "rng-stream-collision", "streams_dup.rs"),
        vec![6, 11],
        "duplicate constant value + re-consumed stream slice"
    );
    // v3 dataflow/taint rules.
    assert_eq!(
        lines_for(&report, "untrusted-input-taint", "taint_len.rs"),
        vec![11, 12, 16],
        "with_capacity, bare `*`, and bare indexing on a disk-derived length"
    );
    assert_eq!(
        lines_for(&report, "determinism-taint", "taint_time.rs"),
        vec![11, 24],
        "wall-clock into a RunResult literal and into seed derivation"
    );
    assert_eq!(
        lines_for(&report, "pool-discipline", "pool_bad.rs"),
        vec![13, 16],
        "unjustified unsafe impl Send and naked Relaxed"
    );
    // v4 interprocedural concurrency rules.
    assert_eq!(
        lines_for(&report, "lock-order-global", "pool_bad.rs"),
        vec![21, 27],
        "both halves of the same-file reversed lock pair"
    );
    assert_eq!(
        lines_for(&report, "lock-order-global", "conc_cycle_a.rs"),
        vec![13],
        "the call site that acquires beta while alpha is held"
    );
    assert_eq!(
        lines_for(&report, "lock-order-global", "conc_cycle_b.rs"),
        vec![14],
        "the call site that closes the cycle in the other file"
    );
    assert_eq!(
        lines_for(&report, "guard-across-blocking", "conc_block.rs"),
        vec![14, 20],
        "direct sleep under a guard, and a call whose callee writes a socket"
    );
    assert_eq!(
        lines_for(&report, "atomic-ordering-pairing", "conc_atomic.rs"),
        vec![12, 16],
        "unpaired Release store and unpaired Acquire load"
    );
}

#[test]
fn concurrency_findings_carry_full_interprocedural_chains() {
    let report = scan("positive");
    let cycle = report
        .findings
        .iter()
        .find(|f| f.rule == "lock-order-global" && f.file.ends_with("conc_cycle_a.rs"))
        .expect("cross-file cycle finding present");
    assert!(
        cycle
            .message
            .contains("`alpha` is held while acquiring `beta`"),
        "cycle must name both locks: {}",
        cycle.message
    );
    assert!(
        cycle.message.contains(
            "lock `alpha` at vendor/rayon/src/conc_cycle_a.rs:12 -> \
             call `grab_beta` at vendor/rayon/src/conc_cycle_a.rs:13 -> \
             lock `beta` at vendor/rayon/src/conc_cycle_b.rs:8"
        ),
        "cycle must spell out the full cross-file acquisition chain: {}",
        cycle.message
    );
    let blocked = report
        .findings
        .iter()
        .find(|f| f.rule == "guard-across-blocking" && f.line == 20)
        .expect("transitive blocking finding present");
    assert!(
        blocked.message.contains(
            "lock `journal` at vendor/rayon/src/conc_block.rs:19 -> \
             call `ship` at vendor/rayon/src/conc_block.rs:20 -> \
             `write_all` at vendor/rayon/src/conc_block.rs:25"
        ),
        "blocking chain must reach the socket write with file:line hops: {}",
        blocked.message
    );
    let atomic = report
        .findings
        .iter()
        .find(|f| f.rule == "atomic-ordering-pairing" && f.line == 12)
        .expect("unpaired release finding present");
    assert!(
        atomic
            .message
            .contains("`ready.store` stores with `Ordering::Release`"),
        "pairing finding must name the field, op, and ordering: {}",
        atomic.message
    );
}

#[test]
fn taint_findings_carry_the_full_chain() {
    let report = scan("positive");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "untrusted-input-taint" && f.line == 11)
        .expect("with_capacity finding present");
    assert_eq!(f.file, "crates/fl/src/taint_len.rs");
    for hop in [
        "`fs::read()` at crates/fl/src/taint_len.rs:5",
        "`raw`",
        "arg #0 of `parse_report`",
        "`header_len()`",
        "`n`",
    ] {
        assert!(
            f.message.contains(hop),
            "chain must spell out hop {hop}: {}",
            f.message
        );
    }
    let d = report
        .findings
        .iter()
        .find(|f| f.rule == "determinism-taint" && f.line == 11)
        .expect("RunResult finding present");
    assert!(
        d.message
            .contains("`Instant::now()` at crates/fl/src/taint_time.rs:18 -> `now` -> `elapsed_ms()` -> `wall`"),
        "return-value hop must appear in the chain: {}",
        d.message
    );
}

#[test]
fn panic_reachability_reports_the_full_call_chain() {
    let report = scan("positive");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-reachability")
        .expect("chain finding present");
    assert_eq!(f.file, "crates/fl/src/chain.rs");
    assert_eq!(f.line, 3, "reported at the public root's declaration");
    assert!(
        f.message.contains("entry -> helper"),
        "message must spell out the call chain: {}",
        f.message
    );
    assert!(
        f.message
            .contains("`.unwrap()` at crates/fl/src/chain.rs:8"),
        "message must anchor the panic site: {}",
        f.message
    );
    // The root's own body has no panic site, so no-panic-paths must NOT fire
    // at line 3 — the two rules partition direct vs transitive panics.
    assert!(lines_for(&report, "no-panic-paths", "chain.rs") == vec![8]);
}

#[test]
fn negative_fixture_is_clean() {
    let report = scan("negative");
    assert_eq!(
        report.findings,
        Vec::new(),
        "negative fixture must scan clean"
    );
    assert_eq!(report.files_scanned, 12);
}

#[test]
fn findings_and_reports_are_deterministic() {
    let a = scan("positive");
    let b = scan("positive");
    assert_eq!(a, b);
    assert_eq!(lint::render_human(&a), lint::render_human(&b));
    assert_eq!(lint::render_json(&a), lint::render_json(&b));
    // Sorted by (file, line, rule, message).
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule, f.message.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn json_report_mentions_each_rule_and_anchor() {
    let report = scan("positive");
    let json = lint::render_json(&report);
    for rule in lint::rules::RULE_NAMES {
        assert!(json.contains(rule), "JSON report missing rule {rule}");
    }
    assert!(json.contains("\"file\": \"crates/fl/src/violations.rs\""));
    assert!(json.contains("\"line\": 8"));
}

#[test]
fn seeded_violation_is_caught_with_file_line_diagnostic() {
    // Acceptance criterion: re-introducing a violation (the old HashMap in
    // hac.rs, or a stripped SAFETY comment) must fail `--deny` with a
    // file:line diagnostic naming the rule. Simulate both on a scratch tree.
    let scratch = std::env::temp_dir().join(format!("fedlint-seed-{}", std::process::id()));
    let src = scratch.join("crates").join("cluster").join("src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("hac.rs"),
        "pub fn assign() -> usize {\n    let m: std::collections::HashMap<usize, usize> =\n        std::collections::HashMap::new();\n    m.len()\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "deterministic-iteration", "hac.rs");
    assert_eq!(hits, vec![2, 3]);
    let human = lint::render_human(&report);
    assert!(
        human.contains("crates/cluster/src/hac.rs:2: [deterministic-iteration]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
}

#[test]
fn seeded_unchecked_tainted_length_is_caught() {
    // Acceptance criterion: an unchecked length that flowed in from disk
    // must fail with a file:line diagnostic carrying the taint chain.
    let scratch = std::env::temp_dir().join(format!("fedlint-taint-{}", std::process::id()));
    let src = scratch.join("crates").join("fl").join("src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("wire.rs"),
        "pub fn decode_len(path: &std::path::Path) -> Vec<u8> {\n    \
         let bytes = std::fs::read(path).unwrap_or_default();\n    \
         let n = bytes.first().copied().unwrap_or(0) as usize;\n    \
         Vec::with_capacity(n * 8)\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "untrusted-input-taint", "wire.rs");
    assert_eq!(hits, vec![4, 4], "arithmetic + allocation sinks on line 4");
    let human = lint::render_human(&report);
    assert!(
        human.contains("crates/fl/src/wire.rs:4: [untrusted-input-taint]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
    assert!(
        human.contains("`fs::read()` at crates/fl/src/wire.rs:2"),
        "diagnostic must name the taint origin:\n{human}"
    );
}

#[test]
fn seeded_instant_into_checkpoint_is_caught() {
    // Acceptance criterion: an `Instant::now` reading flowed into a
    // checkpoint constructor must fail with the full chain in the message.
    let scratch = std::env::temp_dir().join(format!("fedlint-det-{}", std::process::id()));
    let src = scratch.join("crates").join("fl").join("src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("resume.rs"),
        "pub struct Checkpoint {\n    pub stamp: u64,\n}\n\n\
         pub fn snapshot() -> Checkpoint {\n    \
         let stamp = std::time::Instant::now().elapsed().as_nanos() as u64;\n    \
         Checkpoint { stamp }\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "determinism-taint", "resume.rs");
    assert_eq!(hits, vec![7], "the Checkpoint literal is the sink");
    let human = lint::render_human(&report);
    assert!(
        human.contains("crates/fl/src/resume.rs:7: [determinism-taint]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
    assert!(
        human.contains("`Instant::now()` at crates/fl/src/resume.rs:6 -> `stamp`"),
        "diagnostic must carry the taint chain:\n{human}"
    );
}

#[test]
fn seeded_reversed_lock_pair_is_caught() {
    // Acceptance criterion: a reversed Mutex pair in the vendored pool must
    // fail with both cycle halves anchored to file:line.
    let scratch = std::env::temp_dir().join(format!("fedlint-pool-{}", std::process::id()));
    std::fs::create_dir_all(scratch.join("crates")).expect("scratch tree");
    let src = scratch.join("vendor").join("rayon").join("src");
    std::fs::create_dir_all(&src).expect("scratch vendor tree");
    std::fs::write(
        src.join("queue.rs"),
        "use std::sync::Mutex;\n\npub struct Q {\n    pub head: Mutex<u32>,\n    \
         pub tail: Mutex<u32>,\n}\n\npub fn push(q: &Q) -> u32 {\n    \
         let h = q.head.lock().unwrap();\n    let t = q.tail.lock().unwrap();\n    \
         *h + *t\n}\n\npub fn pop(q: &Q) -> u32 {\n    \
         let t = q.tail.lock().unwrap();\n    let h = q.head.lock().unwrap();\n    \
         *h - *t\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "lock-order-global", "queue.rs");
    assert_eq!(hits, vec![10, 16], "both halves of the reversed pair");
    let human = lint::render_human(&report);
    assert!(
        human.contains("vendor/rayon/src/queue.rs:10: [lock-order-global]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
    assert!(
        human.contains("`head` is held while acquiring `tail`"),
        "diagnostic must name the cycle:\n{human}"
    );
    assert!(
        human.contains(
            "lock `head` at vendor/rayon/src/queue.rs:9 -> \
             lock `tail` at vendor/rayon/src/queue.rs:10"
        ),
        "diagnostic must carry the full acquisition chain:\n{human}"
    );
}

#[test]
fn seeded_guard_across_socket_write_is_caught_with_chain() {
    // Acceptance criterion: a guard held across a call whose callee writes
    // to a socket must fail with the exact file:line chain.
    let scratch = std::env::temp_dir().join(format!("fedlint-block-{}", std::process::id()));
    std::fs::create_dir_all(scratch.join("crates")).expect("scratch tree");
    let src = scratch.join("vendor").join("rayon").join("src");
    std::fs::create_dir_all(&src).expect("scratch vendor tree");
    std::fs::write(
        src.join("link.rs"),
        "use std::io::Write;\nuse std::sync::Mutex;\n\npub struct Link {\n    \
         pub meta: Mutex<u64>,\n}\n\npub fn send(l: &Link, out: &mut std::net::TcpStream) {\n    \
         let g = l.meta.lock().unwrap();\n    push_frame(out);\n    drop(g);\n}\n\n\
         fn push_frame(out: &mut std::net::TcpStream) {\n    \
         let _ = out.write_all(b\"x\");\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "guard-across-blocking", "link.rs");
    assert_eq!(hits, vec![10], "the call site holding the guard");
    let human = lint::render_human(&report);
    assert!(
        human.contains("vendor/rayon/src/link.rs:10: [guard-across-blocking]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
    assert!(
        human.contains(
            "lock `meta` at vendor/rayon/src/link.rs:9 -> \
             call `push_frame` at vendor/rayon/src/link.rs:10 -> \
             `write_all` at vendor/rayon/src/link.rs:15"
        ),
        "diagnostic must carry the full interprocedural chain:\n{human}"
    );
}
