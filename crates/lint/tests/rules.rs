//! Fixture-based rule tests: one positive and one negative case per rule,
//! exercised through the same `scan_workspace` driver the binary uses.

use lint::{scan_workspace, Report};
use std::path::PathBuf;

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

fn scan(which: &str) -> Report {
    scan_workspace(&fixture_root(which)).expect("fixture tree scans")
}

fn lines_for(report: &Report, rule: &str, file_suffix: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.file.ends_with(file_suffix))
        .map(|f| f.line)
        .collect()
}

#[test]
fn positive_fixture_fires_every_rule() {
    let report = scan("positive");
    let v = "violations.rs";
    assert_eq!(
        lines_for(&report, "no-panic-paths", v),
        vec![8, 9, 11, 14, 17, 38],
        "unwrap/expect/panic!/todo!/unimplemented! + pragma-less unwrap"
    );
    assert_eq!(
        lines_for(&report, "deterministic-iteration", v),
        vec![5, 23]
    );
    assert_eq!(lines_for(&report, "rng-stream-discipline", v), vec![28, 29]);
    assert_eq!(lines_for(&report, "float-eq", v), vec![33]);
    assert_eq!(
        lines_for(&report, "deterministic-reduction", "par_reduce.rs"),
        vec![6, 13, 17, 21],
        "sum, multi-line fold, reduce, turbofish sum — each directly on a par chain"
    );
    assert_eq!(lines_for(&report, "pragma-syntax", v), vec![37]);
    assert_eq!(
        lines_for(
            &report,
            "unsafe-needs-safety-comment",
            "unsafe_uncommented.rs"
        ),
        vec![4, 10],
        "both the unsafe fn and the unsafe block"
    );
    // v2 structural rules.
    assert_eq!(
        lines_for(&report, "codec-checked-arith", "checkpoint.rs"),
        vec![13, 14, 21],
        "unchecked `+` on pos, slice index in Dec::take, bare index in decode_header"
    );
    assert_eq!(
        lines_for(&report, "codec-checked-arith", "fl/src/codec.rs"),
        vec![4, 5],
        "unchecked `+` and bare indexing in a decode fn; encode-side wire_len stays silent"
    );
    assert_eq!(
        lines_for(&report, "atomic-write-discipline", "checkpoint.rs"),
        vec![25],
        "File::create without sync_all/rename in the same fn"
    );
    assert_eq!(
        lines_for(&report, "panic-reachability", "chain.rs"),
        vec![3]
    );
    assert_eq!(
        lines_for(&report, "rng-stream-collision", "streams_dup.rs"),
        vec![6, 11],
        "duplicate constant value + re-consumed stream slice"
    );
}

#[test]
fn panic_reachability_reports_the_full_call_chain() {
    let report = scan("positive");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-reachability")
        .expect("chain finding present");
    assert_eq!(f.file, "crates/fl/src/chain.rs");
    assert_eq!(f.line, 3, "reported at the public root's declaration");
    assert!(
        f.message.contains("entry -> helper"),
        "message must spell out the call chain: {}",
        f.message
    );
    assert!(
        f.message
            .contains("`.unwrap()` at crates/fl/src/chain.rs:8"),
        "message must anchor the panic site: {}",
        f.message
    );
    // The root's own body has no panic site, so no-panic-paths must NOT fire
    // at line 3 — the two rules partition direct vs transitive panics.
    assert!(lines_for(&report, "no-panic-paths", "chain.rs") == vec![8]);
}

#[test]
fn negative_fixture_is_clean() {
    let report = scan("negative");
    assert_eq!(
        report.findings,
        Vec::new(),
        "negative fixture must scan clean"
    );
    assert_eq!(report.files_scanned, 6);
}

#[test]
fn findings_and_reports_are_deterministic() {
    let a = scan("positive");
    let b = scan("positive");
    assert_eq!(a, b);
    assert_eq!(lint::render_human(&a), lint::render_human(&b));
    assert_eq!(lint::render_json(&a), lint::render_json(&b));
    // Sorted by (file, line, rule, message).
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule, f.message.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn json_report_mentions_each_rule_and_anchor() {
    let report = scan("positive");
    let json = lint::render_json(&report);
    for rule in lint::rules::RULE_NAMES {
        assert!(json.contains(rule), "JSON report missing rule {rule}");
    }
    assert!(json.contains("\"file\": \"crates/fl/src/violations.rs\""));
    assert!(json.contains("\"line\": 8"));
}

#[test]
fn seeded_violation_is_caught_with_file_line_diagnostic() {
    // Acceptance criterion: re-introducing a violation (the old HashMap in
    // hac.rs, or a stripped SAFETY comment) must fail `--deny` with a
    // file:line diagnostic naming the rule. Simulate both on a scratch tree.
    let scratch = std::env::temp_dir().join(format!("fedlint-seed-{}", std::process::id()));
    let src = scratch.join("crates").join("cluster").join("src");
    std::fs::create_dir_all(&src).expect("scratch tree");
    std::fs::write(
        src.join("hac.rs"),
        "pub fn assign() -> usize {\n    let m: std::collections::HashMap<usize, usize> =\n        std::collections::HashMap::new();\n    m.len()\n}\n",
    )
    .expect("write seeded violation");
    let report = scan_workspace(&scratch).expect("scratch scans");
    std::fs::remove_dir_all(&scratch).ok();
    let hits = lines_for(&report, "deterministic-iteration", "hac.rs");
    assert_eq!(hits, vec![2, 3]);
    let human = lint::render_human(&report);
    assert!(
        human.contains("crates/cluster/src/hac.rs:2: [deterministic-iteration]"),
        "diagnostic must carry file:line and the rule name:\n{human}"
    );
}
