//! Audit of the well-known RNG stream labels. Every engine random decision
//! derives statelessly from `(seed, stream, round, client)`, so two streams
//! sharing a value would silently correlate supposedly independent draws
//! (e.g. dropout mirroring sampling). fedlint's `rng-stream-collision` rule
//! catches duplicate *constants* statically; this test pins the actual
//! values so a collision cannot slip in through an unscanned path either.

use fedclust_tensor::rng::streams;

/// Every stream label, in declaration order. Extend when adding a stream.
const ALL: [(&str, u64); 13] = [
    ("DATA", streams::DATA),
    ("PARTITION", streams::PARTITION),
    ("MODEL_INIT", streams::MODEL_INIT),
    ("LOCAL_TRAIN", streams::LOCAL_TRAIN),
    ("SAMPLING", streams::SAMPLING),
    ("EVAL", streams::EVAL),
    ("DROPOUT", streams::DROPOUT),
    ("FAULT_DOWNLINK", streams::FAULT_DOWNLINK),
    ("FAULT_UPLINK", streams::FAULT_UPLINK),
    ("FAULT_CORRUPT", streams::FAULT_CORRUPT),
    ("CODEC", streams::CODEC),
    ("RETRY_BACKOFF", streams::RETRY_BACKOFF),
    ("CHAOS", streams::CHAOS),
];

#[test]
fn stream_values_are_strictly_increasing_and_unique() {
    for pair in ALL.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            a.1 < b.1,
            "streams::{} ({}) must be strictly below streams::{} ({})",
            a.0,
            a.1,
            b.0,
            b.1
        );
    }
}

#[test]
fn stream_values_are_dense_from_one() {
    // Dense numbering keeps the next free label obvious and makes an
    // accidental reuse stand out in review.
    for (i, (name, v)) in ALL.iter().enumerate() {
        assert_eq!(
            *v as usize,
            i + 1,
            "streams::{} broke dense numbering",
            name
        );
    }
}
