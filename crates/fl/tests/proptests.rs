//! Property-based tests of the FL engine's deterministic machinery.

use fedclust_fl::engine::{sample_clients, weighted_average};
use fedclust_fl::metrics::{RoundRecord, RunResult};
use fedclust_fl::FlConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Client sampling respects the `max(R·N, 1)` size rule, stays within
    /// bounds, has no duplicates, and is deterministic per (seed, round).
    #[test]
    fn sampling_contract(
        num_clients in 1usize..200,
        rate_pct in 1u32..100,
        seed in 0u64..1000,
        round in 0usize..50,
    ) {
        let mut cfg = FlConfig::tiny(seed);
        cfg.sample_rate = rate_pct as f32 / 100.0;
        let sampled = sample_clients(num_clients, &cfg, round);
        let expected = ((cfg.sample_rate * num_clients as f32).round() as usize)
            .clamp(1, num_clients);
        prop_assert_eq!(sampled.len(), expected);
        let mut dedup = sampled.clone();
        dedup.dedup();
        prop_assert_eq!(&dedup, &sampled, "sorted output must have no duplicates");
        prop_assert!(sampled.iter().all(|&c| c < num_clients));
        prop_assert_eq!(sample_clients(num_clients, &cfg, round), sampled);
    }

    /// Over many rounds, sampling covers every client (no starvation) for
    /// moderate rates.
    #[test]
    fn sampling_eventually_covers_everyone(seed in 0u64..200) {
        let mut cfg = FlConfig::tiny(seed);
        cfg.sample_rate = 0.3;
        let n = 12;
        let mut seen = vec![false; n];
        for round in 0..60 {
            for c in sample_clients(n, &cfg, round) {
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "unseen clients: {:?}", seen);
    }

    /// Weighted averaging is invariant to permuting its inputs.
    #[test]
    fn weighted_average_permutation_invariant(
        states in proptest::collection::vec(
            (proptest::collection::vec(-5.0f32..5.0, 4), 0.1f32..5.0), 2..6),
    ) {
        let fwd: Vec<(&[f32], f32)> = states.iter().map(|(s, w)| (s.as_slice(), *w)).collect();
        let rev: Vec<(&[f32], f32)> = states.iter().rev().map(|(s, w)| (s.as_slice(), *w)).collect();
        let a = weighted_average(&fwd);
        let b = weighted_average(&rev);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// rounds_to_target and mb_to_target agree with a manual scan of the
    /// history for any monotone-mb trajectory.
    #[test]
    fn targets_match_manual_scan(
        accs in proptest::collection::vec(0.0f64..1.0, 1..12),
        target in 0.0f64..1.0,
    ) {
        let history: Vec<RoundRecord> = accs
            .iter()
            .enumerate()
            .map(|(i, &a)| RoundRecord { round: i + 1, avg_acc: a, cum_mb: (i + 1) as f64 })
            .collect();
        let run = RunResult {
            method: "m".into(),
            final_acc: *accs.last().unwrap(),
            per_client_acc: vec![],
            history: history.clone(),
            num_clusters: None,
            total_mb: history.last().unwrap().cum_mb,
        };
        let manual = history.iter().find(|r| r.avg_acc >= target);
        prop_assert_eq!(run.rounds_to_target(target), manual.map(|r| r.round));
        prop_assert_eq!(run.mb_to_target(target), manual.map(|r| r.cum_mb));
    }
}
