//! Property-based tests of the FL engine's deterministic machinery and the
//! fault-injection layer.

use fedclust_fl::codec::{self, CodecSpec, WIRE_CHECKSUM_BYTES, WIRE_HEADER_BYTES};
use fedclust_fl::engine::{
    init_model, sample_clients, train_round, train_sampled, weighted_average, ClientUpdate,
};
use fedclust_fl::metrics::{RoundRecord, RunResult};
use fedclust_fl::{FaultPlan, FlConfig, Transport};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Client sampling respects the `max(R·N, 1)` size rule, stays within
    /// bounds, has no duplicates, and is deterministic per (seed, round).
    #[test]
    fn sampling_contract(
        num_clients in 1usize..200,
        rate_pct in 1u32..100,
        seed in 0u64..1000,
        round in 0usize..50,
    ) {
        let mut cfg = FlConfig::tiny(seed);
        cfg.sample_rate = rate_pct as f32 / 100.0;
        let sampled = sample_clients(num_clients, &cfg, round);
        let expected = ((cfg.sample_rate * num_clients as f32).round() as usize)
            .clamp(1, num_clients);
        prop_assert_eq!(sampled.len(), expected);
        let mut dedup = sampled.clone();
        dedup.dedup();
        prop_assert_eq!(&dedup, &sampled, "sorted output must have no duplicates");
        prop_assert!(sampled.iter().all(|&c| c < num_clients));
        prop_assert_eq!(sample_clients(num_clients, &cfg, round), sampled);
    }

    /// Over many rounds, sampling covers every client (no starvation) for
    /// moderate rates.
    #[test]
    fn sampling_eventually_covers_everyone(seed in 0u64..200) {
        let mut cfg = FlConfig::tiny(seed);
        cfg.sample_rate = 0.3;
        let n = 12;
        let mut seen = vec![false; n];
        for round in 0..60 {
            for c in sample_clients(n, &cfg, round) {
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "unseen clients: {:?}", seen);
    }

    /// Weighted averaging is invariant to permuting its inputs.
    #[test]
    fn weighted_average_permutation_invariant(
        states in proptest::collection::vec(
            (proptest::collection::vec(-5.0f32..5.0, 4), 0.1f32..5.0), 2..6),
    ) {
        let fwd: Vec<(&[f32], f32)> = states.iter().map(|(s, w)| (s.as_slice(), *w)).collect();
        let rev: Vec<(&[f32], f32)> = states.iter().rev().map(|(s, w)| (s.as_slice(), *w)).collect();
        let a = weighted_average(&fwd);
        let b = weighted_average(&rev);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// rounds_to_target and mb_to_target agree with a manual scan of the
    /// history for any monotone-mb trajectory.
    #[test]
    fn targets_match_manual_scan(
        accs in proptest::collection::vec(0.0f64..1.0, 1..12),
        target in 0.0f64..1.0,
    ) {
        let history: Vec<RoundRecord> = accs
            .iter()
            .enumerate()
            .map(|(i, &a)| RoundRecord { round: i + 1, avg_acc: a, cum_mb: (i + 1) as f64 })
            .collect();
        let run = RunResult {
            method: "m".into(),
            final_acc: *accs.last().unwrap(),
            per_client_acc: vec![],
            history: history.clone(),
            num_clusters: None,
            total_mb: history.last().unwrap().cum_mb,
            faults: Default::default(),
        };
        let manual = history.iter().find(|r| r.avg_acc >= target);
        prop_assert_eq!(run.rounds_to_target(target), manual.map(|r| r.round));
        prop_assert_eq!(run.mb_to_target(target), manual.map(|r| r.cum_mb));
    }
}

/// Arbitrary — possibly out-of-range — fault plans, passed through
/// [`FaultPlan::sanitized`] exactly as `Transport::new` would.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        (0.0f32..1.5, 0usize..5, 0.0f32..1.5),
        (0.0f32..1.0, 0.0f32..3.0, 0.0f32..2.0),
        0.0f32..1.0,
    )
        .prop_map(|((dl, retries, ul), (sr, delay, deadline), cr)| {
            FaultPlan {
                downlink_loss: dl,
                max_downlink_retries: retries,
                uplink_loss: ul,
                straggler_rate: sr,
                straggler_mean_delay: delay,
                round_deadline: deadline,
                corruption_rate: cr,
            }
            .sanitized()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: no fault plan — even total downlink loss — may strand a
    /// round with zero reachable clients.
    #[test]
    fn faulty_broadcast_always_reaches_someone(
        plan in plan_strategy(),
        seed in 0u64..500,
        round in 0usize..20,
        n in 1usize..9,
    ) {
        let mut cfg = FlConfig::tiny(seed);
        cfg.faults = plan;
        let mut t = Transport::new(&cfg);
        let clients: Vec<usize> = (0..n).collect();
        let reached = t.broadcast(round, &clients, 16);
        prop_assert!(!reached.is_empty(), "broadcast stranded the round: {:?}", plan);
        prop_assert!(reached.iter().all(|c| clients.contains(c)));
    }

    /// The quarantine screen removes exactly the non-finite updates and
    /// counts them, leaving finite updates untouched and in order.
    #[test]
    fn quarantine_removes_exactly_the_nonfinite_updates(
        mask in proptest::collection::vec(0u32..3, 1..8),
        seed in 0u64..200,
    ) {
        // Active plan with clean uplinks: only the screen filters anything.
        let mut cfg = FlConfig::tiny(seed);
        cfg.faults = FaultPlan { downlink_loss: 0.5, ..FaultPlan::none() };
        let mut t = Transport::new(&cfg);
        let updates: Vec<ClientUpdate> = mask
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let mut state = vec![0.25f32; 6];
                if m == 1 {
                    state[i % 6] = f32::NAN;
                } else if m == 2 {
                    state[i % 6] = f32::INFINITY;
                }
                ClientUpdate { client: i, state, weight: 1.0, steps: 1 }
            })
            .collect();
        let kept = t.receive(0, updates, None, None);
        let expect: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == 0)
            .map(|(i, _)| i)
            .collect();
        let got: Vec<usize> = kept.iter().map(|u| u.client).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(kept.iter().all(|u| u.state == vec![0.25f32; 6]));
        let bad = mask.iter().filter(|&&m| m != 0).count();
        prop_assert_eq!(t.telemetry().updates_quarantined, bad);
    }
}

proptest! {
    // Each case trains a small federation twice; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// `FaultPlan::none()` is a byte-identical pass-through: the
    /// transport-mediated round loop reproduces the raw
    /// `train_sampled` + `weighted_average` state vectors exactly.
    #[test]
    fn none_plan_reproduces_fault_free_state_vectors(seed in 0u64..100) {
        let fd = fedclust_data::FederatedDataset::build(
            fedclust_data::DatasetProfile::FmnistLike,
            fedclust_data::Partition::LabelSkew { fraction: 0.5 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 4,
                samples_per_class: 10,
                train_fraction: 0.8,
                seed,
            },
        );
        let mut cfg = FlConfig::tiny(seed);
        cfg.rounds = 2;
        let template = init_model(&fd, &cfg);

        let mut manual = template.state_vec();
        for round in 0..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), &cfg, round);
            let updates = train_sampled(&fd, &cfg, &template, &manual, &sampled, round, None);
            let items: Vec<(&[f32], f32)> =
                updates.iter().map(|u| (u.state.as_slice(), u.weight)).collect();
            manual = weighted_average(&items);
        }

        let mut transported = template.state_vec();
        let mut t = Transport::new(&cfg); // cfg.faults is FaultPlan::none()
        for round in 0..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), &cfg, round);
            let updates = train_round(
                &fd, &cfg, &template, &transported, &sampled, round, None, &mut t,
            );
            let items: Vec<(&[f32], f32)> =
                updates.iter().map(|u| (u.state.as_slice(), u.weight)).collect();
            transported = weighted_average(&items);
        }

        prop_assert_eq!(manual, transported);
        prop_assert_eq!(t.telemetry(), fedclust_fl::FaultTelemetry::default());
    }
}

/// Every deterministic non-identity codec the CLI grammar can produce,
/// drawn by index so case selection stays reproducible.
fn any_codec() -> impl Strategy<Value = CodecSpec> {
    (0usize..8).prop_map(|i| {
        let specs = [
            "q8",
            "q4",
            "topk:0.3",
            "topk:0.01",
            "topk:1.0",
            "delta",
            "delta+q8",
            "delta+q4",
        ];
        CodecSpec::parse(specs[i]).expect("fixed specs parse")
    })
}

/// Seal an arbitrary body with a valid trailing FNV-1a checksum, the way
/// the documented wire format specifies — so hostile messages reach the
/// structural checks behind the checksum gate.
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &body {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    body.extend_from_slice(&h.to_le_bytes());
    body
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding is total over arbitrary f32 bit patterns — NaNs,
    /// infinities, subnormals included — and decoding the produced wire
    /// reproduces the encoder's own server-side view bit for bit.
    #[test]
    fn codec_round_trip_is_total_on_arbitrary_bit_patterns(
        bits in proptest::collection::vec(0u32..=u32::MAX, 0..32),
        spec in any_codec(),
        with_reference in 0u32..2,
    ) {
        let payload: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let reference = (with_reference == 1)
            .then(|| payload.iter().map(|v| v * 0.5).collect::<Vec<f32>>());
        let r = reference.as_deref();
        let mut residual = vec![0.0f32; payload.len()];
        let enc = spec.encode(&payload, r, Some(&mut residual), None);
        prop_assert_eq!(enc.wire.len(), spec.wire_len(payload.len()));
        prop_assert_eq!(enc.decoded.len(), payload.len());
        prop_assert_eq!(residual.len(), payload.len());
        let dec = codec::decode(&enc.wire, r).expect("the encoder's wire must decode");
        prop_assert_eq!(dec.len(), enc.decoded.len());
        for (a, b) in dec.iter().zip(&enc.decoded) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "decode drifted from the encoder");
        }
    }

    /// The decoder is total on checksum-valid but otherwise arbitrary
    /// bytes: any outcome is `Ok` or a typed error, never a panic.
    #[test]
    fn decoder_is_total_on_checksum_valid_garbage(
        body in proptest::collection::vec(0u8..=255u8, 0..64),
        reference in proptest::collection::vec(-1.0f32..1.0, 0..8),
    ) {
        let msg = seal(body.clone());
        let _ = codec::decode(&msg, None);
        let _ = codec::decode(&msg, Some(&reference));
        let _ = codec::decode_kept_indices(&msg);
        // Unsealed garbage (checksum almost surely wrong) as well.
        let _ = codec::decode(&body, None);
    }

    /// Same totality with a well-formed header over hostile fields, which
    /// reaches past the tag dispatch into every payload validator: length
    /// mismatches, inflated sparse counts, out-of-range indices. When a
    /// message does decode, its length matches the header's claim.
    #[test]
    fn decoder_is_total_on_hostile_structured_headers(
        tag in 0u8..=4,
        flags in 0u8..=3,
        n in 0u32..=u32::MAX,
        p0 in 0u32..=u32::MAX,
        p1 in 0u32..=u32::MAX,
        payload in proptest::collection::vec(0u8..=255u8, 0..48),
        reference in proptest::collection::vec(-1.0f32..1.0, 0..12),
    ) {
        let mut body = Vec::with_capacity(WIRE_HEADER_BYTES + payload.len());
        body.push(tag);
        body.push(flags);
        body.extend_from_slice(&n.to_le_bytes());
        body.extend_from_slice(&p0.to_le_bytes());
        body.extend_from_slice(&p1.to_le_bytes());
        body.extend_from_slice(&payload);
        let msg = seal(body);
        for r in [None, Some(reference.as_slice())] {
            if let Ok(decoded) = codec::decode(&msg, r) {
                prop_assert_eq!(decoded.len(), n as usize);
            }
        }
        let _ = codec::decode_kept_indices(&msg);
    }

    /// Quantize ∘ dequantize ∘ quantize = quantize: re-encoding a decoded
    /// q8/q4 tensor reproduces the exact same code stream, and the decoded
    /// values are a fixed point up to the one-ulp re-rounding of the
    /// stored f32 grid parameters.
    #[test]
    fn quantization_is_idempotent_on_the_code_stream(
        mut payload in proptest::collection::vec(-8.0f32..8.0, 0..40),
        which in 0u32..4,
    ) {
        // Pin the value range so the re-derived grid is well-conditioned:
        // with the span fixed at [-8, 8] the scale stays far enough from
        // zero that re-rounding the stored parameters cannot move a code.
        payload.push(-8.0);
        payload.push(8.0);
        let spec = CodecSpec::parse(["q8", "q4", "delta+q8", "delta+q4"][which as usize])
            .expect("fixed specs parse");
        let reference = vec![0.0f32; payload.len()];
        let r = spec.delta.then_some(reference.as_slice());
        let once = spec.encode(&payload, r, None, None);
        let twice = spec.encode(&once.decoded, r, None, None);
        let codes = |w: &[u8]| w[WIRE_HEADER_BYTES..w.len() - WIRE_CHECKSUM_BYTES].to_vec();
        prop_assert_eq!(codes(&once.wire), codes(&twice.wire), "code stream moved");
        for (a, b) in once.decoded.iter().zip(&twice.decoded) {
            prop_assert!((a - b).abs() <= 1e-3, "fixed point drifted: {} vs {}", a, b);
        }
    }
}
