//! Shared round machinery: model initialisation, deterministic client
//! sampling, local training, weighted aggregation, and all-client
//! evaluation.
//!
//! Every method implementation composes these primitives; they are the
//! "FedAvg skeleton" the paper's Algorithm 1 shares with its baselines.

use crate::config::FlConfig;
use crate::faults::Transport;
use fedclust_data::{ClientData, FederatedDataset};
use fedclust_nn::optim::Sgd;
use fedclust_nn::Model;
use fedclust_tensor::rng::{derive, streams};
use rand::seq::SliceRandom;
use rayon::prelude::*;
use std::sync::{Arc, RwLock};

/// One unit of remote work: train (or warm up) these clients from
/// `start_state` at `round`. `residuals` carries each client's canonical
/// error-feedback residual for the worker-side codec (empty vectors for
/// residual-free codecs).
pub struct RemoteRound<'a> {
    /// Federated round index (0-based; FedClust warmup runs at round 0).
    pub round: usize,
    /// Clients to train, in the order results must come back.
    pub clients: &'a [usize],
    /// The broadcast state every client starts from (also the codec's
    /// delta reference).
    pub start_state: &'a [f32],
    /// FedProx proximal coefficient, when the method uses one.
    pub prox_mu: Option<f32>,
    /// Local epochs to run (differs from `cfg.local_epochs` during
    /// FedClust warmup).
    pub epochs: usize,
    /// `(client, residual)` pairs aligned with `clients`.
    pub residuals: Vec<(usize, Vec<f32>)>,
}

/// One client's update as delivered by a remote worker.
pub struct RemoteUpdate {
    /// Client id.
    pub client: usize,
    /// Local optimizer steps τ_i.
    pub steps: usize,
    /// Training-set size `n_i`.
    pub weight: f32,
    /// The server-side reconstruction of the upload (the worker's encoder
    /// pins it; raw state when no codec is active).
    pub state: Vec<f32>,
    /// Bytes that actually crossed the network under a codec; `None`
    /// means the raw 4-bytes-per-scalar accounting applies.
    pub wire_bytes: Option<usize>,
    /// The advanced error-feedback residual (top-k codecs only).
    pub residual: Option<Vec<f32>>,
}

/// What came back from a remote round: updates in request-client order,
/// plus the clients whose workers never delivered (retries exhausted or
/// round deadline hit) — the graceful-degradation set.
pub struct RemoteOutcome {
    /// Delivered updates, ordered like `RemoteRound::clients`.
    pub updates: Vec<RemoteUpdate>,
    /// Clients written off for this round.
    pub lost: Vec<usize>,
}

/// A delegate that trains clients out-of-process (fedclustd's worker
/// fleet). Installed process-globally; [`train_round`] and the FedClust
/// warmup collection route through it when present.
pub trait RemoteTrainer: Send + Sync {
    /// Train `req.clients` and return codec-encoded updates.
    fn train_remote(&self, req: RemoteRound) -> RemoteOutcome;
    /// FedClust round-0 warmup: train and return *raw full states* in
    /// `(client, state)` pairs (lost clients omitted); the server extracts
    /// the partial-weight slices and runs its own uplink path.
    fn warmup_remote(&self, req: RemoteRound) -> Vec<(usize, Vec<f32>)>;
}

static REMOTE_TRAINER: RwLock<Option<Arc<dyn RemoteTrainer>>> = RwLock::new(None);

/// Route all subsequent round training through `trainer` (process-global;
/// the server installs its network fleet here before running a method).
pub fn install_remote_trainer(trainer: Arc<dyn RemoteTrainer>) {
    *REMOTE_TRAINER.write().unwrap_or_else(|p| p.into_inner()) = Some(trainer);
}

/// Remove the installed remote trainer (tests; server shutdown).
pub fn clear_remote_trainer() {
    *REMOTE_TRAINER.write().unwrap_or_else(|p| p.into_inner()) = None;
}

/// The currently installed remote trainer, if any.
pub fn remote_trainer() -> Option<Arc<dyn RemoteTrainer>> {
    REMOTE_TRAINER
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// Build the initial server model θ⁰ for a federated dataset. All methods
/// in one experiment share this initialisation (the server broadcasts θ⁰).
pub fn init_model(fd: &FederatedDataset, cfg: &FlConfig) -> Model {
    let mut rng = derive(cfg.seed, &[streams::MODEL_INIT]);
    cfg.model
        .build(fd.channels, fd.height, fd.width, fd.num_classes, &mut rng)
}

/// Deterministically sample the participating clients for `round`, then
/// apply the configured dropout: each selected client independently drops
/// with probability `cfg.dropout_rate` (deterministic per
/// `(seed, round, client)`), and at least one client always survives so
/// every round makes progress.
pub fn sample_clients(num_clients: usize, cfg: &FlConfig, round: usize) -> Vec<usize> {
    let n = cfg.clients_per_round(num_clients);
    let mut rng = derive(cfg.seed, &[streams::SAMPLING, round as u64]);
    let mut ids: Vec<usize> = (0..num_clients).collect();
    ids.shuffle(&mut rng);
    ids.truncate(n);
    ids.sort_unstable();
    if cfg.dropout_rate > 0.0 {
        use rand::Rng;
        let survivors: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&c| {
                let mut r = derive(cfg.seed, &[streams::DROPOUT, round as u64, c as u64]);
                r.gen::<f32>() >= cfg.dropout_rate
            })
            .collect();
        if survivors.is_empty() {
            return vec![ids[0]];
        }
        return survivors;
    }
    ids
}

/// Train `model` on one client's local data for `epochs` epochs of
/// minibatch SGD. Returns the number of optimizer steps taken (FedNova's
/// τ_i). The minibatch order derives from `(seed, client, round)`, so runs
/// are reproducible regardless of thread schedule.
#[allow(clippy::too_many_arguments)]
pub fn local_train(
    model: &mut Model,
    data: &ClientData,
    opt: &mut Sgd,
    epochs: usize,
    batch_size: usize,
    seed: u64,
    client: usize,
    round: usize,
) -> usize {
    let mut rng = derive(seed, &[streams::LOCAL_TRAIN, client as u64, round as u64]);
    let mut steps = 0;
    for _ in 0..epochs {
        for batch in data.train.minibatch_indices(batch_size, &mut rng) {
            let (x, y) = data.train.batch(&batch);
            model.train_step(x, &y, opt);
            steps += 1;
        }
    }
    steps
}

/// The payload a client uploads after local training.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Client id.
    pub client: usize,
    /// Full post-training state vector (params + extra state).
    pub state: Vec<f32>,
    /// Training-set size `n_i` (the FedAvg weight).
    pub weight: f32,
    /// Local optimizer steps τ_i (for FedNova).
    pub steps: usize,
}

/// Run local training on every sampled client in parallel, starting each
/// from `start_state`, and collect the updates. `momentum_override` lets
/// personalized methods use the paper's 0.5 momentum.
pub fn train_sampled(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    template: &Model,
    start_state: &[f32],
    sampled: &[usize],
    round: usize,
    prox_mu: Option<f32>,
) -> Vec<ClientUpdate> {
    sampled
        .par_iter()
        .map(|&client| {
            let mut model = template.clone();
            model.set_state_vec(start_state);
            let mut opt = Sgd::new(cfg.sgd());
            if let Some(mu) = prox_mu {
                opt.set_prox(mu, model.param_tensors());
            }
            let data = &fd.clients[client];
            let steps = local_train(
                &mut model,
                data,
                &mut opt,
                cfg.local_epochs,
                cfg.batch_size,
                cfg.seed,
                client,
                round,
            );
            ClientUpdate {
                client,
                state: model.state_vec(),
                weight: data.train_samples() as f32,
                steps,
            }
        })
        .collect()
}

/// One full faulty round trip for the standard skeleton: broadcast
/// `start_state` through `transport` (charging every downlink attempt),
/// train the clients that were actually reached, then push each update
/// through the uplink codec + fault + quarantine screen. The broadcast
/// state doubles as the codec's delta reference: clients upload
/// `w_i − start_state` under delta-coded codecs. The returned survivor set
/// may be empty — aggregate with [`weighted_average_or`] to carry the
/// previous model forward in that case.
#[allow(clippy::too_many_arguments)]
pub fn train_round(
    fd: &FederatedDataset,
    cfg: &FlConfig,
    template: &Model,
    start_state: &[f32],
    sampled: &[usize],
    round: usize,
    prox_mu: Option<f32>,
    transport: &mut Transport,
) -> Vec<ClientUpdate> {
    let scalars = start_state.len();
    let reached = transport.broadcast(round, sampled, scalars);
    if let Some(remote) = remote_trainer() {
        let residuals = reached
            .iter()
            .map(|&c| (c, transport.residual_for(c)))
            .collect();
        let outcome = remote.train_remote(RemoteRound {
            round,
            clients: &reached,
            start_state,
            prox_mu,
            epochs: cfg.local_epochs,
            residuals,
        });
        transport.record_remote_losses(&outcome.lost);
        return transport.receive_remote(round, outcome.updates, Some(start_state));
    }
    let updates = train_sampled(fd, cfg, template, start_state, &reached, round, prox_mu);
    transport.receive(round, updates, Some(start_state), Some(start_state))
}

/// Weighted average of equal-length state vectors — Eq. 2's cluster (or
/// global) model aggregation.
///
/// # Panics
/// Panics if `items` is empty, lengths differ, or all weights are zero.
pub fn weighted_average(items: &[(&[f32], f32)]) -> Vec<f32> {
    assert!(!items.is_empty(), "nothing to average");
    let len = items[0].0.len();
    let total: f64 = items.iter().map(|(_, w)| *w as f64).sum();
    assert!(total > 0.0, "total weight must be positive");
    let mut out = vec![0.0f64; len];
    for (state, w) in items {
        assert_eq!(state.len(), len, "state length mismatch in aggregation");
        let coef = *w as f64 / total;
        for (o, &s) in out.iter_mut().zip(state.iter()) {
            *o += coef * s as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

/// [`weighted_average`] with the fault-tolerant fallback: when every update
/// of a round (or cluster) was lost or quarantined, carry `previous`
/// forward instead of panicking. The panic in [`weighted_average`] stays
/// for genuine empty-input bugs at call sites that cannot legitimately see
/// an empty set.
pub fn weighted_average_or(items: &[(&[f32], f32)], previous: &[f32]) -> Vec<f32> {
    if items.is_empty() {
        previous.to_vec()
    } else {
        weighted_average(items)
    }
}

/// Evaluate every client's local test accuracy in parallel, with the state
/// vector for client `i` provided by `state_of(i)`.
pub fn evaluate_clients<'a, F>(fd: &FederatedDataset, template: &Model, state_of: F) -> Vec<f32>
where
    F: Fn(usize) -> &'a [f32] + Sync,
{
    (0..fd.num_clients())
        .into_par_iter()
        .map(|client| {
            let mut model = template.clone();
            model.set_state_vec(state_of(client));
            let test = &fd.clients[client].test;
            if test.is_empty() {
                return 0.0;
            }
            let indices: Vec<usize> = (0..test.len()).collect();
            let (x, y) = test.batch(&indices);
            let (_, acc) = model.evaluate(x, &y);
            acc
        })
        .collect()
}

/// Mean of per-client accuracies — the paper's headline metric.
pub fn average_accuracy(per_client: &[f32]) -> f64 {
    if per_client.is_empty() {
        return 0.0;
    }
    per_client.iter().map(|&a| a as f64).sum::<f64>() / per_client.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::FlMethod;
    use fedclust_data::{DatasetProfile, FederatedDataset, Partition};

    fn tiny_fd(seed: u64) -> FederatedDataset {
        FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let cfg = FlConfig::tiny(1);
        let a = sample_clients(10, &cfg, 3);
        let b = sample_clients(10, &cfg, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let c = sample_clients(10, &cfg, 4);
        assert_ne!(a, c, "different rounds sample differently (w.h.p.)");
    }

    #[test]
    fn dropout_zero_is_identity() {
        let cfg = FlConfig::tiny(2);
        let mut dropped = cfg;
        dropped.dropout_rate = 0.0;
        assert_eq!(sample_clients(10, &cfg, 1), sample_clients(10, &dropped, 1));
    }

    #[test]
    fn dropout_removes_clients_but_never_everyone() {
        let mut cfg = FlConfig::tiny(3);
        cfg.sample_rate = 1.0;
        cfg.dropout_rate = 0.95;
        for round in 0..20 {
            let s = sample_clients(8, &cfg, round);
            assert!(!s.is_empty(), "round {} has no survivors", round);
            assert!(s.len() <= 8);
        }
        // With heavy dropout, at least some rounds must lose clients.
        let total: usize = (0..20).map(|r| sample_clients(8, &cfg, r).len()).sum();
        assert!(total < 20 * 8 / 2, "dropout had no effect: {}", total);
    }

    #[test]
    fn dropout_is_deterministic() {
        let mut cfg = FlConfig::tiny(4);
        cfg.dropout_rate = 0.5;
        assert_eq!(sample_clients(12, &cfg, 5), sample_clients(12, &cfg, 5));
    }

    #[test]
    fn fedavg_survives_heavy_dropout() {
        let fd = tiny_fd(5);
        let mut cfg = FlConfig::tiny(5);
        cfg.rounds = 3;
        cfg.dropout_rate = 0.7;
        let r = crate::methods::FedAvg.run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
        assert!(r.total_mb > 0.0);
    }

    #[test]
    fn weighted_average_weights_correctly() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32, 2.0];
        let avg = weighted_average(&[(&a, 1.0), (&b, 3.0)]);
        assert!((avg[0] - 0.75).abs() < 1e-6);
        assert!((avg[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "nothing to average")]
    fn empty_average_panics() {
        let _ = weighted_average(&[]);
    }

    #[test]
    fn empty_average_or_carries_previous_forward() {
        let prev = vec![0.25f32, -1.5, 3.0];
        assert_eq!(weighted_average_or(&[], &prev), prev);
        // Non-empty input must still delegate to the real average.
        let a = vec![0.0f32, 0.0, 0.0];
        let b = vec![1.0f32, 2.0, 3.0];
        assert_eq!(
            weighted_average_or(&[(&a, 1.0), (&b, 1.0)], &prev),
            weighted_average(&[(&a, 1.0), (&b, 1.0)])
        );
    }

    #[test]
    fn train_round_with_total_uplink_loss_carries_model_forward() {
        let fd = tiny_fd(6);
        let mut cfg = FlConfig::tiny(6);
        cfg.faults.uplink_loss = 1.0;
        let template = init_model(&fd, &cfg);
        let s = template.state_vec();
        let mut transport = crate::faults::Transport::new(&cfg);
        let kept = train_round(
            &fd,
            &cfg,
            &template,
            &s,
            &[0, 1, 2],
            0,
            None,
            &mut transport,
        );
        assert!(kept.is_empty(), "total uplink loss must lose every update");
        let items: Vec<(&[f32], f32)> = kept.iter().map(|u| (&u.state[..], u.weight)).collect();
        assert_eq!(weighted_average_or(&items, &s), s, "model carried forward");
        assert!(transport.telemetry().uplink_losses >= 3);
    }

    #[test]
    fn local_training_improves_local_accuracy() {
        let fd = tiny_fd(0);
        let cfg = FlConfig::tiny(0);
        let template = init_model(&fd, &cfg);
        let init_state = template.state_vec();

        let before = evaluate_clients(&fd, &template, |_| &init_state[..]);
        let updates = train_sampled(&fd, &cfg, &template, &init_state, &[0], 0, None);
        assert_eq!(updates.len(), 1);
        assert!(updates[0].steps > 0);

        let trained = &updates[0].state;
        let mut model = template.clone();
        model.set_state_vec(trained);
        let test = &fd.clients[0].test;
        let idx: Vec<usize> = (0..test.len()).collect();
        let (x, y) = test.batch(&idx);
        let (_, acc_after) = model.evaluate(x, &y);
        // Training on ≤2 labels should beat the random-init accuracy on the
        // client's own test split.
        assert!(
            acc_after >= before[0],
            "acc before {} after {}",
            before[0],
            acc_after
        );
    }

    #[test]
    fn train_sampled_is_deterministic() {
        let fd = tiny_fd(1);
        let cfg = FlConfig::tiny(1);
        let template = init_model(&fd, &cfg);
        let s = template.state_vec();
        let u1 = train_sampled(&fd, &cfg, &template, &s, &[0, 2, 4], 1, None);
        let u2 = train_sampled(&fd, &cfg, &template, &s, &[0, 2, 4], 1, None);
        for (a, b) in u1.iter().zip(&u2) {
            assert_eq!(a.state, b.state);
        }
    }

    #[test]
    fn evaluate_all_clients_returns_one_acc_each() {
        let fd = tiny_fd(2);
        let cfg = FlConfig::tiny(2);
        let template = init_model(&fd, &cfg);
        let s = template.state_vec();
        let accs = evaluate_clients(&fd, &template, |_| &s[..]);
        assert_eq!(accs.len(), 6);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
        let avg = average_accuracy(&accs);
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn prox_keeps_models_closer_to_start() {
        let fd = tiny_fd(3);
        let mut cfg = FlConfig::tiny(3);
        cfg.local_epochs = 4;
        let template = init_model(&fd, &cfg);
        let s = template.state_vec();
        let free = train_sampled(&fd, &cfg, &template, &s, &[1], 0, None);
        let prox = train_sampled(&fd, &cfg, &template, &s, &[1], 0, Some(1.0));
        let dist = |state: &[f32]| -> f64 {
            state
                .iter()
                .zip(&s)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            dist(&prox[0].state) < dist(&free[0].state),
            "prox {} free {}",
            dist(&prox[0].state),
            dist(&free[0].state)
        );
    }
}
