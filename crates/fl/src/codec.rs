//! Update-compression codecs behind the [`Transport`](crate::faults::Transport) shim.
//!
//! Every client upload can be passed through an [`CodecSpec`]-selected
//! encoder before it crosses the simulated network: int8/int4 linear
//! quantization with a per-message scale/zero-point, top-k magnitude
//! sparsification with error-feedback residuals, and delta-vs-reference
//! encoding that ships `w_i − w_ref` instead of raw weights. The
//! [`CommMeter`](crate::comm::CommMeter) charges the **encoded wire bytes**
//! (header + payload + checksum exactly as laid out below), not logical
//! f32 counts — the wire-honest accounting contract from the fault layer
//! extended to compression.
//!
//! # Wire layout (little-endian)
//!
//! ```text
//! [0]      tag: u8        0 = raw f32, 1 = q8, 2 = q4, 3 = top-k
//! [1]      flags: u8      bit 0: payload is a delta vs the reference
//! [2..6]   n: u32         logical element count
//! [6..10]  p0: u32        q8/q4: scale f32 bits · top-k: k · raw: 0
//! [10..14] p1: u32        q8/q4: zero-point f32 bits · otherwise 0
//! [14..]   payload        q8: n bytes · q4: ⌈n/2⌉ bytes ·
//!                         top-k: k × (u32 index + f32 value) · raw: 4n bytes
//! [-8..]   checksum: u64  FNV-1a over all preceding bytes
//! ```
//!
//! `CodecSpec::none()` is special-cased by the transport: no header, no
//! transform, no RNG draw — byte-identical pass-through with the legacy
//! 4-bytes-per-scalar accounting, pinned the same way `FaultPlan::none()`
//! is.
//!
//! # Determinism
//!
//! The default rounding mode is round-to-nearest, which draws no
//! randomness at all. Stochastic rounding (`q8+sr`, `delta+q4+sr`) draws
//! from the named `streams::CODEC` stream keyed by `(seed, round,
//! client)`, so compressed runs replay bit-identically at any thread
//! count and across kill-and-resume, exactly like every other stochastic
//! component.
//!
//! # Defined behavior on non-finite input
//!
//! Quantizers derive scale/zero-point from the finite elements only and
//! map non-finite elements to code 0 (the zero-point); the encoder and
//! decoder never panic on any input (property-tested, including hostile
//! checksum-valid bytes).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Header bytes before the payload: tag, flags, n, p0, p1.
pub const WIRE_HEADER_BYTES: usize = 14;
/// Trailing FNV-1a checksum bytes.
pub const WIRE_CHECKSUM_BYTES: usize = 8;
/// Fixed per-message framing overhead for every non-`none` codec.
pub const WIRE_OVERHEAD_BYTES: usize = WIRE_HEADER_BYTES + WIRE_CHECKSUM_BYTES;
/// Hard ceiling on the element count a sparse (top-k) message may claim.
/// Dense payloads bound `n` by their own wire bytes, but a top-k header's
/// `n` is otherwise unconstrained — without this cap a checksum-valid
/// hostile message claiming `n = u32::MAX` with `k = 1` would force a
/// multi-gigabyte zero-fill in the decoder. 2²² elements (16 MiB dense)
/// is far above any model state this workspace trains.
pub const MAX_TOPK_ELEMS: usize = 1 << 22;

const TAG_RAW: u8 = 0;
const TAG_Q8: u8 = 1;
const TAG_Q4: u8 = 2;
const TAG_TOPK: u8 = 3;

const FLAG_DELTA: u8 = 1;

/// Quantization levels: q8 codes span `0..=255`, q4 codes span `0..=15`.
const Q8_LEVELS: u32 = 255;
const Q4_LEVELS: u32 = 15;

/// The base transform applied to the (possibly delta-encoded) payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BaseCodec {
    /// No value transform; payload ships as raw f32 words.
    Raw,
    /// Int8 linear quantization: 1 byte per element.
    Q8,
    /// Int4 linear quantization: 2 elements per byte.
    Q4,
    /// Top-k magnitude sparsification keeping `ceil(frac · n)` elements,
    /// with error-feedback residuals accumulated in persistent per-client
    /// state. Inherently delta-coded: unsent coordinates revert to the
    /// reference, and the residual carries what was withheld forward.
    TopK(f32),
}

/// A parsed `--codec` selection: delta pre-pass, base transform, rounding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecSpec {
    /// Ship `payload − reference` instead of raw values when the server
    /// and client share a reference state (the broadcast model).
    pub delta: bool,
    /// The base transform.
    pub base: BaseCodec,
    /// Stochastic rounding for q8/q4 (draws from `streams::CODEC`).
    /// Round-to-nearest when false: no randomness, error ≤ scale/2.
    pub stochastic: bool,
}

impl CodecSpec {
    /// The identity codec: legacy pass-through, no header, no transform.
    pub fn none() -> CodecSpec {
        CodecSpec {
            delta: false,
            base: BaseCodec::Raw,
            stochastic: false,
        }
    }

    /// Is this the identity codec (transport fast path)?
    pub fn is_none(&self) -> bool {
        *self == CodecSpec::none()
    }

    /// Does encoding draw from the `streams::CODEC` RNG stream?
    pub fn draws_rng(&self) -> bool {
        self.stochastic && matches!(self.base, BaseCodec::Q8 | BaseCodec::Q4)
    }

    /// Parse a `--codec` spec: `+`-joined tokens from `{none, delta, q8,
    /// q4, topk:<frac>, sr}`. `none` must stand alone; at most one base;
    /// `sr` (stochastic rounding) requires a quantizing base. Examples:
    /// `q8`, `topk:0.1`, `delta+q4`, `delta+q8+sr`.
    pub fn parse(s: &str) -> Result<CodecSpec, String> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err("empty codec spec; expected e.g. none, q8, q4, topk:0.1, delta+q8".into());
        }
        if trimmed == "none" {
            return Ok(CodecSpec::none());
        }
        let mut delta = false;
        let mut stochastic = false;
        let mut base: Option<BaseCodec> = None;
        let mut set_base = |b: BaseCodec, tok: &str| -> Result<(), String> {
            if base.is_some() {
                return Err(format!(
                    "codec '{}' selects more than one base transform (at '{}')",
                    trimmed, tok
                ));
            }
            base = Some(b);
            Ok(())
        };
        for tok in trimmed.split('+') {
            match tok {
                "delta" if !delta => delta = true,
                "delta" => return Err(format!("duplicate 'delta' in codec '{}'", trimmed)),
                "sr" if !stochastic => stochastic = true,
                "sr" => return Err(format!("duplicate 'sr' in codec '{}'", trimmed)),
                "q8" => set_base(BaseCodec::Q8, tok)?,
                "q4" => set_base(BaseCodec::Q4, tok)?,
                "none" => return Err(format!("'none' must stand alone, got codec '{}'", trimmed)),
                _ => {
                    let Some(frac_str) = tok.strip_prefix("topk:") else {
                        return Err(format!(
                            "unknown codec token '{}' in '{}'; expected delta, q8, q4, \
                             topk:<frac>, or sr",
                            tok, trimmed
                        ));
                    };
                    let frac: f32 = frac_str.parse().map_err(|_| {
                        format!(
                            "invalid top-k fraction '{}' in codec '{}'",
                            frac_str, trimmed
                        )
                    })?;
                    if !(frac.is_finite() && 0.0 < frac && frac <= 1.0) {
                        return Err(format!(
                            "top-k fraction must be in (0, 1], got {} in codec '{}'",
                            frac_str, trimmed
                        ));
                    }
                    set_base(BaseCodec::TopK(frac), tok)?;
                }
            }
        }
        let base = base.unwrap_or(BaseCodec::Raw);
        if stochastic && !matches!(base, BaseCodec::Q8 | BaseCodec::Q4) {
            return Err(format!(
                "'sr' (stochastic rounding) requires a q8 or q4 base, got codec '{}'",
                trimmed
            ));
        }
        let spec = CodecSpec {
            delta,
            base,
            stochastic,
        };
        if spec.is_none() {
            // `delta` alone is meaningful (raw f32 deltas); reaching here
            // with the identity spec means the input was e.g. "+".
            return Err(format!("codec '{}' selects no transform", trimmed));
        }
        Ok(spec)
    }

    /// Exact wire bytes for one encoded message of `n` logical elements.
    /// The identity codec reports the legacy 4-bytes-per-scalar size.
    pub fn wire_len(&self, n: usize) -> usize {
        if self.is_none() {
            return n.saturating_mul(4);
        }
        let payload = match self.base {
            BaseCodec::Raw => n.saturating_mul(4),
            BaseCodec::Q8 => n,
            BaseCodec::Q4 => n.div_ceil(2),
            BaseCodec::TopK(frac) => topk_k(frac, n).saturating_mul(8),
        };
        WIRE_OVERHEAD_BYTES.saturating_add(payload)
    }
}

impl std::fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.delta {
            parts.push("delta".into());
        }
        match self.base {
            BaseCodec::Raw => {}
            BaseCodec::Q8 => parts.push("q8".into()),
            BaseCodec::Q4 => parts.push("q4".into()),
            BaseCodec::TopK(frac) => parts.push(format!("topk:{}", frac)),
        }
        if self.stochastic {
            parts.push("sr".into());
        }
        f.write_str(&parts.join("+"))
    }
}

/// Number of coordinates top-k keeps for an `n`-element payload: at least
/// one, at most all, `ceil(frac · n)` in between.
pub fn topk_k(frac: f32, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    // `frac` arrives as an f32 (CLI-parsed); widening an inexact fraction
    // inflates the product past the intended integer (0.4f32 · 5 widens to
    // 2.0000000298, whose ceiling is 3, not 2). Shave more than the f32
    // representation error (≤ 2⁻²⁴ relative) before taking the ceiling.
    let k = (frac as f64 * n as f64 * (1.0 - 1e-6)).ceil() as usize;
    k.clamp(1, n)
}

/// One encoded upload: the bytes that cross the wire and the values the
/// server reconstructs from them. The decoded side is computed during
/// encoding so the production hot path never runs the fallible decoder;
/// `decode(&wire, …)` is guaranteed (and conformance-tested) to agree.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    /// Serialized message: header + payload + checksum.
    pub wire: Vec<u8>,
    /// The server-side reconstruction of the payload.
    pub decoded: Vec<f32>,
}

/// Why a hostile or truncated wire message failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Fewer bytes than the fixed framing.
    Truncated,
    /// Unknown codec tag byte.
    BadTag(u8),
    /// FNV-1a checksum mismatch.
    Checksum,
    /// Payload length disagrees with the header's element count.
    LengthMismatch {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The delta flag is set but no reference of the right length exists.
    MissingReference,
    /// Top-k indices out of range or not strictly increasing.
    BadIndices,
    /// A sparse header claims more elements than [`MAX_TOPK_ELEMS`].
    ImplausibleCount(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message shorter than codec framing"),
            CodecError::BadTag(t) => write!(f, "unknown codec tag {}", t),
            CodecError::Checksum => write!(f, "codec checksum mismatch"),
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "codec payload length mismatch: header implies {} bytes, got {}",
                expected, actual
            ),
            CodecError::MissingReference => {
                write!(f, "delta-coded message without a matching reference")
            }
            CodecError::BadIndices => write!(f, "top-k indices out of range or unsorted"),
            CodecError::ImplausibleCount(n) => write!(
                f,
                "sparse element count {} exceeds the decoder's plausibility ceiling {}",
                n, MAX_TOPK_ELEMS
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over a byte slice (the same construction the checkpoint codec
/// uses; duplicated so the two formats stay independently evolvable).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Dequantize one code against stored f32 parameters. Shared by the
/// encoder (to compute the server-side view) and the decoder, so the two
/// can never drift.
fn dequant_value(code: u32, scale: f32, zero_point: f32) -> f32 {
    (zero_point as f64 + code as f64 * scale as f64) as f32
}

/// Scale and zero-point over the finite elements of `v` for `levels + 1`
/// codes. Degenerate inputs (empty, all non-finite, constant) get scale 0:
/// every code decodes to the zero-point.
fn quant_params(v: &[f32], levels: u32) -> (f32, f32) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        if x.is_finite() {
            let x = x as f64;
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        let zero_point = if lo.is_finite() { lo as f32 } else { 0.0 };
        return (0.0, zero_point);
    }
    (((hi - lo) / levels as f64) as f32, lo as f32)
}

/// Quantize one element against stored f32 parameters. Non-finite values
/// map to code 0 (the zero-point). Round-to-nearest unless an RNG is
/// supplied, in which case rounding is stochastic with probability equal
/// to the fractional part — unbiased, and drawn deterministically from the
/// caller's named stream.
fn quant_code(
    x: f32,
    levels: u32,
    scale: f32,
    zero_point: f32,
    rng: &mut Option<&mut SmallRng>,
) -> u32 {
    if !x.is_finite() || scale <= 0.0 || scale.is_nan() {
        return 0;
    }
    let t = (x as f64 - zero_point as f64) / scale as f64;
    let rounded = match rng {
        Some(r) => {
            let floor = t.floor();
            let frac = t - floor;
            floor + if r.gen::<f64>() < frac { 1.0 } else { 0.0 }
        }
        None => (t + 0.5).floor(),
    };
    rounded.clamp(0.0, levels as f64) as u32
}

impl CodecSpec {
    /// Encode one upload. `reference` is the state both ends already share
    /// (the broadcast model); `residual` is the client's persistent
    /// error-feedback accumulator (top-k only; resized to the payload
    /// length on shape change, updated on every call regardless of the
    /// upload's eventual fate on the wire); `rng` supplies stochastic
    /// rounding draws when [`CodecSpec::draws_rng`] says so.
    ///
    /// Must not be called for the identity codec — the transport's `none`
    /// fast path bypasses encoding entirely to stay byte-identical with
    /// the legacy uncompressed behavior.
    pub fn encode(
        &self,
        payload: &[f32],
        reference: Option<&[f32]>,
        residual: Option<&mut Vec<f32>>,
        mut rng: Option<&mut SmallRng>,
    ) -> Encoded {
        let n = payload.len();
        let reference = reference.filter(|r| r.len() == n);
        // The value stream the base transform sees, and whether the
        // decoder must add the reference back.
        let deltaed = match self.base {
            // Top-k is inherently delta-coded whenever a reference exists:
            // unsent coordinates must revert to the reference, not zero.
            BaseCodec::TopK(_) => reference.is_some(),
            _ => self.delta && reference.is_some(),
        };
        let values: Vec<f32> = if deltaed {
            match reference {
                Some(r) => payload.iter().zip(r).map(|(p, r)| p - r).collect(),
                None => payload.to_vec(),
            }
        } else {
            payload.to_vec()
        };
        let flags = if deltaed { FLAG_DELTA } else { 0 };

        let mut wire = Vec::with_capacity(self.wire_len(n));
        match self.base {
            BaseCodec::Raw => {
                write_header(&mut wire, TAG_RAW, flags, n as u32, 0, 0);
                for v in &values {
                    wire.extend_from_slice(&v.to_le_bytes());
                }
                finish(&mut wire);
                let decoded = reconstruct(&values, flags, reference);
                Encoded { wire, decoded }
            }
            BaseCodec::Q8 => {
                let (scale, zero_point) = quant_params(&values, Q8_LEVELS);
                let codes: Vec<u32> = values
                    .iter()
                    .map(|&x| quant_code(x, Q8_LEVELS, scale, zero_point, &mut rng))
                    .collect();
                write_header(
                    &mut wire,
                    TAG_Q8,
                    flags,
                    n as u32,
                    scale.to_bits(),
                    zero_point.to_bits(),
                );
                wire.extend(codes.iter().map(|&c| c as u8));
                finish(&mut wire);
                let dequant: Vec<f32> = codes
                    .iter()
                    .map(|&c| dequant_value(c, scale, zero_point))
                    .collect();
                let decoded = reconstruct(&dequant, flags, reference);
                Encoded { wire, decoded }
            }
            BaseCodec::Q4 => {
                let (scale, zero_point) = quant_params(&values, Q4_LEVELS);
                let codes: Vec<u32> = values
                    .iter()
                    .map(|&x| quant_code(x, Q4_LEVELS, scale, zero_point, &mut rng))
                    .collect();
                write_header(
                    &mut wire,
                    TAG_Q4,
                    flags,
                    n as u32,
                    scale.to_bits(),
                    zero_point.to_bits(),
                );
                for pair in codes.chunks(2) {
                    let lo = pair.first().copied().unwrap_or(0) as u8;
                    let hi = pair.get(1).copied().unwrap_or(0) as u8;
                    wire.push(lo | (hi << 4));
                }
                finish(&mut wire);
                let dequant: Vec<f32> = codes
                    .iter()
                    .map(|&c| dequant_value(c, scale, zero_point))
                    .collect();
                let decoded = reconstruct(&dequant, flags, reference);
                Encoded { wire, decoded }
            }
            BaseCodec::TopK(frac) => {
                // Error feedback: sparsify the delta plus everything the
                // previous rounds withheld.
                let mut acc = values;
                if let Some(res) = &residual {
                    if res.len() == n {
                        for (a, r) in acc.iter_mut().zip(res.iter()) {
                            *a += r;
                        }
                    }
                }
                let k = topk_k(frac, n);
                // Deterministic selection: by |value| descending, index
                // ascending on ties; NaNs order via total_cmp.
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by(|&a, &b| {
                    let ma = acc[a as usize].abs();
                    let mb = acc[b as usize].abs();
                    mb.total_cmp(&ma).then(a.cmp(&b))
                });
                let mut kept: Vec<u32> = order.into_iter().take(k).collect();
                kept.sort_unstable();

                write_header(&mut wire, TAG_TOPK, flags, n as u32, k as u32, 0);
                for &i in &kept {
                    wire.extend_from_slice(&i.to_le_bytes());
                    wire.extend_from_slice(&acc[i as usize].to_le_bytes());
                }
                finish(&mut wire);

                // Server-side view: reference (or zero) everywhere, the
                // accumulated value at kept coordinates.
                let mut sparse = vec![0.0f32; n];
                for &i in &kept {
                    sparse[i as usize] = acc[i as usize];
                }
                let decoded = reconstruct(&sparse, flags, reference);

                // The residual keeps exactly what was not sent — updated
                // whether or not the wire message survives the fault plan.
                if let Some(res) = residual {
                    for &i in &kept {
                        acc[i as usize] = 0.0;
                    }
                    *res = acc;
                }
                Encoded { wire, decoded }
            }
        }
    }
}

/// Append the fixed header to an in-progress wire message.
fn write_header(wire: &mut Vec<u8>, tag: u8, flags: u8, n: u32, p0: u32, p1: u32) {
    wire.push(tag);
    wire.push(flags);
    wire.extend_from_slice(&n.to_le_bytes());
    wire.extend_from_slice(&p0.to_le_bytes());
    wire.extend_from_slice(&p1.to_le_bytes());
}

/// Seal an in-progress wire message with its checksum.
fn finish(wire: &mut Vec<u8>) {
    let checksum = fnv64(wire);
    wire.extend_from_slice(&checksum.to_le_bytes());
}

/// Add the reference back when the payload was delta-coded.
fn reconstruct(values: &[f32], flags: u8, reference: Option<&[f32]>) -> Vec<f32> {
    if flags & FLAG_DELTA != 0 {
        match reference {
            Some(r) => values.iter().zip(r).map(|(v, r)| v + r).collect(),
            None => values.to_vec(),
        }
    } else {
        values.to_vec()
    }
}

/// The client-side encode exactly as the transport performs it: the codec
/// RNG derives from `(seed, streams::CODEC, round, client)`, the caller's
/// error-feedback residual advances in place, and the result carries the
/// wire bytes plus the server-side reconstruction. The in-process
/// [`Transport::uplink`](crate::faults::Transport::uplink) and the remote
/// worker fleet both route through this function, so a networked upload
/// is bit-identical to its simulated twin by construction.
pub fn encode_for_upload(
    spec: CodecSpec,
    seed: u64,
    round: usize,
    client: usize,
    payload: &[f32],
    reference: Option<&[f32]>,
    mut residual: Option<Vec<f32>>,
) -> (Encoded, Option<Vec<f32>>) {
    let mut rng = if spec.draws_rng() {
        Some(fedclust_tensor::rng::derive(
            seed,
            &[
                fedclust_tensor::rng::streams::CODEC,
                round as u64,
                client as u64,
            ],
        ))
    } else {
        None
    };
    let enc = spec.encode(payload, reference, residual.as_mut(), rng.as_mut());
    (enc, residual)
}

/// Decode one wire message against an optional shared reference. Total on
/// arbitrary input: every length is checked, every access bounds-checked,
/// and a checksum-valid but structurally hostile message yields an error,
/// never a panic or an over-allocation.
pub fn decode(bytes: &[u8], reference: Option<&[f32]>) -> Result<Vec<f32>, CodecError> {
    let body_len = bytes
        .len()
        .checked_sub(WIRE_CHECKSUM_BYTES)
        .ok_or(CodecError::Truncated)?;
    if body_len < WIRE_HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let body = bytes.get(..body_len).ok_or(CodecError::Truncated)?;
    let stored = decode_u64_at(bytes, body_len)?;
    if fnv64(body) != stored {
        return Err(CodecError::Checksum);
    }

    let tag = *body.first().ok_or(CodecError::Truncated)?;
    let flags = *body.get(1).ok_or(CodecError::Truncated)?;
    let n = decode_u32_at(body, 2)? as usize;
    let p0 = decode_u32_at(body, 6)?;
    let p1 = decode_u32_at(body, 10)?;
    let payload = body.get(WIRE_HEADER_BYTES..).ok_or(CodecError::Truncated)?;

    let deltaed = flags & FLAG_DELTA != 0;
    let reference = if deltaed {
        let r = reference
            .filter(|r| r.len() == n)
            .ok_or(CodecError::MissingReference)?;
        Some(r)
    } else {
        None
    };
    let values = match tag {
        TAG_RAW => decode_raw_payload(payload, n)?,
        TAG_Q8 => decode_q8_payload(payload, n, f32::from_bits(p0), f32::from_bits(p1))?,
        TAG_Q4 => decode_q4_payload(payload, n, f32::from_bits(p0), f32::from_bits(p1))?,
        TAG_TOPK => decode_topk_payload(payload, n, p0 as usize)?,
        other => return Err(CodecError::BadTag(other)),
    };
    Ok(match reference {
        Some(r) => values.iter().zip(r).map(|(v, r)| v + r).collect(),
        None => values,
    })
}

/// The strictly increasing kept-coordinate indices of a top-k message.
/// Errors on any non-top-k or malformed message.
pub fn decode_kept_indices(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let body_len = bytes
        .len()
        .checked_sub(WIRE_CHECKSUM_BYTES)
        .ok_or(CodecError::Truncated)?;
    if body_len < WIRE_HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let body = bytes.get(..body_len).ok_or(CodecError::Truncated)?;
    let stored = decode_u64_at(bytes, body_len)?;
    if fnv64(body) != stored {
        return Err(CodecError::Checksum);
    }
    let tag = *body.first().ok_or(CodecError::Truncated)?;
    if tag != TAG_TOPK {
        return Err(CodecError::BadTag(tag));
    }
    let n = decode_u32_at(body, 2)? as usize;
    let k = decode_u32_at(body, 6)? as usize;
    let payload = body.get(WIRE_HEADER_BYTES..).ok_or(CodecError::Truncated)?;
    let pairs = decode_topk_pairs(payload, n, k)?;
    Ok(pairs.iter().map(|&(i, _)| i).collect())
}

/// Read a little-endian u32 at a byte offset, bounds-checked.
fn decode_u32_at(bytes: &[u8], at: usize) -> Result<u32, CodecError> {
    let end = at.checked_add(4).ok_or(CodecError::Truncated)?;
    let slice = bytes.get(at..end).ok_or(CodecError::Truncated)?;
    let arr: [u8; 4] = slice.try_into().map_err(|_| CodecError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

/// Read a little-endian u64 at a byte offset, bounds-checked.
fn decode_u64_at(bytes: &[u8], at: usize) -> Result<u64, CodecError> {
    let end = at.checked_add(8).ok_or(CodecError::Truncated)?;
    let slice = bytes.get(at..end).ok_or(CodecError::Truncated)?;
    let arr: [u8; 8] = slice.try_into().map_err(|_| CodecError::Truncated)?;
    Ok(u64::from_le_bytes(arr))
}

/// Check a payload's actual byte length against the header's implication.
fn decode_check_payload(payload: &[u8], expected: Option<usize>) -> Result<usize, CodecError> {
    let expected = expected.ok_or(CodecError::Truncated)?;
    if payload.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: payload.len(),
        });
    }
    Ok(expected)
}

/// Raw f32 payload: exactly 4n bytes.
fn decode_raw_payload(payload: &[u8], n: usize) -> Result<Vec<f32>, CodecError> {
    decode_check_payload(payload, n.checked_mul(4))?;
    Ok(payload
        .chunks_exact(4)
        .map(|c| {
            let arr: [u8; 4] = c.try_into().unwrap_or_default();
            f32::from_le_bytes(arr)
        })
        .collect())
}

/// Q8 payload: exactly n code bytes.
fn decode_q8_payload(
    payload: &[u8],
    n: usize,
    scale: f32,
    zero_point: f32,
) -> Result<Vec<f32>, CodecError> {
    decode_check_payload(payload, Some(n))?;
    Ok(payload
        .iter()
        .map(|&c| dequant_value(c as u32, scale, zero_point))
        .collect())
}

/// Q4 payload: exactly ⌈n/2⌉ bytes, low nibble first.
fn decode_q4_payload(
    payload: &[u8],
    n: usize,
    scale: f32,
    zero_point: f32,
) -> Result<Vec<f32>, CodecError> {
    decode_check_payload(payload, n.checked_add(1).map(|m| m / 2))?;
    let mut out = Vec::with_capacity(n);
    for &byte in payload {
        out.push(dequant_value((byte & 0x0f) as u32, scale, zero_point));
        if out.len() < n {
            out.push(dequant_value((byte >> 4) as u32, scale, zero_point));
        }
    }
    if out.len() != n {
        return Err(CodecError::LengthMismatch {
            expected: n,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// Top-k payload: k (index, value) pairs with strictly increasing
/// in-range indices.
fn decode_topk_pairs(payload: &[u8], n: usize, k: usize) -> Result<Vec<(u32, f32)>, CodecError> {
    if n > MAX_TOPK_ELEMS {
        return Err(CodecError::ImplausibleCount(n));
    }
    // The encoder keeps at least one coordinate of any non-empty payload
    // (`topk_k` clamps to `1..=n`), so `k == 0` is only legitimate for
    // `n == 0` — rejecting the mismatch here also closes the hostile
    // `k = 0, huge n` zero-fill.
    if k > n || (k == 0) != (n == 0) {
        return Err(CodecError::BadIndices);
    }
    decode_check_payload(payload, k.checked_mul(8))?;
    let mut pairs = Vec::with_capacity(k);
    let mut prev: Option<u32> = None;
    for chunk in payload.chunks_exact(8) {
        let i = decode_u32_at(chunk, 0)?;
        let v = f32::from_le_bytes(match chunk.get(4..8).and_then(|s| s.try_into().ok()) {
            Some(a) => a,
            None => return Err(CodecError::Truncated),
        });
        if i as usize >= n || prev.is_some_and(|p| i <= p) {
            return Err(CodecError::BadIndices);
        }
        prev = Some(i);
        pairs.push((i, v));
    }
    Ok(pairs)
}

/// Scatter a top-k payload into a dense zero-filled vector.
fn decode_topk_payload(payload: &[u8], n: usize, k: usize) -> Result<Vec<f32>, CodecError> {
    let pairs = decode_topk_pairs(payload, n, k)?;
    let mut out = vec![0.0f32; n];
    for (i, v) in pairs {
        match out.get_mut(i as usize) {
            Some(slot) => *slot = v,
            None => return Err(CodecError::BadIndices),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> CodecSpec {
        CodecSpec::parse(s).expect("spec parses")
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        assert!(spec("none").is_none());
        assert_eq!(
            spec("q8"),
            CodecSpec {
                delta: false,
                base: BaseCodec::Q8,
                stochastic: false
            }
        );
        assert_eq!(spec("q4").base, BaseCodec::Q4);
        assert_eq!(spec("topk:0.25").base, BaseCodec::TopK(0.25));
        assert!(spec("delta").delta);
        assert_eq!(spec("delta").base, BaseCodec::Raw);
        let dq8 = spec("delta+q8");
        assert!(dq8.delta);
        assert_eq!(dq8.base, BaseCodec::Q8);
        assert!(spec("delta+q8+sr").stochastic);
        assert!(spec("q4+sr").draws_rng());
        assert!(!spec("q4").draws_rng());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            " ",
            "zstd",
            "q8+q4",
            "topk:0",
            "topk:1.5",
            "topk:NaN",
            "topk:x",
            "delta+none",
            "none+q8",
            "delta+delta",
            "sr",
            "delta+sr",
            "topk:0.1+sr",
            "sr+sr+q8",
            "+",
        ] {
            assert!(CodecSpec::parse(bad).is_err(), "'{}' should not parse", bad);
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in [
            "none",
            "q8",
            "q4",
            "topk:0.1",
            "delta",
            "delta+q8",
            "delta+q8+sr",
        ] {
            let spec = spec(s);
            assert_eq!(CodecSpec::parse(&spec.to_string()), Ok(spec), "{}", s);
        }
    }

    #[test]
    fn wire_len_matches_the_layout_arithmetic() {
        assert_eq!(CodecSpec::none().wire_len(10), 40);
        assert_eq!(spec("q8").wire_len(10), WIRE_OVERHEAD_BYTES + 10);
        assert_eq!(spec("q4").wire_len(10), WIRE_OVERHEAD_BYTES + 5);
        assert_eq!(spec("q4").wire_len(11), WIRE_OVERHEAD_BYTES + 6);
        assert_eq!(spec("topk:0.3").wire_len(10), WIRE_OVERHEAD_BYTES + 3 * 8);
        assert_eq!(spec("delta").wire_len(10), WIRE_OVERHEAD_BYTES + 40);
        // k is at least 1 even for tiny fractions, and 0 for empty tensors.
        assert_eq!(spec("topk:0.01").wire_len(10), WIRE_OVERHEAD_BYTES + 8);
        assert_eq!(spec("topk:0.5").wire_len(0), WIRE_OVERHEAD_BYTES);
    }

    #[test]
    fn encoded_wire_length_matches_wire_len_exactly() {
        let payload: Vec<f32> = (0..33).map(|i| (i as f32).sin()).collect();
        let reference = vec![0.25f32; 33];
        for s in ["q8", "q4", "topk:0.1", "delta", "delta+q8", "delta+q4"] {
            let spec = spec(s);
            let enc = spec.encode(&payload, Some(&reference), None, None);
            assert_eq!(enc.wire.len(), spec.wire_len(33), "{}", s);
            assert_eq!(enc.decoded.len(), 33, "{}", s);
        }
    }

    #[test]
    fn decode_agrees_with_the_encoders_own_view() {
        let payload: Vec<f32> = (0..50)
            .map(|i| ((i * 37) % 19) as f32 * 0.3 - 2.0)
            .collect();
        let reference: Vec<f32> = (0..50).map(|i| (i as f32) * 0.01).collect();
        for s in ["q8", "q4", "topk:0.2", "delta", "delta+q8"] {
            let spec = spec(s);
            let mut residual = Vec::new();
            let enc = spec.encode(&payload, Some(&reference), Some(&mut residual), None);
            let dec = decode(&enc.wire, Some(&reference)).expect("decodes");
            assert_eq!(dec, enc.decoded, "{}", s);
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_a_step() {
        let payload: Vec<f32> = (0..101).map(|i| (i as f32) * 0.37 - 20.0).collect();
        let lo = payload.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
        let hi = payload.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
        for (s, levels) in [("q8", 255.0f64), ("q4", 15.0f64)] {
            let enc = spec(s).encode(&payload, None, None, None);
            let step = (hi - lo) / levels;
            for (x, d) in payload.iter().zip(&enc.decoded) {
                assert!(
                    ((*x as f64) - (*d as f64)).abs() <= step / 2.0 + 1e-6,
                    "{}: |{} - {}| > {}",
                    s,
                    x,
                    d,
                    step / 2.0
                );
            }
        }
    }

    #[test]
    fn constant_and_nonfinite_tensors_quantize_to_defined_values() {
        let constant = vec![3.5f32; 8];
        let enc = spec("q8").encode(&constant, None, None, None);
        assert_eq!(enc.decoded, constant, "constant tensor is exact");
        let hostile = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0, 2.0];
        let enc = spec("q4").encode(&hostile, None, None, None);
        // Non-finite elements land on the zero-point (the finite minimum).
        assert_eq!(enc.decoded[0], 1.0);
        assert_eq!(enc.decoded[1], 1.0);
        assert_eq!(enc.decoded[2], 1.0);
        assert!(enc.decoded.iter().all(|v| v.is_finite()));
        let all_nan = vec![f32::NAN; 3];
        let enc = spec("q8").encode(&all_nan, None, None, None);
        assert_eq!(enc.decoded, vec![0.0; 3], "all-NaN falls back to zero");
    }

    #[test]
    fn topk_keeps_the_largest_magnitudes_and_feeds_back_the_rest() {
        let payload = vec![0.1f32, -5.0, 0.2, 4.0, -0.3];
        let mut residual = Vec::new();
        let enc = spec("topk:0.4").encode(&payload, None, Some(&mut residual), None);
        // k = ceil(0.4 * 5) = 2: coordinates 1 (-5.0) and 3 (4.0) survive.
        assert_eq!(decode_kept_indices(&enc.wire).expect("indices"), vec![1, 3]);
        assert_eq!(enc.decoded, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
        assert_eq!(residual, vec![0.1, 0.0, 0.2, 0.0, -0.3]);

        // Next round: the residual tops up, small coordinates eventually win.
        let enc2 = spec("topk:0.4").encode(&[0.0; 5], None, Some(&mut residual), None);
        assert_eq!(
            decode_kept_indices(&enc2.wire).expect("indices"),
            vec![2, 4],
            "accumulated 0.2 and -0.3 now dominate"
        );
        assert_eq!(residual, vec![0.1, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_unsent_coordinates_revert_to_the_reference() {
        let payload = vec![1.0f32, 2.0, 3.0, 4.0];
        let reference = vec![1.0f32, 1.0, 1.0, 1.0];
        let mut residual = Vec::new();
        let enc = spec("topk:0.25").encode(&payload, Some(&reference), Some(&mut residual), None);
        // Deltas are [0, 1, 2, 3]; only index 3 is kept.
        assert_eq!(enc.decoded, vec![1.0, 1.0, 1.0, 4.0]);
        let dec = decode(&enc.wire, Some(&reference)).expect("decodes");
        assert_eq!(dec, enc.decoded);
    }

    #[test]
    fn residual_resets_on_shape_change() {
        let mut residual = vec![9.0f32; 3];
        let _ = spec("topk:0.5").encode(&[1.0, 2.0, 3.0, 4.0], None, Some(&mut residual), None);
        assert_eq!(residual.len(), 4, "stale shape is discarded, not merged");
    }

    #[test]
    fn stochastic_rounding_is_deterministic_per_stream() {
        use fedclust_tensor::rng::{derive, streams};
        let payload: Vec<f32> = (0..40).map(|i| (i as f32) * 0.123).collect();
        let s = spec("q8+sr");
        let enc_a = s.encode(
            &payload,
            None,
            None,
            Some(&mut derive(7, &[streams::CODEC, 3, 5])),
        );
        let enc_b = s.encode(
            &payload,
            None,
            None,
            Some(&mut derive(7, &[streams::CODEC, 3, 5])),
        );
        assert_eq!(enc_a, enc_b, "same stream, same bytes");
        let enc_c = s.encode(
            &payload,
            None,
            None,
            Some(&mut derive(7, &[streams::CODEC, 3, 6])),
        );
        assert_ne!(enc_a.wire, enc_c.wire, "different client, different draws");
    }

    #[test]
    fn decode_rejects_tampered_and_truncated_messages() {
        let payload = vec![1.0f32, -2.0, 3.0];
        let enc = spec("q8").encode(&payload, None, None, None);
        assert_eq!(decode(&[], None), Err(CodecError::Truncated));
        assert_eq!(decode(&enc.wire[..5], None), Err(CodecError::Truncated));
        let mut flipped = enc.wire.clone();
        flipped[WIRE_HEADER_BYTES] ^= 0xff;
        assert_eq!(decode(&flipped, None), Err(CodecError::Checksum));
        // Checksum-valid but hostile: bad tag.
        let mut hostile = enc.wire[..enc.wire.len() - 8].to_vec();
        hostile[0] = 200;
        let sum = fnv64(&hostile);
        hostile.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&hostile, None), Err(CodecError::BadTag(200)));
    }

    #[test]
    fn decode_rejects_hostile_topk_indices() {
        // Build a checksum-valid top-k message with out-of-range indices.
        let mut body = Vec::new();
        write_header(&mut body, TAG_TOPK, 0, 4, 1, 0);
        body.extend_from_slice(&9u32.to_le_bytes());
        body.extend_from_slice(&1.0f32.to_le_bytes());
        finish(&mut body);
        assert_eq!(decode(&body, None), Err(CodecError::BadIndices));
        // And one with k > n.
        let mut body = Vec::new();
        write_header(&mut body, TAG_TOPK, 0, 2, 3, 0);
        for i in 0..3u32 {
            body.extend_from_slice(&i.to_le_bytes());
            body.extend_from_slice(&0.5f32.to_le_bytes());
        }
        finish(&mut body);
        assert_eq!(decode(&body, None), Err(CodecError::BadIndices));
    }

    #[test]
    fn decode_rejects_implausible_sparse_counts() {
        // Checksum-valid top-k message claiming 2^31 elements with one
        // kept pair: must be rejected before any dense allocation.
        let mut body = Vec::new();
        write_header(&mut body, TAG_TOPK, 0, 1 << 31, 1, 0);
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&1.0f32.to_le_bytes());
        finish(&mut body);
        assert_eq!(
            decode(&body, None),
            Err(CodecError::ImplausibleCount(1 << 31))
        );
        // And the k = 0 with n > 0 variant (empty payload, huge zero-fill).
        let mut body = Vec::new();
        write_header(&mut body, TAG_TOPK, 0, 1 << 20, 0, 0);
        finish(&mut body);
        assert_eq!(decode(&body, None), Err(CodecError::BadIndices));
    }

    #[test]
    fn delta_decode_requires_the_reference() {
        let payload = vec![1.0f32, 2.0];
        let reference = vec![0.5f32, 0.5];
        let enc = spec("delta+q8").encode(&payload, Some(&reference), None, None);
        assert_eq!(decode(&enc.wire, None), Err(CodecError::MissingReference));
        assert_eq!(
            decode(&enc.wire, Some(&[0.0])),
            Err(CodecError::MissingReference),
            "wrong-length reference is rejected"
        );
        assert!(decode(&enc.wire, Some(&reference)).is_ok());
    }

    #[test]
    fn delta_without_a_reference_degrades_to_identity_coding() {
        let payload = vec![4.0f32, 5.0];
        let enc = spec("delta").encode(&payload, None, None, None);
        assert_eq!(enc.decoded, payload);
        assert_eq!(decode(&enc.wire, None).expect("decodes"), payload);
    }
}
