//! Crash-safe checkpointing and bit-identical resume.
//!
//! Long federated runs die: OOM kills, preemption, power loss. FedClust in
//! particular concentrates its value in one-shot state — the round-0
//! partial weights, proximity matrix, and cluster assignment are computed
//! once and are not cheaply recomputable — so losing a process at round
//! 150 of 200 must not discard the run. This module provides:
//!
//! * a versioned, FNV-64-checksummed **binary checkpoint format**
//!   ([`Checkpoint`]) carrying the round index, per-method server state
//!   ([`MethodState`]), per-method persistent *client* state (LG personal
//!   layers, SCAFFOLD `c_i`, FedDyn `λ_i`), and the run's
//!   [`CommMeter`]/[`FaultTelemetry`] counters;
//! * **torn-write safety**: checkpoints are written to `*.tmp`, fsynced,
//!   and atomically renamed into place; the last K generations are kept;
//! * a **fallback loader**: a corrupted or truncated newest generation is
//!   detected by the magic/version/checksum header and skipped with a
//!   diagnostic, falling back to the newest valid generation;
//! * **bit-identical resume**: every random decision in the engine derives
//!   statelessly from `(seed, stream, round, client)` (no RNG state is
//!   carried across rounds), so a checkpoint needs only the seed identity
//!   plus the server-side state for a resumed run to finish byte-identical
//!   to an uninterrupted one. `tests/crash_recovery.rs` asserts this.
//!
//! The f32/f64 values are stored as little-endian bit patterns, so resume
//! is exact for every value including NaN payloads and subnormals.

use crate::comm::CommMeter;
use crate::faults::{CrashPlan, FaultTelemetry, CRASH_EXIT_CODE};
use crate::metrics::RoundRecord;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: identifies a fedclust checkpoint at a glance.
pub const MAGIC: [u8; 8] = *b"FEDCKPT\n";

/// Current checkpoint format version. Version 2 added the transport's
/// per-client codec residuals (top-k error feedback) after the method
/// state; version-1 images are refused rather than silently resumed with
/// zeroed residuals, which would break bit-identity.
pub const FORMAT_VERSION: u32 = 2;

/// Why a checkpoint operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// A filesystem operation failed (create/write/sync/rename/read).
    Io(String),
    /// A checkpoint file failed validation: bad magic, unsupported
    /// version, truncation, checksum mismatch, or malformed payload.
    Corrupt(String),
    /// The checkpoint is valid but belongs to a different run (method,
    /// seed, model, or federation shape differs).
    Mismatch(String),
    /// The method cannot resume from the state variant it was handed.
    WrongState(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(m) => write!(f, "checkpoint I/O error: {}", m),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {}", m),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {}", m),
            CheckpointError::WrongState(m) => write!(f, "wrong checkpoint state: {}", m),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit checksum (hand-rolled; no external deps).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The server-side state a method needs to continue mid-run. Variants
/// carry persistent *client* state too (personal layers, control
/// variates, duals) — that state lives on the server in this simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodState {
    /// One global model (FedAvg/FedProx/FedNova/PerFedAvg).
    Global {
        /// The global state vector.
        state: Vec<f32>,
    },
    /// LG-FedAvg: the shared tail plus every client's full personal state.
    Lg {
        /// The communicated global tail (global blocks + extra state).
        global_part: Vec<f32>,
        /// Each client's full state vector (local layers persist).
        client_states: Vec<Vec<f32>>,
    },
    /// SCAFFOLD: model, global control variate, per-client variates.
    Scaffold {
        /// The server model state vector.
        state: Vec<f32>,
        /// The global control variate `c`.
        c_global: Vec<f32>,
        /// Each client's control variate `c_i`.
        c_clients: Vec<Vec<f32>>,
    },
    /// FedDyn: model, server corrector `h`, per-client duals `λ_i`.
    FedDyn {
        /// The server model state vector.
        state: Vec<f32>,
        /// The server's running corrector `h`.
        h: Vec<f32>,
        /// Each client's dual variable `λ_i`.
        lambdas: Vec<Vec<f32>>,
    },
    /// IFCA: the k cluster models.
    Ifca {
        /// One state vector per cluster model.
        states: Vec<Vec<f32>>,
    },
    /// CFL: dynamic clusters plus the split-decision caches.
    Cfl {
        /// One state vector per current cluster.
        states: Vec<Vec<f32>>,
        /// Member client ids per current cluster.
        members: Vec<Vec<usize>>,
        /// Latest cached update direction per client.
        last_update: Vec<Option<Vec<f32>>>,
        /// The scale-free split-threshold reference norm, once captured.
        reference_norm: Option<f64>,
    },
    /// Static clustered training (PACFL): cluster models + assignment.
    Clustered {
        /// One state vector per cluster.
        states: Vec<Vec<f32>>,
        /// Cluster id per client.
        labels: Vec<usize>,
    },
    /// FedClust: the serialized `SavedFederation` snapshot (cluster
    /// states, representatives, labels, θ⁰) from the `fedclust` crate,
    /// carried opaquely since `fl` cannot depend on it.
    FedClust {
        /// `SavedFederation::to_json()` output.
        federation_json: String,
    },
}

impl MethodState {
    /// Variant name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            MethodState::Global { .. } => "Global",
            MethodState::Lg { .. } => "Lg",
            MethodState::Scaffold { .. } => "Scaffold",
            MethodState::FedDyn { .. } => "FedDyn",
            MethodState::Ifca { .. } => "Ifca",
            MethodState::Cfl { .. } => "Cfl",
            MethodState::Clustered { .. } => "Clustered",
            MethodState::FedClust { .. } => "FedClust",
        }
    }
}

/// One durable snapshot of a run: everything needed to continue from
/// `next_round` bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Method display name (resume refuses a different method's file).
    pub method: String,
    /// Root experiment seed — the RNG stream identity. All engine RNG
    /// derives statelessly from `(seed, stream, round, client)`, so the
    /// seed alone pins every future random decision.
    pub seed: u64,
    /// The next round to run (0-based). A FedClust post-clustering
    /// checkpoint has `next_round == 0`: clustering done, no training yet.
    pub next_round: usize,
    /// Communication accounting at the snapshot point.
    pub meter: CommMeter,
    /// Fault-injection counters at the snapshot point.
    pub telemetry: FaultTelemetry,
    /// Evaluation history up to the snapshot point.
    pub history: Vec<RoundRecord>,
    /// The method's server state.
    pub state: MethodState,
    /// The transport's per-client codec error-feedback residuals (top-k
    /// compression), sorted by client id. Empty for uncompressed runs and
    /// for codecs without persistent client state.
    pub residuals: Vec<(usize, Vec<f32>)>,
}

impl Checkpoint {
    /// Serialize to the on-disk image (header + checksummed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Enc::default();
        payload.str(&self.method);
        payload.u64(self.seed);
        payload.u64(self.next_round as u64);
        payload.f64(self.meter.downlink_bytes());
        payload.f64(self.meter.uplink_bytes());
        payload.u64(self.telemetry.faults_injected as u64);
        payload.u64(self.telemetry.updates_quarantined as u64);
        payload.u64(self.telemetry.retries as u64);
        payload.u64(self.telemetry.downlink_failures as u64);
        payload.u64(self.telemetry.uplink_losses as u64);
        payload.u64(self.telemetry.deadline_misses as u64);
        payload.u64(self.history.len() as u64);
        for r in &self.history {
            payload.u64(r.round as u64);
            payload.f64(r.avg_acc);
            payload.f64(r.cum_mb);
        }
        encode_state(&mut payload, &self.state);
        payload.u64(self.residuals.len() as u64);
        for (client, res) in &self.residuals {
            payload.u64(*client as u64);
            payload.vec_f32(res);
        }
        let payload = payload.buf;

        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode and verify an on-disk image.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let too_short = || {
            CheckpointError::Corrupt(format!(
                "file too short for a header ({} bytes)",
                bytes.len()
            ))
        };
        let magic: [u8; 8] = header_field(bytes, 0).ok_or_else(too_short)?;
        if magic != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(header_field(bytes, 8).ok_or_else(too_short)?);
        if version != FORMAT_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported format version {} (this build reads {})",
                version, FORMAT_VERSION
            )));
        }
        let payload_len =
            u64::from_le_bytes(header_field(bytes, 12).ok_or_else(too_short)?) as usize;
        let checksum = u64::from_le_bytes(header_field(bytes, 20).ok_or_else(too_short)?);
        let payload = bytes.get(28..).ok_or_else(too_short)?;
        if payload.len() != payload_len {
            return Err(CheckpointError::Corrupt(format!(
                "truncated: header promises {} payload bytes, file has {}",
                payload_len,
                payload.len()
            )));
        }
        let actual = fnv64(payload);
        if actual != checksum {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch: header {:#018x}, payload {:#018x}",
                checksum, actual
            )));
        }

        let mut d = Dec {
            bytes: payload,
            pos: 0,
        };
        let method = d.str()?;
        let seed = d.u64()?;
        let next_round = d.usize()?;
        let meter = CommMeter::from_bytes(d.f64()?, d.f64()?);
        let telemetry = FaultTelemetry {
            faults_injected: d.usize()?,
            updates_quarantined: d.usize()?,
            retries: d.usize()?,
            downlink_failures: d.usize()?,
            uplink_losses: d.usize()?,
            deadline_misses: d.usize()?,
        };
        let n = d.len("history")?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push(RoundRecord {
                round: d.usize()?,
                avg_acc: d.f64()?,
                cum_mb: d.f64()?,
            });
        }
        let state = decode_state(&mut d)?;
        let n = d.len("codec residuals")?;
        let mut residuals = Vec::with_capacity(n);
        for _ in 0..n {
            residuals.push((d.usize()?, d.vec_f32()?));
        }
        if d.pos != d.bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after the payload",
                d.remaining()
            )));
        }
        Ok(Checkpoint {
            method,
            seed,
            next_round,
            meter,
            telemetry,
            history,
            state,
            residuals,
        })
    }
}

fn encode_state(e: &mut Enc, state: &MethodState) {
    match state {
        MethodState::Global { state } => {
            e.u8(0);
            e.vec_f32(state);
        }
        MethodState::Lg {
            global_part,
            client_states,
        } => {
            e.u8(1);
            e.vec_f32(global_part);
            e.vec_vec_f32(client_states);
        }
        MethodState::Scaffold {
            state,
            c_global,
            c_clients,
        } => {
            e.u8(2);
            e.vec_f32(state);
            e.vec_f32(c_global);
            e.vec_vec_f32(c_clients);
        }
        MethodState::FedDyn { state, h, lambdas } => {
            e.u8(3);
            e.vec_f32(state);
            e.vec_f32(h);
            e.vec_vec_f32(lambdas);
        }
        MethodState::Ifca { states } => {
            e.u8(4);
            e.vec_vec_f32(states);
        }
        MethodState::Cfl {
            states,
            members,
            last_update,
            reference_norm,
        } => {
            e.u8(5);
            e.vec_vec_f32(states);
            e.u64(members.len() as u64);
            for m in members {
                e.vec_usize(m);
            }
            e.u64(last_update.len() as u64);
            for u in last_update {
                match u {
                    None => e.u8(0),
                    Some(v) => {
                        e.u8(1);
                        e.vec_f32(v);
                    }
                }
            }
            match reference_norm {
                None => e.u8(0),
                Some(v) => {
                    e.u8(1);
                    e.f64(*v);
                }
            }
        }
        MethodState::Clustered { states, labels } => {
            e.u8(6);
            e.vec_vec_f32(states);
            e.vec_usize(labels);
        }
        MethodState::FedClust { federation_json } => {
            e.u8(7);
            e.str(federation_json);
        }
    }
}

fn decode_state(d: &mut Dec<'_>) -> Result<MethodState, CheckpointError> {
    match d.u8()? {
        0 => Ok(MethodState::Global {
            state: d.vec_f32()?,
        }),
        1 => Ok(MethodState::Lg {
            global_part: d.vec_f32()?,
            client_states: d.vec_vec_f32()?,
        }),
        2 => Ok(MethodState::Scaffold {
            state: d.vec_f32()?,
            c_global: d.vec_f32()?,
            c_clients: d.vec_vec_f32()?,
        }),
        3 => Ok(MethodState::FedDyn {
            state: d.vec_f32()?,
            h: d.vec_f32()?,
            lambdas: d.vec_vec_f32()?,
        }),
        4 => Ok(MethodState::Ifca {
            states: d.vec_vec_f32()?,
        }),
        5 => {
            let states = d.vec_vec_f32()?;
            let n = d.len("cfl members")?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(d.vec_usize()?);
            }
            let n = d.len("cfl last_update")?;
            let mut last_update = Vec::with_capacity(n);
            for _ in 0..n {
                last_update.push(match d.u8()? {
                    0 => None,
                    1 => Some(d.vec_f32()?),
                    t => {
                        return Err(CheckpointError::Corrupt(format!(
                            "bad option tag {} in cfl last_update",
                            t
                        )))
                    }
                });
            }
            let reference_norm = match d.u8()? {
                0 => None,
                1 => Some(d.f64()?),
                t => {
                    return Err(CheckpointError::Corrupt(format!(
                        "bad option tag {} in cfl reference_norm",
                        t
                    )))
                }
            };
            Ok(MethodState::Cfl {
                states,
                members,
                last_update,
                reference_norm,
            })
        }
        6 => Ok(MethodState::Clustered {
            states: d.vec_vec_f32()?,
            labels: d.vec_usize()?,
        }),
        7 => Ok(MethodState::FedClust {
            federation_json: d.str()?,
        }),
        t => Err(CheckpointError::Corrupt(format!(
            "unknown method-state tag {}",
            t
        ))),
    }
}

/// Little-endian binary encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn vec_f32(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    fn vec_vec_f32(&mut self, v: &[Vec<f32>]) {
        self.u64(v.len() as u64);
        for inner in v {
            self.vec_f32(inner);
        }
    }
    fn vec_usize(&mut self, v: &[usize]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x as u64);
        }
    }
}

/// Read a fixed-width header field at `at` without bare indexing: returns
/// `None` when the file is too short instead of panicking on hostile input.
fn header_field<const N: usize>(bytes: &[u8], at: usize) -> Option<[u8; N]> {
    let src = at.checked_add(N).and_then(|end| bytes.get(at..end))?;
    let mut out = [0u8; N];
    out.copy_from_slice(src);
    Some(out)
}

/// Little-endian binary decoder with bounds checks on every read, so a
/// payload that passes the checksum but was produced by a different build
/// still fails loudly instead of over-allocating or panicking.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Bytes left after the cursor; saturating so even a corrupted cursor
    /// cannot underflow an error-message computation.
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| Some((self.bytes.get(self.pos..end)?, end)));
        match slice {
            Some((s, end)) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(CheckpointError::Corrupt(format!(
                "payload ends inside {} (need {} bytes at offset {}, have {})",
                what,
                n,
                self.pos,
                self.remaining()
            ))),
        }
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        let b = self.take(1, "u8")?;
        Ok(b.first().copied().unwrap_or_default())
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8, "u64")?);
        Ok(u64::from_le_bytes(b))
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Corrupt(format!("{} does not fit in usize", v)))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4, "f32")?);
        Ok(f32::from_bits(u32::from_le_bytes(b)))
    }
    /// A length prefix, validated against the bytes actually remaining
    /// (each element needs at least one byte) to bound allocations.
    fn len(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CheckpointError::Corrupt(format!(
                "implausible {} length {} with {} payload bytes left",
                what,
                n,
                self.remaining()
            )));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.len("string")?;
        let bytes = self.take(n, "string")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("string is not UTF-8".into()))
    }
    fn vec_f32(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.usize()?;
        if n.checked_mul(4)
            .filter(|&b| b <= self.remaining())
            .is_none()
        {
            return Err(CheckpointError::Corrupt(format!(
                "implausible f32 vector length {} with {} payload bytes left",
                n,
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }
    fn vec_vec_f32(&mut self) -> Result<Vec<Vec<f32>>, CheckpointError> {
        let n = self.len("nested vector")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.vec_f32()?);
        }
        Ok(out)
    }
    fn vec_usize(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let n = self.usize()?;
        if n.checked_mul(8)
            .filter(|&b| b <= self.remaining())
            .is_none()
        {
            return Err(CheckpointError::Corrupt(format!(
                "implausible index vector length {} with {} payload bytes left",
                n,
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.usize()?);
        }
        Ok(out)
    }
}

/// The checkpoint file name of generation `next_round`.
pub fn generation_file(next_round: usize) -> String {
    format!("ckpt-{:06}.bin", next_round)
}

/// All checkpoint generations in `dir`, sorted oldest first. A missing
/// directory is simply empty. `*.tmp` leftovers are ignored (they are, by
/// protocol, incomplete).
pub fn list_generations(dir: &Path) -> Result<Vec<(usize, PathBuf)>, CheckpointError> {
    let mut out: Vec<(usize, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => {
            return Err(CheckpointError::Io(format!(
                "cannot list {}: {}",
                dir.display(),
                e
            )))
        }
    };
    for entry in entries {
        let entry = entry
            .map_err(|e| CheckpointError::Io(format!("cannot list {}: {}", dir.display(), e)))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("ckpt-")
            .and_then(|r| r.strip_suffix(".bin"))
        else {
            continue;
        };
        let Ok(generation) = num.parse::<usize>() else {
            continue;
        };
        out.push((generation, entry.path()));
    }
    // read_dir order is filesystem-dependent; sort for determinism.
    out.sort_by_key(|&(g, _)| g);
    Ok(out)
}

/// Scan `dir` newest-generation-first and return the first checkpoint that
/// decodes and verifies, plus the diagnostics for every generation that
/// had to be skipped. A corrupted or truncated newest file therefore falls
/// back to the previous valid generation; if nothing valid remains, the
/// caller starts fresh.
pub fn load_latest(dir: &Path) -> Result<(Option<Checkpoint>, Vec<String>), CheckpointError> {
    let mut diagnostics = Vec::new();
    let mut generations = list_generations(dir)?;
    generations.reverse();
    for (_, path) in generations {
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                diagnostics.push(format!(
                    "skipping unreadable checkpoint {}: {}",
                    path.display(),
                    e
                ));
                continue;
            }
        };
        match Checkpoint::decode(&bytes) {
            Ok(cp) => return Ok((Some(cp), diagnostics)),
            Err(e) => diagnostics.push(format!(
                "skipping {}: {}; falling back to an older generation",
                path.display(),
                e
            )),
        }
    }
    Ok((None, diagnostics))
}

/// Drives when checkpoints are written, where they live, how many
/// generations are kept, and whether/where to resume. A disabled
/// checkpointer ([`Checkpointer::disabled`]) performs no I/O at all, so
/// `run` paths without checkpointing pay nothing.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: Option<PathBuf>,
    every: usize,
    keep: usize,
    resume: bool,
    crash: CrashPlan,
    diagnostics: Vec<String>,
}

impl Checkpointer {
    /// No checkpointing: every hook is a no-op and cannot fail.
    pub fn disabled() -> Self {
        Checkpointer {
            dir: None,
            every: 1,
            keep: 3,
            resume: false,
            crash: CrashPlan::none(),
            diagnostics: Vec::new(),
        }
    }

    /// Checkpoint into `dir` after every round, keeping 3 generations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Checkpointer {
            dir: Some(dir.into()),
            ..Checkpointer::disabled()
        }
    }

    /// Checkpoint every `every` rounds (minimum 1).
    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Keep the newest `keep` generations (minimum 1).
    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Whether [`Checkpointer::resume_point`] should look for an existing
    /// checkpoint (off by default: a fresh run ignores old generations).
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Arm a deterministic crash plan (testing aid; see
    /// [`crate::faults::CrashPlan`]).
    pub fn crash(mut self, plan: CrashPlan) -> Self {
        self.crash = plan;
        self
    }

    /// Whether checkpoints will actually be written.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Human-readable notes accumulated while loading (skipped corrupt
    /// generations, the resume decision). Surface these to the user.
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// Find the checkpoint to resume from, if any. Validates that it
    /// belongs to this `(method, seed)` run; corrupt generations are
    /// skipped with a diagnostic, and if no valid generation remains the
    /// run starts fresh (with a diagnostic saying so).
    pub fn resume_point(
        &mut self,
        method: &str,
        seed: u64,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        if !self.resume {
            return Ok(None);
        }
        let (found, diags) = load_latest(dir)?;
        let had_skips = !diags.is_empty();
        self.diagnostics.extend(diags);
        match found {
            None => {
                if had_skips {
                    self.diagnostics.push(format!(
                        "no valid checkpoint generation left in {}; starting fresh",
                        dir.display()
                    ));
                }
                Ok(None)
            }
            Some(cp) => {
                if cp.method != method {
                    return Err(CheckpointError::Mismatch(format!(
                        "checkpoint in {} belongs to method {} (this run is {})",
                        dir.display(),
                        cp.method,
                        method
                    )));
                }
                if cp.seed != seed {
                    return Err(CheckpointError::Mismatch(format!(
                        "checkpoint in {} was written with seed {} (this run uses {}); \
                         resuming would not be bit-identical",
                        dir.display(),
                        cp.seed,
                        seed
                    )));
                }
                self.diagnostics.push(format!(
                    "resuming {} from {} at round {}",
                    method,
                    dir.display(),
                    cp.next_round
                ));
                Ok(Some(cp))
            }
        }
    }

    /// End-of-round hook: write a checkpoint if one is due at `round`
    /// (0-based), then honour any armed crash plan. `build` is only called
    /// when a checkpoint will actually be written.
    pub fn on_round_end(
        &mut self,
        round: usize,
        build: impl FnOnce() -> Checkpoint,
    ) -> Result<(), CheckpointError> {
        let crash_here = self.crash.after_round == Some(round);
        let torn = crash_here && self.crash.mid_write;
        let due = self.is_enabled() && (round + 1).is_multiple_of(self.every);
        if due || (torn && self.is_enabled()) {
            let cp = build();
            self.write(&cp, torn)?;
        }
        if crash_here {
            // Deterministic process death between rounds (a torn mid-write
            // crash exits inside `write` instead and never reaches here).
            std::process::exit(CRASH_EXIT_CODE);
        }
        Ok(())
    }

    /// Write a checkpoint immediately, regardless of cadence — for
    /// one-shot state whose recomputation is the whole point of
    /// checkpointing (FedClust's post-clustering snapshot).
    pub fn save_now(&mut self, cp: &Checkpoint) -> Result<(), CheckpointError> {
        if self.is_enabled() {
            self.write(cp, false)?;
        }
        Ok(())
    }

    /// Torn-write-safe write: `*.tmp` → fsync → atomic rename → prune old
    /// generations. With `torn` set (crash injection), only half the image
    /// reaches the tmp file and the process dies, leaving the previous
    /// generation untouched.
    fn write(&mut self, cp: &Checkpoint, torn: bool) -> Result<(), CheckpointError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        fs::create_dir_all(&dir)
            .map_err(|e| CheckpointError::Io(format!("cannot create {}: {}", dir.display(), e)))?;
        let bytes = cp.encode();
        let name = generation_file(cp.next_round);
        let tmp = dir.join(format!("{}.tmp", name));
        let fin = dir.join(&name);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| {
                CheckpointError::Io(format!("cannot create {}: {}", tmp.display(), e))
            })?;
            if torn {
                // Simulated power cut halfway through the write. The tmp
                // file is torn; the rename never happens; the newest *real*
                // generation stays valid.
                let _ = f.write_all(&bytes[..bytes.len() / 2]);
                let _ = f.sync_all();
                std::process::exit(CRASH_EXIT_CODE);
            }
            f.write_all(&bytes).map_err(|e| {
                CheckpointError::Io(format!("cannot write {}: {}", tmp.display(), e))
            })?;
            f.sync_all().map_err(|e| {
                CheckpointError::Io(format!("cannot sync {}: {}", tmp.display(), e))
            })?;
        }
        fs::rename(&tmp, &fin).map_err(|e| {
            CheckpointError::Io(format!("cannot rename into {}: {}", fin.display(), e))
        })?;
        // Make the rename itself durable. Best-effort: some filesystems
        // reject fsync on a directory handle.
        if let Ok(d) = fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        self.prune(&dir)
    }

    /// Remove generations beyond the newest `keep`.
    fn prune(&mut self, dir: &Path) -> Result<(), CheckpointError> {
        let mut generations = list_generations(dir)?;
        while generations.len() > self.keep {
            let (_, path) = generations.remove(0);
            fs::remove_file(&path).map_err(|e| {
                CheckpointError::Io(format!("cannot prune {}: {}", path.display(), e))
            })?;
        }
        Ok(())
    }
}

/// Validate that a restored vector has the length this run's architecture
/// and federation dictate. Checksummed data that decodes cleanly can still
/// come from a different configuration (model, client count, cluster
/// count); this turns that into a clear error instead of a panic deep in
/// `set_state_vec`.
pub fn check_len(what: &str, actual: usize, expected: usize) -> Result<(), CheckpointError> {
    if actual == expected {
        Ok(())
    } else {
        Err(CheckpointError::Mismatch(format!(
            "{}: checkpoint carries {} values, this run needs {} \
             (different model, federation, or hyper-parameters?)",
            what, actual, expected
        )))
    }
}

/// Run a resumable method body with checkpointing disabled. A disabled
/// [`Checkpointer`] performs no I/O and offers no resume state, so the
/// body's checkpoint-error channel is structurally unreachable — this is
/// what lets `FlMethod::run` keep its infallible signature.
pub fn run_without_checkpoints<T>(
    body: impl FnOnce(&mut Checkpointer) -> Result<T, CheckpointError>,
) -> T {
    let mut ckpt = Checkpointer::disabled();
    match body(&mut ckpt) {
        Ok(v) => v,
        // fedlint::allow(panic-reachability): a disabled Checkpointer does no I/O and offers no resume state, so this error channel cannot fire
        Err(e) => unreachable!("disabled checkpointer reported an error: {}", e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(state: MethodState) -> Checkpoint {
        let mut meter = CommMeter::new();
        meter.down(123);
        meter.up(45);
        Checkpoint {
            method: "TestMethod".into(),
            seed: 42,
            next_round: 7,
            meter,
            telemetry: FaultTelemetry {
                faults_injected: 1,
                updates_quarantined: 2,
                retries: 3,
                downlink_failures: 4,
                uplink_losses: 5,
                deadline_misses: 6,
            },
            history: vec![
                RoundRecord {
                    round: 1,
                    avg_acc: 0.25,
                    cum_mb: 0.5,
                },
                RoundRecord {
                    round: 2,
                    avg_acc: 0.5,
                    cum_mb: 1.0,
                },
            ],
            state,
            residuals: vec![(0, vec![0.25, -0.5]), (3, vec![f32::MIN_POSITIVE])],
        }
    }

    fn all_states() -> Vec<MethodState> {
        vec![
            MethodState::Global {
                state: vec![1.0, -2.5, f32::MIN_POSITIVE, -0.0],
            },
            MethodState::Lg {
                global_part: vec![0.5; 3],
                client_states: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            },
            MethodState::Scaffold {
                state: vec![1.0],
                c_global: vec![0.1],
                c_clients: vec![vec![0.2], vec![0.3]],
            },
            MethodState::FedDyn {
                state: vec![1.0],
                h: vec![-0.5],
                lambdas: vec![vec![0.0], vec![1e-30]],
            },
            MethodState::Ifca {
                states: vec![vec![9.0; 4]; 3],
            },
            MethodState::Cfl {
                states: vec![vec![1.0], vec![2.0]],
                members: vec![vec![0, 2], vec![1]],
                last_update: vec![Some(vec![0.5]), None, Some(vec![-0.5])],
                reference_norm: Some(1.25),
            },
            MethodState::Clustered {
                states: vec![vec![7.0; 2]; 2],
                labels: vec![0, 1, 0],
            },
            MethodState::FedClust {
                federation_json: "{\"labels\":[0,1]}".into(),
            },
        ]
    }

    #[test]
    fn every_state_variant_round_trips() {
        for state in all_states() {
            let cp = sample_checkpoint(state);
            let image = cp.encode();
            let back = Checkpoint::decode(&image).unwrap();
            assert_eq!(back, cp);
            // Idempotent re-encode: byte-identical images.
            assert_eq!(back.encode(), image);
        }
    }

    #[test]
    fn nan_and_inf_round_trip_bit_exact() {
        let cp = sample_checkpoint(MethodState::Global {
            state: vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0],
        });
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        let MethodState::Global { state } = back.state else {
            panic!("wrong variant");
        };
        let bits: Vec<u32> = state.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                f32::NAN.to_bits(),
                f32::INFINITY.to_bits(),
                f32::NEG_INFINITY.to_bits(),
                (-0.0f32).to_bits()
            ]
        );
    }

    #[test]
    fn corruption_is_detected() {
        let cp = sample_checkpoint(MethodState::Global {
            state: vec![1.0; 64],
        });
        let image = cp.encode();

        // Flip a payload byte: checksum mismatch.
        let mut flipped = image.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(matches!(
            Checkpoint::decode(&flipped),
            Err(CheckpointError::Corrupt(_))
        ));

        // Truncate: length mismatch.
        assert!(matches!(
            Checkpoint::decode(&image[..image.len() / 2]),
            Err(CheckpointError::Corrupt(_))
        ));

        // Wrong magic.
        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&bad_magic),
            Err(CheckpointError::Corrupt(_))
        ));

        // Future version.
        let mut future = image.clone();
        future[8] = 99;
        let err = Checkpoint::decode(&future).unwrap_err();
        assert!(err.to_string().contains("version"), "{}", err);

        // Empty / garbage files.
        assert!(Checkpoint::decode(&[]).is_err());
        assert!(Checkpoint::decode(&[0u8; 27]).is_err());
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fedclust-ckpt-unit-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn atomic_write_and_generation_rotation() {
        let dir = tmp_dir("rotate");
        let mut ckpt = Checkpointer::new(&dir).keep(2);
        for round in 0..5 {
            ckpt.on_round_end(round, || {
                let mut cp = sample_checkpoint(MethodState::Global { state: vec![1.0] });
                cp.next_round = round + 1;
                cp
            })
            .unwrap();
        }
        let generations = list_generations(&dir).unwrap();
        let nums: Vec<usize> = generations.iter().map(|&(g, _)| g).collect();
        assert_eq!(nums, vec![4, 5], "keep=2 retains the newest two");
        // No tmp litter after clean writes.
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count();
        assert_eq!(tmps, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cadence_skips_off_rounds() {
        let dir = tmp_dir("cadence");
        let mut ckpt = Checkpointer::new(&dir).every(3).keep(10);
        for round in 0..7 {
            ckpt.on_round_end(round, || {
                let mut cp = sample_checkpoint(MethodState::Global { state: vec![1.0] });
                cp.next_round = round + 1;
                cp
            })
            .unwrap();
        }
        let nums: Vec<usize> = list_generations(&dir)
            .unwrap()
            .iter()
            .map(|&(g, _)| g)
            .collect();
        assert_eq!(nums, vec![3, 6], "every=3 writes after rounds 2 and 5");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loader_falls_back_over_corrupt_generations() {
        let dir = tmp_dir("fallback");
        let mut ckpt = Checkpointer::new(&dir).keep(10);
        for round in 0..3 {
            ckpt.on_round_end(round, || {
                let mut cp = sample_checkpoint(MethodState::Global { state: vec![1.0] });
                cp.next_round = round + 1;
                cp
            })
            .unwrap();
        }
        // Corrupt the newest generation, truncate the middle one.
        let newest = dir.join(generation_file(3));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&newest, &bytes).unwrap();
        let middle = dir.join(generation_file(2));
        let bytes = fs::read(&middle).unwrap();
        fs::write(&middle, &bytes[..bytes.len() / 3]).unwrap();

        let (found, diagnostics) = load_latest(&dir).unwrap();
        let cp = found.expect("generation 1 is still valid");
        assert_eq!(cp.next_round, 1);
        assert_eq!(diagnostics.len(), 2, "{:?}", diagnostics);

        // Resume validation: matching run resumes, others are refused.
        let mut resuming = Checkpointer::new(&dir).resume(true);
        let point = resuming.resume_point("TestMethod", 42).unwrap();
        assert_eq!(point.unwrap().next_round, 1);
        assert!(resuming
            .diagnostics()
            .iter()
            .any(|d| d.contains("resuming")));
        let mut wrong_seed = Checkpointer::new(&dir).resume(true);
        assert!(matches!(
            wrong_seed.resume_point("TestMethod", 43),
            Err(CheckpointError::Mismatch(_))
        ));
        let mut wrong_method = Checkpointer::new(&dir).resume(true);
        assert!(matches!(
            wrong_method.resume_point("Other", 42),
            Err(CheckpointError::Mismatch(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_corrupt_starts_fresh_with_diagnostics() {
        let dir = tmp_dir("all-corrupt");
        let mut ckpt = Checkpointer::new(&dir).keep(10);
        for round in 0..2 {
            ckpt.on_round_end(round, || {
                let mut cp = sample_checkpoint(MethodState::Global { state: vec![1.0] });
                cp.next_round = round + 1;
                cp
            })
            .unwrap();
        }
        for (_, path) in list_generations(&dir).unwrap() {
            fs::write(&path, b"not a checkpoint").unwrap();
        }
        let mut resuming = Checkpointer::new(&dir).resume(true);
        assert_eq!(resuming.resume_point("TestMethod", 42).unwrap(), None);
        assert!(
            resuming
                .diagnostics()
                .iter()
                .any(|d| d.contains("starting fresh")),
            "{:?}",
            resuming.diagnostics()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_checkpointer_is_inert() {
        let mut ckpt = Checkpointer::disabled();
        assert!(!ckpt.is_enabled());
        assert_eq!(ckpt.resume_point("X", 0).unwrap(), None);
        let mut built = false;
        ckpt.on_round_end(0, || {
            built = true;
            sample_checkpoint(MethodState::Global { state: vec![] })
        })
        .unwrap();
        assert!(!built, "a disabled checkpointer never builds a snapshot");
    }

    #[test]
    fn resume_off_ignores_existing_generations() {
        let dir = tmp_dir("no-resume");
        let mut ckpt = Checkpointer::new(&dir);
        ckpt.on_round_end(0, || {
            let mut cp = sample_checkpoint(MethodState::Global { state: vec![1.0] });
            cp.next_round = 1;
            cp
        })
        .unwrap();
        let mut fresh = Checkpointer::new(&dir); // resume defaults to off
        assert_eq!(fresh.resume_point("TestMethod", 42).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = CheckpointError::Corrupt("checksum mismatch".into());
        assert!(e.to_string().contains("corrupt"));
        assert!(CheckpointError::Io("x".into()).to_string().contains("I/O"));
        assert!(check_len("state", 3, 4).is_err());
        assert!(check_len("state", 4, 4).is_ok());
    }
}
