//! Deterministic fault injection: the transport layer between server and
//! clients.
//!
//! Real deployments of one-shot clustered FL never aggregate from every
//! client they contacted: links drop, clients straggle past the round
//! deadline, and uploads arrive corrupted. This module models those faults
//! *deterministically* — every fault decision derives from
//! `(seed, round, client)` RNG streams, so a faulty run replays
//! bit-identically regardless of thread schedule — and centralises the
//! server's resilience policy (bounded downlink retry, deadline-based
//! partial aggregation, non-finite/oversized-update quarantine).
//!
//! # Communication charging policy
//!
//! [`CommMeter`] counts bytes that were put on the wire, not bytes that
//! were usefully received:
//!
//! * every downlink **attempt** (the first transmission and each retry) is
//!   charged;
//! * every uplink is charged, **including** uploads that are lost in
//!   flight, arrive past the round deadline, or are quarantined on
//!   arrival — the client transmitted them either way;
//! * a client that is unreachable after all retries does no local work and
//!   uploads nothing, so only its failed downlink attempts are charged.
//!
//! This keeps Table-5-style Mb numbers honest under faults: the reported
//! cost is what the network actually carried.
//!
//! # Liveness guarantee
//!
//! Mirroring the pre-round dropout model (`sample_clients` never drops
//! every client), [`Transport::broadcast`] always delivers to at least one
//! client per call. Uplinks carry no such guarantee: a round (or a cluster
//! within a round) can lose every update, and the aggregation call sites
//! then carry the previous model forward instead of panicking (see
//! `engine::weighted_average_or`).
//!
//! With [`FaultPlan::none()`] the transport is a pass-through: it charges
//! exactly the bytes the pre-fault code charged, delivers every payload
//! untouched, and draws no RNG values, so runs are byte-identical to the
//! fault-free engine.
//!
//! # Upload compression
//!
//! The transport also applies the run's [`CodecSpec`] to every upload it
//! mediates: the payload is encoded against the shared reference state,
//! the meter is charged the **encoded wire bytes** (header + payload +
//! checksum), and the server-side aggregation sees the decoded
//! reconstruction. Codec work happens *before* the fault plan draws the
//! upload's fate, so loss and corruption act on what actually crossed the
//! wire, and top-k error-feedback residuals (persistent per-client state,
//! spilled through checkpoints) advance whether or not the message
//! survives — the client cannot know. [`CodecSpec::none()`] bypasses all
//! of it: no header, no transform, no RNG draw, byte-identical to the
//! uncompressed path.

use crate::codec::{self, BaseCodec, CodecSpec};
use crate::comm::CommMeter;
use crate::config::FlConfig;
use crate::engine::{ClientUpdate, RemoteUpdate};
use fedclust_proto::RetryPolicy;
use fedclust_tensor::rng::{derive, streams};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-run fault model, derived deterministically from
/// `(seed, round, client)` streams. All probabilities are in `[0, 1]`;
/// [`FaultPlan::none()`] (= `Default`) disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that one downlink transmission attempt to one client
    /// fails (each retry redraws independently).
    pub downlink_loss: f32,
    /// Retransmissions allowed after the first failed downlink attempt
    /// before the client is written off for the round.
    pub max_downlink_retries: usize,
    /// Probability that one client upload is lost in flight.
    pub uplink_loss: f32,
    /// Probability that a client straggles this round (finishes late).
    pub straggler_rate: f32,
    /// Mean extra latency of a straggler, in round-deadline units
    /// (exponentially distributed).
    pub straggler_mean_delay: f32,
    /// Server-side round deadline. A straggler whose latency exceeds this
    /// misses the round and its update is dropped. `0` disables the
    /// deadline (stragglers always make it).
    pub round_deadline: f32,
    /// Probability that an upload arrives corrupted: NaN injection, Inf
    /// injection, or a stale (unchanged) state.
    pub corruption_rate: f32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            downlink_loss: 0.0,
            max_downlink_retries: 2,
            uplink_loss: 0.0,
            straggler_rate: 0.0,
            straggler_mean_delay: 1.0,
            round_deadline: 1.0,
            corruption_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// The fault-free plan: transport becomes a byte-identical pass-through.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault can actually fire under this plan. Stragglers
    /// only matter when a deadline can cut them off.
    pub fn is_active(&self) -> bool {
        self.downlink_loss > 0.0
            || self.uplink_loss > 0.0
            || self.corruption_rate > 0.0
            || (self.straggler_rate > 0.0 && self.round_deadline > 0.0)
    }

    /// A copy with every probability clamped into `[0, 1]` and the latency
    /// model made non-negative, so arbitrary (e.g. property-test) plans
    /// are safe to run.
    pub fn sanitized(&self) -> Self {
        let p = |v: f32| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let nn = |v: f32| if v.is_finite() { v.max(0.0) } else { 0.0 };
        FaultPlan {
            downlink_loss: p(self.downlink_loss),
            max_downlink_retries: self.max_downlink_retries.min(16),
            uplink_loss: p(self.uplink_loss),
            straggler_rate: p(self.straggler_rate),
            straggler_mean_delay: nn(self.straggler_mean_delay),
            round_deadline: nn(self.round_deadline),
            corruption_rate: p(self.corruption_rate),
        }
    }
}

/// Exit code of a process killed by an armed [`CrashPlan`]. Distinct from
/// the CLI's error exits (1: run error, 2: parse error) so crash-recovery
/// tests can tell an injected death from a genuine failure.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Deterministic process-death injection, the process-level sibling of
/// [`FaultPlan`]'s message faults. Armed through
/// [`crate::checkpoint::Checkpointer::crash`], it kills the process (via
/// `std::process::exit` with [`CRASH_EXIT_CODE`]) at a precise point in
/// the round loop so crash-recovery tests can exercise resume paths
/// reproducibly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CrashPlan {
    /// Die at the end of this round (0-based), after its checkpoint is
    /// written — unless `mid_write` tears that very write.
    pub after_round: Option<usize>,
    /// Die halfway through writing the checkpoint instead of after it:
    /// only part of the image reaches the `*.tmp` file, simulating a power
    /// cut mid-write. The previous generation must survive untouched.
    pub mid_write: bool,
}

impl CrashPlan {
    /// No crash: the plan never fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan will kill the process at some point.
    pub fn is_armed(&self) -> bool {
        self.after_round.is_some()
    }
}

/// Counters of everything the fault layer did in one run; part of
/// [`crate::metrics::RunResult`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTelemetry {
    /// Total fault events: unreachable clients, lost uploads, deadline
    /// misses, and corruptions.
    pub faults_injected: usize,
    /// Updates rejected by the server's pre-aggregation screen (non-finite
    /// values or wrong payload size).
    pub updates_quarantined: usize,
    /// Downlink retransmissions (attempts beyond each first attempt).
    pub retries: usize,
    /// Clients unreachable after every downlink retry.
    pub downlink_failures: usize,
    /// Uploads lost in flight.
    pub uplink_losses: usize,
    /// Straggler uploads that missed the round deadline.
    pub deadline_misses: usize,
}

/// What happened to one upload in flight.
enum UplinkFate {
    /// Arrived intact.
    Arrived,
    /// Lost (in flight, or past the deadline).
    Lost,
    /// Arrived corrupted; the payload has been mutated in place.
    Corrupted,
}

/// The fault-injecting transport between the server's round loop and its
/// clients. Owns the run's [`CommMeter`] and fault telemetry.
#[derive(Debug, Clone)]
pub struct Transport {
    plan: FaultPlan,
    seed: u64,
    active: bool,
    codec: CodecSpec,
    /// Per-client top-k error-feedback residuals — persistent across
    /// rounds, serialized into checkpoints, deterministic because every
    /// upload is encoded on the server thread in client order.
    residuals: BTreeMap<usize, Vec<f32>>,
    meter: CommMeter,
    telemetry: FaultTelemetry,
}

impl Transport {
    /// Transport for one run, with the plan, codec, and root seed taken
    /// from the experiment config.
    pub fn new(cfg: &FlConfig) -> Self {
        let plan = cfg.faults.sanitized();
        Transport {
            active: plan.is_active(),
            plan,
            seed: cfg.seed,
            codec: cfg.codec,
            residuals: BTreeMap::new(),
            meter: CommMeter::new(),
            telemetry: FaultTelemetry::default(),
        }
    }

    /// The codec this transport applies to uploads.
    pub fn codec(&self) -> CodecSpec {
        self.codec
    }

    /// The per-client error-feedback residuals, sorted by client — the
    /// exact shape checkpoints persist so kill-and-resume round-trips
    /// compression state bit-exactly.
    pub fn codec_residuals(&self) -> Vec<(usize, Vec<f32>)> {
        self.residuals
            .iter()
            .map(|(client, r)| (*client, r.clone()))
            .collect()
    }

    /// The run's communication meter.
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// Mutable meter access, for protocol-specific charges the transport
    /// does not mediate (e.g. PACFL's pre-federation basis uploads).
    pub fn meter_mut(&mut self) -> &mut CommMeter {
        &mut self.meter
    }

    /// Fault counters so far.
    pub fn telemetry(&self) -> FaultTelemetry {
        self.telemetry
    }

    /// Reinstall the meter, telemetry, and codec residuals captured in a
    /// checkpoint, so a resumed run's communication accounting *and*
    /// compression state continue exactly where the interrupted run left
    /// off.
    pub fn restore_comm_state(
        &mut self,
        meter: CommMeter,
        telemetry: FaultTelemetry,
        residuals: Vec<(usize, Vec<f32>)>,
    ) {
        self.meter = meter;
        self.telemetry = telemetry;
        self.residuals = residuals.into_iter().collect();
    }

    /// The bounded-retry policy implied by this run's fault plan — the
    /// *same* [`RetryPolicy`] type the networked transport sleeps on, so
    /// `--retries N` means `N + 1` attempts identically in-process (where
    /// backoff is virtual) and over TCP (where it is slept).
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::from_retries(self.plan.max_downlink_retries as u32)
    }

    /// Send `scalars` values down to each of `clients`, retrying each
    /// failed transmission per [`Transport::retry_policy`]. Returns the
    /// clients that received the payload (always at least one, in input
    /// order).
    pub fn broadcast(&mut self, round: usize, clients: &[usize], scalars: usize) -> Vec<usize> {
        if !self.active || self.plan.downlink_loss <= 0.0 {
            for _ in clients {
                self.meter.down(scalars);
            }
            return clients.to_vec();
        }
        let policy = self.retry_policy();
        let mut delivered = Vec::with_capacity(clients.len());
        for &client in clients {
            let mut rng = derive(
                self.seed,
                &[streams::FAULT_DOWNLINK, round as u64, client as u64],
            );
            let mut ok = false;
            for attempt in policy.attempts() {
                self.meter.down(scalars);
                if attempt > 0 {
                    self.telemetry.retries += 1;
                }
                if rng.gen::<f32>() >= self.plan.downlink_loss {
                    ok = true;
                    break;
                }
            }
            if ok {
                delivered.push(client);
            } else {
                self.telemetry.downlink_failures += 1;
                self.telemetry.faults_injected += 1;
            }
        }
        if delivered.is_empty() {
            // Liveness: the round must reach someone (mirrors the dropout
            // model's at-least-one-survivor rule). The first client's last
            // retry is deemed to have succeeded after all; roll back its
            // failure accounting.
            self.telemetry.downlink_failures -= 1;
            self.telemetry.faults_injected -= 1;
            delivered.push(clients[0]);
        }
        delivered
    }

    /// Decide the in-flight fate of one upload and apply corruption to
    /// `payload` in place. `stale` is the corruption fallback payload (the
    /// state the client started from); `None` restricts corruption to
    /// NaN/Inf injection.
    fn uplink_fate(
        &mut self,
        round: usize,
        client: usize,
        payload: &mut [f32],
        stale: Option<&[f32]>,
    ) -> UplinkFate {
        let mut rng = derive(
            self.seed,
            &[streams::FAULT_UPLINK, round as u64, client as u64],
        );
        // Draw order is fixed (straggler, loss, corruption) so fates are
        // stable under plan changes that disable individual fault kinds.
        let straggle: f32 = rng.gen();
        let latency_u: f32 = rng.gen();
        let lost: f32 = rng.gen();
        let corrupt: f32 = rng.gen();
        if self.plan.straggler_rate > 0.0
            && self.plan.round_deadline > 0.0
            && straggle < self.plan.straggler_rate
        {
            // Exponential latency with the configured mean.
            let latency = -self.plan.straggler_mean_delay * (1.0 - latency_u).max(1e-7).ln();
            if latency > self.plan.round_deadline {
                self.telemetry.deadline_misses += 1;
                self.telemetry.faults_injected += 1;
                return UplinkFate::Lost;
            }
        }
        if lost < self.plan.uplink_loss {
            self.telemetry.uplink_losses += 1;
            self.telemetry.faults_injected += 1;
            return UplinkFate::Lost;
        }
        if corrupt < self.plan.corruption_rate {
            self.corrupt(round, client, payload, stale);
            self.telemetry.faults_injected += 1;
            return UplinkFate::Corrupted;
        }
        UplinkFate::Arrived
    }

    /// Mutate `payload` the way a corrupted upload arrives: NaN scatter,
    /// Inf scatter, or wholesale replacement with the stale start state.
    fn corrupt(&mut self, round: usize, client: usize, payload: &mut [f32], stale: Option<&[f32]>) {
        let mut rng = derive(
            self.seed,
            &[streams::FAULT_CORRUPT, round as u64, client as u64],
        );
        let mode = rng.gen_range(0u32..3);
        match (mode, stale) {
            (2, Some(s)) if s.len() == payload.len() => payload.copy_from_slice(s),
            _ => {
                let poison = if mode == 1 { f32::INFINITY } else { f32::NAN };
                // Scatter the poison over ~1 % of the payload (at least one
                // entry) — a partial bit-rot pattern rather than a blank.
                let hits = (payload.len() / 100).max(1);
                for _ in 0..hits {
                    let i = rng.gen_range(0..payload.len());
                    payload[i] = poison;
                }
            }
        }
    }

    /// Upload `payload` from `client`. Applies the run's codec against
    /// `reference` (the state both ends share, e.g. the broadcast model),
    /// charges the uplink — encoded wire bytes under a codec, the legacy
    /// 4-bytes-per-scalar count under `none` — replaces `payload` with the
    /// server-side reconstruction, may corrupt it in place, and returns
    /// whether the upload reached the server at all. Top-k residuals
    /// advance here regardless of the upload's fate.
    pub fn uplink(
        &mut self,
        round: usize,
        client: usize,
        payload: &mut Vec<f32>,
        reference: Option<&[f32]>,
        stale: Option<&[f32]>,
    ) -> bool {
        if self.codec.is_none() {
            self.meter.up(payload.len());
        } else {
            let residual = match self.codec.base {
                BaseCodec::TopK(_) => Some(self.residuals.remove(&client).unwrap_or_default()),
                _ => None,
            };
            let (enc, residual) = codec::encode_for_upload(
                self.codec, self.seed, round, client, payload, reference, residual,
            );
            self.meter.up_wire(enc.wire.len());
            *payload = enc.decoded;
            if let Some(r) = residual {
                self.residuals.insert(client, r);
            }
        }
        if !self.active {
            return true;
        }
        !matches!(
            self.uplink_fate(round, client, payload, stale),
            UplinkFate::Lost
        )
    }

    /// Server-side pre-aggregation screen: accept only finite payloads of
    /// the expected size. Inactive (always accepts, no scan) under
    /// [`FaultPlan::none()`] so fault-free runs stay byte-identical even
    /// when training itself diverges.
    pub fn screen(&mut self, payload: &[f32], expected_len: usize) -> bool {
        if !self.active {
            return true;
        }
        if payload.len() == expected_len && payload.iter().all(|v| v.is_finite()) {
            true
        } else {
            self.telemetry.updates_quarantined += 1;
            false
        }
    }

    /// The standard skeleton's uplink path: encode, charge, fault, and
    /// quarantine every [`ClientUpdate`], returning the survivors in input
    /// order. `reference` is the state both ends share (the round's
    /// broadcast model, the codec's delta base); `stale` is the corruption
    /// fallback.
    pub fn receive(
        &mut self,
        round: usize,
        updates: Vec<ClientUpdate>,
        reference: Option<&[f32]>,
        stale: Option<&[f32]>,
    ) -> Vec<ClientUpdate> {
        if !self.active && self.codec.is_none() {
            for u in &updates {
                self.meter.up(u.state.len());
            }
            return updates;
        }
        let expected_len = updates.first().map_or(0, |u| u.state.len());
        let mut kept = Vec::with_capacity(updates.len());
        for mut u in updates {
            if self.uplink(round, u.client, &mut u.state, reference, stale)
                && self.screen(&u.state, expected_len)
            {
                kept.push(u);
            }
        }
        kept
    }

    /// The error-feedback residual a remote worker must start `client`'s
    /// encode from — a clone of the server's canonical copy (empty for
    /// codecs without residual state). The worker returns the advanced
    /// residual in its push and [`Transport::receive_remote`] absorbs it,
    /// so the canonical state matches what the in-process encode would
    /// have produced.
    pub fn residual_for(&self, client: usize) -> Vec<f32> {
        match self.codec.base {
            BaseCodec::TopK(_) => self.residuals.get(&client).cloned().unwrap_or_default(),
            _ => Vec::new(),
        }
    }

    /// Record clients whose uploads never arrived for *network* reasons
    /// (worker death with retries exhausted, round deadline): charged to
    /// the same telemetry counters as an in-flight uplink loss, because to
    /// the aggregator they are the same event.
    pub fn record_remote_losses(&mut self, lost: &[usize]) {
        for _ in lost {
            self.telemetry.uplink_losses += 1;
            self.telemetry.faults_injected += 1;
        }
    }

    /// The remote twin of [`Transport::receive`]: updates arrive already
    /// codec-encoded by the worker fleet (`wire_bytes` = what actually
    /// crossed the network, `state` = the reconstruction the worker's
    /// encoder pinned), so the transport charges the reported wire size,
    /// absorbs the advanced residuals, and applies the *same* fate and
    /// quarantine draws as the in-process path — in the same per-update
    /// order, so meters, telemetry, and survivor sets stay bit-identical
    /// to the simulated run at the same seed.
    pub fn receive_remote(
        &mut self,
        round: usize,
        updates: Vec<RemoteUpdate>,
        stale: Option<&[f32]>,
    ) -> Vec<ClientUpdate> {
        let expected_len = updates.first().map_or(0, |u| u.state.len());
        let mut kept = Vec::with_capacity(updates.len());
        for mut u in updates {
            match u.wire_bytes {
                Some(n) => self.meter.up_wire(n),
                None => self.meter.up(u.state.len()),
            }
            if let (Some(r), BaseCodec::TopK(_)) = (u.residual.take(), self.codec.base) {
                self.residuals.insert(u.client, r);
            }
            let arrived = !self.active
                || !matches!(
                    self.uplink_fate(round, u.client, &mut u.state, stale),
                    UplinkFate::Lost
                );
            if arrived && self.screen(&u.state, expected_len) {
                kept.push(ClientUpdate {
                    client: u.client,
                    state: u.state,
                    weight: u.weight,
                    steps: u.steps,
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with(plan: FaultPlan, seed: u64) -> FlConfig {
        let mut cfg = FlConfig::tiny(seed);
        cfg.faults = plan;
        cfg
    }

    fn update(client: usize, state: Vec<f32>) -> ClientUpdate {
        ClientUpdate {
            client,
            state,
            weight: 1.0,
            steps: 1,
        }
    }

    #[test]
    fn none_plan_is_passthrough() {
        let mut t = Transport::new(&cfg_with(FaultPlan::none(), 0));
        let delivered = t.broadcast(3, &[1, 4, 7], 100);
        assert_eq!(delivered, vec![1, 4, 7]);
        let updates = vec![update(1, vec![1.0, 2.0]), update(4, vec![3.0, 4.0])];
        let kept = t.receive(3, updates.clone(), None, None);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].state, updates[0].state);
        assert_eq!(t.meter().total_bytes(), (3 * 100 + 2 * 2) as f64 * 4.0);
        assert_eq!(t.telemetry(), FaultTelemetry::default());
    }

    #[test]
    fn total_downlink_loss_still_delivers_to_one_client() {
        let plan = FaultPlan {
            downlink_loss: 1.0,
            max_downlink_retries: 2,
            ..FaultPlan::none()
        };
        let mut t = Transport::new(&cfg_with(plan, 1));
        let delivered = t.broadcast(0, &[2, 5, 8], 10);
        assert_eq!(delivered, vec![2], "liveness keeps the first client");
        // Every client attempted 1 + 2 retries, all charged.
        assert_eq!(t.meter().total_bytes(), (3 * 3 * 10) as f64 * 4.0);
        assert_eq!(t.telemetry().retries, 3 * 2);
        assert_eq!(t.telemetry().downlink_failures, 2);
    }

    #[test]
    fn lost_uplinks_are_still_charged() {
        let plan = FaultPlan {
            uplink_loss: 1.0,
            ..FaultPlan::none()
        };
        let mut t = Transport::new(&cfg_with(plan, 2));
        let kept = t.receive(
            0,
            vec![update(0, vec![1.0]), update(1, vec![2.0])],
            None,
            None,
        );
        assert!(kept.is_empty());
        assert_eq!(t.meter().up_mb() * 1e6, 2.0 * 4.0);
        assert_eq!(t.telemetry().uplink_losses, 2);
    }

    #[test]
    fn corruption_is_caught_by_the_screen() {
        let plan = FaultPlan {
            corruption_rate: 1.0,
            ..FaultPlan::none()
        };
        let mut t = Transport::new(&cfg_with(plan, 3));
        let updates: Vec<ClientUpdate> = (0..8).map(|c| update(c, vec![0.5; 50])).collect();
        let kept = t.receive(0, updates, None, None);
        // stale fallback is None, so every corruption is NaN/Inf: all
        // corrupted updates must be quarantined.
        assert!(kept.is_empty());
        assert_eq!(t.telemetry().updates_quarantined, 8);
        assert_eq!(t.telemetry().faults_injected, 8);
    }

    #[test]
    fn stale_corruption_passes_the_screen() {
        let plan = FaultPlan {
            corruption_rate: 1.0,
            ..FaultPlan::none()
        };
        let stale = vec![9.0f32; 4];
        let mut t = Transport::new(&cfg_with(plan, 4));
        let updates: Vec<ClientUpdate> = (0..24).map(|c| update(c, vec![0.5; 4])).collect();
        let kept = t.receive(0, updates, None, Some(&stale));
        // Mode draw is uniform over {NaN, Inf, stale}: some survivors must
        // be stale copies, and every survivor must equal the stale state.
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|u| u.state == stale));
    }

    #[test]
    fn faults_are_deterministic_per_seed_round_client() {
        let plan = FaultPlan {
            downlink_loss: 0.4,
            uplink_loss: 0.3,
            corruption_rate: 0.2,
            straggler_rate: 0.5,
            round_deadline: 1.0,
            ..FaultPlan::none()
        };
        let run = |seed: u64| {
            let mut t = Transport::new(&cfg_with(plan, seed));
            let delivered = t.broadcast(1, &[0, 1, 2, 3, 4, 5], 20);
            let updates = delivered
                .iter()
                .map(|&c| update(c, vec![c as f32; 20]))
                .collect();
            let kept: Vec<(usize, Vec<f32>)> = t
                .receive(1, updates, None, None)
                .into_iter()
                .map(|u| (u.client, u.state))
                .collect();
            (delivered, kept, t.telemetry())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds diverge (w.h.p.)");
    }

    #[test]
    fn straggler_past_deadline_is_dropped() {
        let plan = FaultPlan {
            straggler_rate: 1.0,
            straggler_mean_delay: 100.0,
            round_deadline: 0.01,
            ..FaultPlan::none()
        };
        let mut t = Transport::new(&cfg_with(plan, 5));
        let updates: Vec<ClientUpdate> = (0..6).map(|c| update(c, vec![1.0])).collect();
        let kept = t.receive(0, updates, None, None);
        assert!(kept.is_empty(), "mean delay 100× the deadline drops all");
        assert_eq!(t.telemetry().deadline_misses, 6);
    }

    fn cfg_with_codec(codec: &str, seed: u64) -> FlConfig {
        let mut cfg = FlConfig::tiny(seed);
        cfg.codec = CodecSpec::parse(codec).expect("codec parses");
        cfg
    }

    #[test]
    fn codec_uplink_charges_encoded_wire_bytes() {
        let mut t = Transport::new(&cfg_with_codec("q8", 0));
        let mut payload: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        assert!(t.uplink(0, 3, &mut payload, None, None));
        let expected = t.codec().wire_len(100);
        assert_eq!(t.meter().uplink_bytes(), expected as f64);
        assert!(
            t.meter().uplink_bytes() < 100.0 * 4.0,
            "q8 must be cheaper than raw f32"
        );
        assert_eq!(payload.len(), 100, "server sees the reconstruction");
    }

    #[test]
    fn codec_receive_delivers_the_decoded_payload() {
        let mut t = Transport::new(&cfg_with_codec("delta+q8", 1));
        let reference = vec![1.0f32; 40];
        let state: Vec<f32> = (0..40).map(|i| 1.0 + (i as f32) * 0.01).collect();
        let kept = t.receive(0, vec![update(7, state.clone())], Some(&reference), None);
        assert_eq!(kept.len(), 1, "no faults: the update survives");
        let step = (0.39f32 / 255.0) as f64;
        for (x, d) in state.iter().zip(&kept[0].state) {
            assert!(
                ((*x as f64) - (*d as f64)).abs() <= step / 2.0 + 1e-6,
                "|{} - {}| > half a quantization step",
                x,
                d
            );
        }
    }

    #[test]
    fn codec_residuals_persist_and_restore() {
        let mut t = Transport::new(&cfg_with_codec("topk:0.25", 2));
        let mut payload = vec![4.0f32, 0.1, 0.2, 0.3];
        assert!(t.uplink(0, 5, &mut payload, None, None));
        let residuals = t.codec_residuals();
        assert_eq!(residuals.len(), 1);
        assert_eq!(residuals[0].0, 5);
        assert_eq!(residuals[0].1, vec![0.0, 0.1, 0.2, 0.3]);

        // A fresh transport restored from the captured state continues
        // bit-identically.
        let mut fresh = Transport::new(&cfg_with_codec("topk:0.25", 2));
        fresh.restore_comm_state(t.meter().clone(), t.telemetry(), residuals);
        let mut a = vec![0.0f32; 4];
        let mut b = a.clone();
        assert!(t.uplink(1, 5, &mut a, None, None));
        assert!(fresh.uplink(1, 5, &mut b, None, None));
        assert_eq!(a, b);
        assert_eq!(t.codec_residuals(), fresh.codec_residuals());
    }

    #[test]
    fn codec_composes_with_uplink_faults() {
        let plan = FaultPlan {
            uplink_loss: 1.0,
            ..FaultPlan::none()
        };
        let mut cfg = cfg_with_codec("topk:0.5", 3);
        cfg.faults = plan;
        let mut t = Transport::new(&cfg);
        let updates = vec![update(0, vec![1.0, 2.0]), update(1, vec![3.0, 4.0])];
        let kept = t.receive(0, updates, None, None);
        assert!(kept.is_empty(), "total uplink loss drops everything");
        // Lost messages are still charged at their encoded size…
        let wire = t.codec().wire_len(2);
        assert_eq!(t.meter().uplink_bytes(), (2 * wire) as f64);
        // …and the client-side residuals advanced anyway.
        assert_eq!(t.codec_residuals().len(), 2);
    }

    #[test]
    fn retry_policy_mirrors_the_fault_plan() {
        // `--retries N` = N + 1 attempts, the same mapping the networked
        // transport sleeps on.
        let plan = FaultPlan {
            max_downlink_retries: 5,
            ..FaultPlan::none()
        };
        let t = Transport::new(&cfg_with(plan, 0));
        assert_eq!(t.retry_policy().max_attempts, 6);
        assert_eq!(t.retry_policy().retries(), 5);
        assert_eq!(t.retry_policy().attempts().count(), 6);
    }

    #[test]
    fn broadcast_charges_every_policy_attempt() {
        // Wire honesty per attempt: with total loss, every attempt the
        // policy allows is transmitted and charged.
        for retries in [0usize, 1, 3] {
            let plan = FaultPlan {
                downlink_loss: 1.0,
                max_downlink_retries: retries,
                ..FaultPlan::none()
            };
            let mut t = Transport::new(&cfg_with(plan, 11));
            let attempts = t.retry_policy().max_attempts as usize;
            t.broadcast(0, &[0, 1], 7);
            assert_eq!(
                t.meter().total_bytes(),
                (2 * attempts * 7) as f64 * 4.0,
                "retries={retries}: every attempt must be charged"
            );
            assert_eq!(t.telemetry().retries, 2 * (attempts - 1));
        }
    }

    #[test]
    fn remote_receive_is_bit_identical_to_in_process() {
        // The networked server's uplink path (worker encodes, server
        // absorbs) must reproduce the simulated path bit-for-bit: same
        // survivors, same states, same meter, same telemetry, same
        // residuals.
        let plan = FaultPlan {
            uplink_loss: 0.3,
            corruption_rate: 0.25,
            straggler_rate: 0.3,
            round_deadline: 1.0,
            ..FaultPlan::none()
        };
        for spec in ["none", "q8", "delta+q8+sr", "topk:0.5"] {
            let mut cfg = cfg_with_codec(spec, 9);
            cfg.faults = plan;
            let mut local = Transport::new(&cfg);
            let mut net = Transport::new(&cfg);
            let reference: Vec<f32> = (0..20).map(|i| i as f32 * 0.1).collect();
            for round in 0..3usize {
                let updates: Vec<ClientUpdate> = (0..6)
                    .map(|c| update(c, (0..20).map(|i| ((i + c) as f32) * 0.07 - 0.3).collect()))
                    .collect();
                let remote: Vec<RemoteUpdate> = updates
                    .iter()
                    .map(|u| {
                        if net.codec().is_none() {
                            RemoteUpdate {
                                client: u.client,
                                steps: u.steps,
                                weight: u.weight,
                                state: u.state.clone(),
                                wire_bytes: None,
                                residual: None,
                            }
                        } else {
                            // What the worker process does, via the same
                            // shared encode entry point.
                            let residual = match net.codec().base {
                                BaseCodec::TopK(_) => Some(net.residual_for(u.client)),
                                _ => None,
                            };
                            let (enc, residual) = codec::encode_for_upload(
                                net.codec(),
                                cfg.seed,
                                round,
                                u.client,
                                &u.state,
                                Some(&reference),
                                residual,
                            );
                            RemoteUpdate {
                                client: u.client,
                                steps: u.steps,
                                weight: u.weight,
                                state: enc.decoded,
                                wire_bytes: Some(enc.wire.len()),
                                residual,
                            }
                        }
                    })
                    .collect();
                let kept_local = local.receive(round, updates, Some(&reference), Some(&reference));
                let kept_net = net.receive_remote(round, remote, Some(&reference));
                let key = |v: &[ClientUpdate]| {
                    v.iter()
                        .map(|u| {
                            (
                                u.client,
                                u.state.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                            )
                        })
                        .collect::<Vec<_>>()
                };
                assert_eq!(key(&kept_local), key(&kept_net), "{spec} round {round}");
                assert_eq!(
                    local.meter().total_bytes(),
                    net.meter().total_bytes(),
                    "{spec} round {round}: meters diverged"
                );
                assert_eq!(local.telemetry(), net.telemetry(), "{spec} round {round}");
                assert_eq!(
                    local.codec_residuals(),
                    net.codec_residuals(),
                    "{spec} round {round}: residuals diverged"
                );
            }
        }
    }

    #[test]
    fn sanitize_clamps_wild_plans() {
        let wild = FaultPlan {
            downlink_loss: 7.0,
            uplink_loss: -2.0,
            corruption_rate: f32::NAN,
            straggler_mean_delay: -1.0,
            round_deadline: f32::INFINITY,
            max_downlink_retries: 1_000_000,
            straggler_rate: 0.5,
        };
        let s = wild.sanitized();
        assert_eq!(s.downlink_loss, 1.0);
        assert_eq!(s.uplink_loss, 0.0);
        assert_eq!(s.corruption_rate, 0.0);
        assert_eq!(s.straggler_mean_delay, 0.0);
        assert_eq!(s.round_deadline, 0.0);
        assert!(s.max_downlink_retries <= 16);
    }
}
