//! Shared federated-learning experiment configuration.

use crate::codec::CodecSpec;
use crate::faults::FaultPlan;
use fedclust_nn::models::ModelSpec;
use fedclust_nn::optim::SgdConfig;
use serde::{Deserialize, Serialize};

/// The knobs shared by every FL method in a run.
///
/// The paper's setup is 100 clients, 10 % sampling, 200 rounds, 10 local
/// epochs, batch 10, SGD momentum 0.9. The reproduction's defaults are
/// scaled for a single-core CPU budget (see EXPERIMENTS.md); the paper
/// values remain reachable by setting the fields explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Model architecture.
    pub model: ModelSpec,
    /// Number of communication rounds.
    pub rounds: usize,
    /// Fraction of clients sampled each round (paper: R = 0.1).
    pub sample_rate: f32,
    /// Local epochs per selected client per round (paper: 10).
    pub local_epochs: usize,
    /// Local minibatch size (paper: 10).
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Local SGD momentum (paper: 0.9 global / 0.5 personalized).
    pub momentum: f32,
    /// Local SGD weight decay.
    pub weight_decay: f32,
    /// Evaluate the average local test accuracy every this many rounds
    /// (and always at the final round).
    pub eval_every: usize,
    /// Root experiment seed.
    pub seed: u64,
    /// Probability that a sampled client drops out of the round before
    /// doing any work (unreliable-client simulation, paper §4.2). Dropped
    /// clients are treated as never contacted; at least one sampled client
    /// always survives.
    pub dropout_rate: f32,
    /// In-round fault model: link loss, stragglers vs. the round deadline,
    /// and update corruption. [`FaultPlan::none()`] (the default) keeps the
    /// run byte-identical to a fault-free engine.
    pub faults: FaultPlan,
    /// Upload compression codec applied by the transport to every client
    /// update. [`CodecSpec::none()`] (the default) keeps uploads
    /// byte-identical to the legacy uncompressed path.
    pub codec: CodecSpec,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            model: ModelSpec::LeNet5,
            rounds: 20,
            sample_rate: 0.2,
            local_epochs: 3,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            eval_every: 2,
            seed: 42,
            dropout_rate: 0.0,
            faults: FaultPlan::none(),
            codec: CodecSpec::none(),
        }
    }
}

impl FlConfig {
    /// Number of clients sampled each round for `num_clients` total
    /// (Algorithm 1 line 9: `n = max(R·N, 1)`).
    pub fn clients_per_round(&self, num_clients: usize) -> usize {
        ((self.sample_rate * num_clients as f32).round() as usize).clamp(1, num_clients)
    }

    /// SGD settings implied by this config.
    pub fn sgd(&self) -> SgdConfig {
        SgdConfig {
            lr: self.lr,
            momentum: self.momentum,
            weight_decay: self.weight_decay,
        }
    }

    /// Whether to run the (possibly expensive) all-client evaluation after
    /// round `round` (0-based).
    pub fn should_eval(&self, round: usize) -> bool {
        let every = self.eval_every.max(1);
        (round + 1).is_multiple_of(every) || round + 1 == self.rounds
    }

    /// A tiny configuration for unit/integration tests: MLP model, few
    /// rounds, everything small.
    pub fn tiny(seed: u64) -> Self {
        FlConfig {
            model: ModelSpec::Mlp { hidden: 16 },
            rounds: 3,
            sample_rate: 0.5,
            local_epochs: 2,
            batch_size: 8,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
            eval_every: 1,
            seed,
            dropout_rate: 0.0,
            faults: FaultPlan::none(),
            codec: CodecSpec::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clients_per_round_respects_bounds() {
        let mut cfg = FlConfig {
            sample_rate: 0.1,
            ..FlConfig::default()
        };
        assert_eq!(cfg.clients_per_round(100), 10);
        assert_eq!(cfg.clients_per_round(5), 1);
        cfg.sample_rate = 1.0;
        assert_eq!(cfg.clients_per_round(7), 7);
        cfg.sample_rate = 0.0001;
        assert_eq!(cfg.clients_per_round(100), 1, "at least one client");
    }

    #[test]
    fn eval_schedule_hits_last_round() {
        let cfg = FlConfig {
            rounds: 7,
            eval_every: 3,
            ..FlConfig::default()
        };
        let evals: Vec<usize> = (0..7).filter(|&r| cfg.should_eval(r)).collect();
        assert_eq!(evals, vec![2, 5, 6]);
    }

    #[test]
    fn sgd_mirrors_config() {
        let cfg = FlConfig::default();
        let sgd = cfg.sgd();
        assert_eq!(sgd.lr, cfg.lr);
        assert_eq!(sgd.momentum, cfg.momentum);
    }
}
