//! Communication-cost accounting.
//!
//! The paper reports communication in megabits-to-target (Table 5) and
//! implicitly through rounds-to-target (Table 4). Every FL method in this
//! reproduction charges its transfers to a [`CommMeter`], counting exactly
//! the scalars each protocol moves: full model states for FedAvg-family
//! methods, k model states per client per round for IFCA, only the global
//! blocks for LG-FedAvg, one-shot partial weights for FedClust, and
//! one-shot subspace bases for PACFL.

use serde::{Deserialize, Serialize};

/// Bytes per transmitted scalar (f32 on the wire, as in the PyTorch
/// reference implementations).
pub const BYTES_PER_SCALAR: f64 = 4.0;

/// Accumulates the bytes a protocol has moved, split by direction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommMeter {
    downlink_bytes: f64,
    uplink_bytes: f64,
}

impl CommMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a meter from raw byte counts (checkpoint restore).
    pub fn from_bytes(downlink_bytes: f64, uplink_bytes: f64) -> Self {
        CommMeter {
            downlink_bytes,
            uplink_bytes,
        }
    }

    /// Raw downlink byte count (checkpoint serialization).
    pub fn downlink_bytes(&self) -> f64 {
        self.downlink_bytes
    }

    /// Raw uplink byte count (checkpoint serialization).
    pub fn uplink_bytes(&self) -> f64 {
        self.uplink_bytes
    }

    /// Charge a server→client transfer of `scalars` f32 values.
    pub fn down(&mut self, scalars: usize) {
        self.downlink_bytes += scalars as f64 * BYTES_PER_SCALAR;
    }

    /// Charge a client→server transfer of `scalars` f32 values.
    pub fn up(&mut self, scalars: usize) {
        self.uplink_bytes += scalars as f64 * BYTES_PER_SCALAR;
    }

    /// Charge a server→client transfer of `bytes` raw wire bytes —
    /// encoded-message accounting for compressed downlinks.
    pub fn down_wire(&mut self, bytes: usize) {
        self.downlink_bytes += bytes as f64;
    }

    /// Charge a client→server transfer of `bytes` raw wire bytes —
    /// encoded-message accounting for compressed uploads (header +
    /// payload + checksum as serialized, not logical f32 counts).
    pub fn up_wire(&mut self, bytes: usize) {
        self.uplink_bytes += bytes as f64;
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> f64 {
        self.downlink_bytes + self.uplink_bytes
    }

    /// Total megabytes moved (the unit of the paper's Table 5).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() / 1.0e6
    }

    /// Downlink megabytes.
    pub fn down_mb(&self) -> f64 {
        self.downlink_bytes / 1.0e6
    }

    /// Uplink megabytes.
    pub fn up_mb(&self) -> f64 {
        self.uplink_bytes / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_both_directions() {
        let mut m = CommMeter::new();
        m.down(1000);
        m.up(500);
        assert_eq!(m.total_bytes(), 6000.0);
        assert!((m.total_mb() - 0.006).abs() < 1e-12);
        assert!(m.down_mb() > m.up_mb());
    }

    #[test]
    fn zero_meter() {
        let m = CommMeter::new();
        assert_eq!(m.total_bytes(), 0.0);
        assert_eq!(m.total_mb(), 0.0);
    }

    #[test]
    fn wire_charges_count_raw_bytes() {
        let mut m = CommMeter::new();
        m.up_wire(22 + 100);
        m.down_wire(10);
        assert_eq!(m.uplink_bytes(), 122.0);
        assert_eq!(m.downlink_bytes(), 10.0);
        // A 100-element q8 message is strictly cheaper than 100 scalars.
        let mut raw = CommMeter::new();
        raw.up(100);
        assert!(m.uplink_bytes() < raw.uplink_bytes());
    }

    #[test]
    fn accumulates_across_rounds() {
        let mut m = CommMeter::new();
        for _ in 0..10 {
            m.down(100);
            m.up(100);
        }
        assert_eq!(m.total_bytes(), 10.0 * 200.0 * 4.0);
    }
}
