//! PACFL (Vahidian et al. 2022): one-shot clustering by principal angles
//! between client data subspaces.
//!
//! Before federation each client runs a truncated SVD on its raw local data
//! matrix (features × samples) and sends the top-`p` left singular vectors
//! to the server. The server measures client similarity by the sum of
//! principal angles between subspaces, clusters with hierarchical
//! clustering, and then trains one FedAvg model per cluster.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{
    average_accuracy, evaluate_clients, init_model, sample_clients, train_round, weighted_average,
};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_cluster::hac::{agglomerative, Linkage};
use fedclust_cluster::ProximityMatrix;
use fedclust_data::FederatedDataset;
use fedclust_tensor::linalg::{subspace_distance_deg, truncated_left_singular_vectors};
use fedclust_tensor::Tensor;
use rayon::prelude::*;

/// PACFL with `p` principal vectors per client.
#[derive(Debug, Clone, Copy)]
pub struct Pacfl {
    /// Number of principal vectors each client transmits (paper: p = 3).
    pub p: usize,
    /// Optional fixed clustering threshold (degrees of summed principal
    /// angle). `None` uses the largest-gap heuristic on the dendrogram.
    pub threshold_deg: Option<f32>,
}

impl Default for Pacfl {
    fn default() -> Self {
        Pacfl {
            p: 3,
            threshold_deg: None,
        }
    }
}

impl Pacfl {
    /// Each client's data subspace basis: top-`p` left singular vectors of
    /// the (features × samples) matrix of its raw training data.
    pub fn client_bases(&self, fd: &FederatedDataset) -> Vec<Tensor> {
        (0..fd.num_clients())
            .into_par_iter()
            .map(|client| {
                let train = &fd.clients[client].train;
                let n = train.len();
                let d = train.sample_numel();
                // Build features × samples (each column is one flattened image).
                let mut m = vec![0.0f32; d * n];
                for s in 0..n {
                    for f in 0..d {
                        m[f * n + s] = train.images.data()[s * d + f];
                    }
                }
                truncated_left_singular_vectors(&Tensor::from_vec([d, n], m), self.p)
            })
            .collect()
    }

    /// Cluster clients from their subspace bases. Returns labels.
    pub fn cluster(&self, bases: &[Tensor]) -> Vec<usize> {
        let matrix = ProximityMatrix::from_fn(bases.len(), |i, j| {
            subspace_distance_deg(&bases[i], &bases[j])
        });
        let dendro = agglomerative(&matrix, Linkage::Average);
        match self.threshold_deg {
            Some(t) => dendro.cut_at(t),
            None => dendro.largest_gap_cut().0,
        }
    }
}

/// What a PACFL run leaves on the server: trained cluster states, the
/// client→cluster assignment, and the member subspace bases (so unseen
/// clients can be matched by principal angles, as PACFL prescribes).
pub struct PacflArtifacts {
    /// One trained state per cluster.
    pub states: Vec<Vec<f32>>,
    /// Cluster id per original client.
    pub labels: Vec<usize>,
    /// Each original client's subspace basis.
    pub bases: Vec<Tensor>,
}

impl Pacfl {
    /// Run and keep the trained federation artifacts (Table 6).
    pub fn run_detailed(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
    ) -> (RunResult, PacflArtifacts) {
        run_without_checkpoints(|ckpt| self.run_detailed_resumable(fd, cfg, ckpt))
    }

    /// [`Pacfl::run_detailed`] with checkpoint/resume support. The subspace
    /// bases are recomputed on resume (they are deterministic functions of
    /// the raw client data), but the one-shot basis exchange is *not*
    /// re-charged: the restored meter already includes it.
    pub fn run_detailed_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<(RunResult, PacflArtifacts), CheckpointError> {
        let template = init_model(fd, cfg);
        let state_len = template.state_len();
        let mut transport = Transport::new(cfg);

        let bases = self.client_bases(fd);
        let mut start_round = 0;
        let (labels, k, mut states, mut history);
        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Clustered {
                states: ss,
                labels: ls,
            } = cp.state
            else {
                return Err(CheckpointError::WrongState(format!(
                    "PACFL cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("cluster labels", ls.len(), fd.num_clients())?;
            for s in &ss {
                check_len("cluster state", s.len(), state_len)?;
            }
            k = ss.len();
            for l in &ls {
                if *l >= k {
                    return Err(CheckpointError::Mismatch(format!(
                        "cluster label {} out of range for {} clusters",
                        l, k
                    )));
                }
            }
            labels = ls;
            states = ss;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        } else {
            // One-shot clustering before federation. The basis exchange is a
            // reliable pre-federation step (PACFL assumes it), charged directly.
            let feature_dim = fd.channels * fd.height * fd.width;
            for b in &bases {
                transport.meter_mut().up(b.dims()[1] * feature_dim); // p vectors of d floats
            }
            labels = self.cluster(&bases);
            k = labels.iter().copied().max().unwrap_or(0) + 1;
            states = vec![template.state_vec(); k];
            history = Vec::new();
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            for (ci, state) in states.iter_mut().enumerate() {
                let members: Vec<usize> = sampled
                    .iter()
                    .copied()
                    .filter(|&c| labels[c] == ci)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let updates = train_round(
                    fd,
                    cfg,
                    &template,
                    state,
                    &members,
                    round,
                    None,
                    &mut transport,
                );
                if updates.is_empty() {
                    // Every upload lost or quarantined: the cluster skips
                    // this round and carries its model forward.
                    continue;
                }
                let items: Vec<(&[f32], f32)> = updates
                    .iter()
                    .map(|u| (u.state.as_slice(), u.weight))
                    .collect();
                *state = weighted_average(&items);
            }

            if cfg.should_eval(round) {
                let per_client = evaluate_clients(fd, &template, |c| states[labels[c]].as_slice());
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Clustered {
                    states: states.clone(),
                    labels: labels.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = evaluate_clients(fd, &template, |c| states[labels[c]].as_slice());
        let result = RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(k),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        };
        Ok((
            result,
            PacflArtifacts {
                states,
                labels,
                bases,
            },
        ))
    }
}

impl FlMethod for Pacfl {
    fn name(&self) -> &'static str {
        "PACFL"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        self.run_detailed(fd, cfg).0
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        Ok(self.run_detailed_resumable(fd, cfg, ckpt)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_cluster::metrics::adjusted_rand_index;
    use fedclust_data::{DatasetProfile, Partition};

    fn fd() -> FederatedDataset {
        FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 8,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed: 7,
            },
        )
    }

    #[test]
    fn subspace_clustering_recovers_two_groups() {
        // Two clean groups: clients 0–3 hold classes {0..5}, 4–7 hold {5..10}.
        let groups: Vec<Vec<usize>> = (0..8)
            .map(|c| {
                if c < 4 {
                    (0..5).collect()
                } else {
                    (5..10).collect()
                }
            })
            .collect();
        let fd = FederatedDataset::build_grouped(
            DatasetProfile::FmnistLike,
            &groups,
            &fedclust_data::federated::FederatedConfig {
                num_clients: 8,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed: 7,
            },
        );
        let pacfl = Pacfl::default();
        let bases = pacfl.client_bases(&fd);
        assert_eq!(bases.len(), 8);
        let labels = pacfl.cluster(&bases);
        let truth = fd.ground_truth_groups();
        // Data subspaces are driven by which classes a client holds, so the
        // recovered clustering should agree with the two-group ground truth.
        let ari = adjusted_rand_index(&labels, &truth);
        assert!(
            ari > 0.5,
            "ARI {} labels {:?} truth {:?}",
            ari,
            labels,
            truth
        );
    }

    #[test]
    fn pacfl_runs_end_to_end() {
        let fd = fd();
        let mut cfg = FlConfig::tiny(1);
        cfg.rounds = 3;
        let r = Pacfl::default().run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
        assert!(r.num_clusters.unwrap() >= 1);
        assert!(r.total_mb > 0.0);
    }
}
