//! SCAFFOLD (Karimireddy et al. 2020): stochastic controlled averaging.
//!
//! The paper's §2.1 discusses SCAFFOLD as the variance-reduction approach
//! to client drift: the server keeps a global control variate `c` and each
//! client a local one `c_i`; local SGD steps use the corrected gradient
//! `g + c − c_i`, which cancels the client-specific drift direction. After
//! `K` local steps the client refreshes its control variate with
//! `c_i⁺ = c_i − c + (x − w)/(K·η)` (option II of the paper) and uploads
//! both Δw and Δc.
//!
//! SCAFFOLD is not in the paper's main tables, but it is implemented here
//! as part of the related-work baseline suite (see `methods::extended`).

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{average_accuracy, evaluate_clients, init_model, sample_clients};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::loss::cross_entropy;
use fedclust_nn::Model;
use fedclust_tensor::rng::{derive, streams};
use rayon::prelude::*;

/// SCAFFOLD with server learning rate `eta_g` (the paper's ηg; 1.0 keeps
/// plain averaging of the client deltas).
#[derive(Debug, Clone, Copy)]
pub struct Scaffold {
    /// Server step size applied to the averaged client delta.
    pub eta_g: f32,
}

impl Default for Scaffold {
    fn default() -> Self {
        Scaffold { eta_g: 1.0 }
    }
}

struct LocalOutcome {
    client: usize,
    delta_w: Vec<f32>,
    delta_c: Vec<f32>,
    new_ci: Vec<f32>,
    extra_state: Vec<f32>,
    weight: f32,
}

impl Scaffold {
    /// One client's controlled local training pass.
    #[allow(clippy::too_many_arguments)]
    fn local_train(
        &self,
        template: &Model,
        global_params: &[f32],
        global_extra: &[f32],
        c_global: &[f32],
        c_i: &[f32],
        fd: &FederatedDataset,
        cfg: &FlConfig,
        client: usize,
        round: usize,
    ) -> LocalOutcome {
        let mut model = template.clone();
        let mut state = global_params.to_vec();
        state.extend_from_slice(global_extra);
        model.set_state_vec(&state);

        let data = &fd.clients[client];
        let mut rng = derive(
            cfg.seed,
            &[streams::LOCAL_TRAIN, client as u64, round as u64],
        );
        let mut steps = 0usize;
        for _ in 0..cfg.local_epochs {
            for batch in data.train.minibatch_indices(cfg.batch_size, &mut rng) {
                let (x, y) = data.train.batch(&batch);
                let logits = model.forward(x, true);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(grad);
                // Corrected step: w ← w − η (g + c − c_i), plain SGD.
                let mut off = 0;
                for p in model.params_mut() {
                    let n = p.value.numel();
                    for j in 0..n {
                        let g = p.grad.data()[j] + c_global[off + j] - c_i[off + j];
                        p.value.data_mut()[j] -= cfg.lr * g;
                    }
                    p.zero_grad();
                    off += n;
                }
                steps += 1;
            }
        }
        let w = model.param_vec();
        let k_eta = (steps.max(1) as f32) * cfg.lr;
        // Option II control-variate refresh.
        let new_ci: Vec<f32> = (0..w.len())
            .map(|j| c_i[j] - c_global[j] + (global_params[j] - w[j]) / k_eta)
            .collect();
        let delta_w: Vec<f32> = w.iter().zip(global_params).map(|(a, b)| a - b).collect();
        let delta_c: Vec<f32> = new_ci.iter().zip(c_i).map(|(a, b)| a - b).collect();
        let full_state = model.state_vec();
        let extra_state = full_state[w.len()..].to_vec();
        LocalOutcome {
            client,
            delta_w,
            delta_c,
            new_ci,
            extra_state,
            weight: data.train_samples() as f32,
        }
    }
}

impl FlMethod for Scaffold {
    fn name(&self) -> &'static str {
        "SCAFFOLD"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        let template = init_model(fd, cfg);
        let num_params = template.num_params();
        let state_len = template.state_len();
        let mut state = template.state_vec();
        let mut c_global = vec![0.0f32; num_params];
        let mut c_clients: Vec<Vec<f32>> = vec![vec![0.0f32; num_params]; fd.num_clients()];
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;
        // Down: model state + global control variate.
        // Up: Δw (+ extra state) + Δc, concatenated into one payload.
        let wire_len = state_len + num_params;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Scaffold {
                state: s,
                c_global: cg,
                c_clients: cc,
            } = cp.state
            else {
                return Err(CheckpointError::WrongState(format!(
                    "SCAFFOLD cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("server state", s.len(), state_len)?;
            check_len("global control variate", cg.len(), num_params)?;
            check_len("client control variates", cc.len(), fd.num_clients())?;
            for ci in &cc {
                check_len("client control variate", ci.len(), num_params)?;
            }
            state = s;
            c_global = cg;
            c_clients = cc;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            let delivered = transport.broadcast(round, &sampled, wire_len);
            let (params, extra) = state.split_at(num_params);
            let trained: Vec<LocalOutcome> = delivered
                .par_iter()
                .map(|&client| {
                    self.local_train(
                        &template,
                        params,
                        extra,
                        &c_global,
                        &c_clients[client],
                        fd,
                        cfg,
                        client,
                        round,
                    )
                })
                .collect();

            // The client-side control variate refresh persists whether or
            // not the upload makes it; the server only sees survivors.
            let mut outcomes: Vec<LocalOutcome> = Vec::with_capacity(trained.len());
            for mut o in trained {
                c_clients[o.client] = o.new_ci.clone();
                let mut payload = o.delta_w.clone();
                payload.extend_from_slice(&o.extra_state);
                payload.extend_from_slice(&o.delta_c);
                // Deltas have no meaningful stale fallback: corruption is
                // NaN/Inf and therefore always quarantined. The payload is
                // already a delta, so no codec reference applies either.
                if transport.uplink(round, o.client, &mut payload, None, None)
                    && transport.screen(&payload, wire_len)
                {
                    o.delta_w.copy_from_slice(&payload[..num_params]);
                    o.extra_state
                        .copy_from_slice(&payload[num_params..state_len]);
                    o.delta_c.copy_from_slice(&payload[state_len..]);
                    outcomes.push(o);
                }
            }
            // An empty survivor set carries the server state forward; the
            // round still evaluates and checkpoints below.
            if !outcomes.is_empty() {
                // Server update: x ← x + ηg · mean Δw; c ← c + (|S|/N) mean Δc.
                let s = outcomes.len() as f32;
                let scale_c = s / fd.num_clients() as f32;
                let mut mean_dw = vec![0.0f64; num_params];
                let mut mean_dc = vec![0.0f64; num_params];
                for o in &outcomes {
                    for j in 0..num_params {
                        mean_dw[j] += o.delta_w[j] as f64 / s as f64;
                        mean_dc[j] += o.delta_c[j] as f64 / s as f64;
                    }
                }
                for j in 0..num_params {
                    state[j] += self.eta_g * mean_dw[j] as f32;
                    c_global[j] += scale_c * mean_dc[j] as f32;
                }
                // Extra state (batch-norm stats): sample-size-weighted average.
                if state_len > num_params {
                    let items: Vec<(&[f32], f32)> = outcomes
                        .iter()
                        .map(|o| (o.extra_state.as_slice(), o.weight))
                        .collect();
                    let extra = crate::engine::weighted_average(&items);
                    state[num_params..].copy_from_slice(&extra);
                }
            }

            if cfg.should_eval(round) {
                let per_client = evaluate_clients(fd, &template, |_| &state[..]);
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Scaffold {
                    state: state.clone(),
                    c_global: c_global.clone(),
                    c_clients: c_clients.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = evaluate_clients(fd, &template, |_| &state[..]);
        Ok(RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(1),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    fn tiny_fd(seed: u64) -> FederatedDataset {
        FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.5 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn scaffold_learns_and_costs_double_fedavg_per_round() {
        let fd = tiny_fd(0);
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 5;
        let r = Scaffold::default().run(&fd, &cfg);
        assert!(r.final_acc > 0.15, "acc {}", r.final_acc);
        // SCAFFOLD moves control variates alongside the model: roughly 2×
        // FedAvg's bytes per round (exact factor depends on extra state).
        let fedavg = crate::methods::FedAvg.run(&fd, &cfg);
        let ratio = r.total_mb / fedavg.total_mb;
        assert!(ratio > 1.5 && ratio < 2.5, "ratio {}", ratio);
    }

    #[test]
    fn scaffold_is_deterministic() {
        let fd = tiny_fd(1);
        let cfg = FlConfig::tiny(1);
        let a = Scaffold::default().run(&fd, &cfg);
        let b = Scaffold::default().run(&fd, &cfg);
        assert_eq!(a.per_client_acc, b.per_client_acc);
    }

    #[test]
    fn control_variates_start_at_zero_so_round_one_matches_plain_sgd() {
        // With c = c_i = 0 the first local pass is exactly uncorrected SGD
        // (no momentum); SCAFFOLD must therefore produce finite, sane
        // updates from the very first round.
        let fd = tiny_fd(2);
        let mut cfg = FlConfig::tiny(2);
        cfg.rounds = 1;
        let r = Scaffold::default().run(&fd, &cfg);
        assert!(r.final_acc.is_finite());
        assert!(!r.history.is_empty());
    }
}
