//! The `Local` baseline: every client trains alone, no communication.

use crate::config::FlConfig;
use crate::engine::{average_accuracy, init_model, local_train};
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::optim::Sgd;
use rayon::prelude::*;

/// Each client independently trains a model on its local data; there is no
/// server and no communication. Under heavy label skew this is a strong
/// baseline (each client only has to separate a few classes), which is
/// exactly the paper's motivation for clustering.
#[derive(Debug, Clone, Copy)]
pub struct LocalOnly {
    /// Total local epochs each client trains, expressed as a multiple of
    /// the *expected* per-client training a federated client receives
    /// (`rounds × sample_rate × local_epochs`). 1.0 = compute-matched.
    pub budget_factor: f32,
}

impl Default for LocalOnly {
    fn default() -> Self {
        LocalOnly { budget_factor: 1.0 }
    }
}

impl FlMethod for LocalOnly {
    fn name(&self) -> &'static str {
        "Local"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        let template = init_model(fd, cfg);
        let init_state = template.state_vec();
        let expected = cfg.rounds as f32 * cfg.sample_rate * cfg.local_epochs as f32;
        let total_epochs = ((expected * self.budget_factor).round() as usize).max(1);
        // Evaluate a handful of times along the way so Local has a history
        // to plot in Fig. 3 (mapped onto the round axis proportionally).
        let chunks = 4.min(total_epochs);
        let epochs_per_chunk = total_epochs / chunks;

        let mut per_client_states: Vec<Vec<f32>> = vec![init_state.clone(); fd.num_clients()];
        let mut history = Vec::new();

        for chunk in 0..chunks {
            let epochs = if chunk + 1 == chunks {
                total_epochs - epochs_per_chunk * (chunks - 1)
            } else {
                epochs_per_chunk
            };
            per_client_states = per_client_states
                .into_par_iter()
                .enumerate()
                .map(|(client, state)| {
                    let mut model = template.clone();
                    model.set_state_vec(&state);
                    let mut opt = Sgd::new(cfg.sgd());
                    local_train(
                        &mut model,
                        &fd.clients[client],
                        &mut opt,
                        epochs,
                        cfg.batch_size,
                        cfg.seed,
                        client,
                        chunk,
                    );
                    model.state_vec()
                })
                .collect();
            let per_client =
                crate::engine::evaluate_clients(fd, &template, |c| per_client_states[c].as_slice());
            history.push(RoundRecord {
                round: ((chunk + 1) * cfg.rounds) / chunks,
                avg_acc: average_accuracy(&per_client),
                cum_mb: 0.0,
            });
        }

        let per_client_acc =
            crate::engine::evaluate_clients(fd, &template, |c| per_client_states[c].as_slice());
        RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(fd.num_clients()),
            total_mb: 0.0,
            faults: crate::faults::FaultTelemetry::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    #[test]
    fn local_has_zero_communication_and_learns_skewed_data() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.2 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 5,
                samples_per_class: 40,
                train_fraction: 0.8,
                seed: 0,
            },
        );
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 8;
        cfg.sample_rate = 0.5;
        let r = LocalOnly::default().run(&fd, &cfg);
        assert_eq!(r.total_mb, 0.0);
        // Clients hold ≤2–3 labels: local training should do far better
        // than the 10-class random baseline.
        assert!(r.final_acc > 0.3, "final acc {}", r.final_acc);
        assert!(!r.history.is_empty());
    }
}
