//! FedDyn (Acar et al. 2021): federated learning with dynamic
//! regularization.
//!
//! The paper's §2.1 cites FedDyn as the dynamic-regularizer answer to
//! client drift. Each client keeps a dual variable `λ_i` (the running sum
//! of its local first-order conditions) and minimises
//!
//! ```text
//! F_i(w) − ⟨λ_i, w⟩ + (α/2)·‖w − θ‖²
//! ```
//!
//! whose gradient contribution is `g − λ_i + α(w − θ)`. After local
//! training the dual update is `λ_i ← λ_i − α(w_i − θ)`, and the server
//! tracks `h ← h − α·mean_{i∈S}(w_i − θ)` to de-bias the new global model
//! `θ⁺ = mean(w_i) − h/α`.
//!
//! Like SCAFFOLD, FedDyn is part of the extended related-work suite, not
//! the paper's main tables.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{average_accuracy, evaluate_clients, init_model, sample_clients};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::loss::cross_entropy;
use fedclust_nn::Model;
use fedclust_tensor::rng::{derive, streams};
use rayon::prelude::*;

/// FedDyn with regularization strength α.
#[derive(Debug, Clone, Copy)]
pub struct FedDyn {
    /// Dynamic-regularizer coefficient α (the paper of FedDyn uses 0.01–0.1).
    pub alpha: f32,
}

impl Default for FedDyn {
    fn default() -> Self {
        FedDyn { alpha: 0.1 }
    }
}

impl FedDyn {
    #[allow(clippy::too_many_arguments)]
    fn local_train(
        &self,
        template: &Model,
        global_params: &[f32],
        global_extra: &[f32],
        lambda_i: &[f32],
        fd: &FederatedDataset,
        cfg: &FlConfig,
        client: usize,
        round: usize,
    ) -> (Vec<f32>, Vec<f32>, f32) {
        let mut model = template.clone();
        let mut state = global_params.to_vec();
        state.extend_from_slice(global_extra);
        model.set_state_vec(&state);
        let data = &fd.clients[client];
        let mut rng = derive(
            cfg.seed,
            &[streams::LOCAL_TRAIN, client as u64, round as u64],
        );
        for _ in 0..cfg.local_epochs {
            for batch in data.train.minibatch_indices(cfg.batch_size, &mut rng) {
                let (x, y) = data.train.batch(&batch);
                let logits = model.forward(x, true);
                let (_, grad) = cross_entropy(&logits, &y);
                model.backward(grad);
                let mut off = 0;
                for p in model.params_mut() {
                    let n = p.value.numel();
                    for j in 0..n {
                        let w = p.value.data()[j];
                        let g = p.grad.data()[j] - lambda_i[off + j]
                            + self.alpha * (w - global_params[off + j]);
                        p.value.data_mut()[j] = w - cfg.lr * g;
                    }
                    p.zero_grad();
                    off += n;
                }
            }
        }
        let full = model.state_vec();
        let n = global_params.len();
        let extra = full[n..].to_vec();
        (full[..n].to_vec(), extra, data.train_samples() as f32)
    }
}

impl FlMethod for FedDyn {
    fn name(&self) -> &'static str {
        "FedDyn"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        run_without_checkpoints(|ckpt| self.run_resumable(fd, cfg, ckpt))
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        let template = init_model(fd, cfg);
        let num_params = template.num_params();
        let state_len = template.state_len();
        let mut state = template.state_vec();
        let mut h = vec![0.0f32; num_params];
        let mut lambdas: Vec<Vec<f32>> = vec![vec![0.0f32; num_params]; fd.num_clients()];
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::FedDyn {
                state: s,
                h: hh,
                lambdas: ls,
            } = cp.state
            else {
                return Err(CheckpointError::WrongState(format!(
                    "FedDyn cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("server state", s.len(), state_len)?;
            check_len("server corrector h", hh.len(), num_params)?;
            check_len("client duals", ls.len(), fd.num_clients())?;
            for l in &ls {
                check_len("client dual", l.len(), num_params)?;
            }
            state = s;
            h = hh;
            lambdas = ls;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            let delivered = transport.broadcast(round, &sampled, state_len);
            let (params, extra) = state.split_at(num_params);
            let trained: Vec<(usize, Vec<f32>, Vec<f32>, f32)> = delivered
                .par_iter()
                .map(|&client| {
                    let (w, ex, weight) = self.local_train(
                        &template,
                        params,
                        extra,
                        &lambdas[client],
                        fd,
                        cfg,
                        client,
                        round,
                    );
                    (client, w, ex, weight)
                })
                .collect();

            // The dual update uses the client-side w and persists whether
            // or not the upload makes it; the server aggregates only the
            // uploads that survive the uplink and the quarantine screen.
            let mut results: Vec<(usize, Vec<f32>, Vec<f32>, f32)> =
                Vec::with_capacity(trained.len());
            for (client, w, ex, weight) in trained {
                for j in 0..num_params {
                    lambdas[client][j] -= self.alpha * (w[j] - state[j]);
                }
                // The payload has the state-vector layout, so a "stale"
                // corruption replays the broadcast global state.
                let mut payload = w;
                payload.extend_from_slice(&ex);
                if transport.uplink(round, client, &mut payload, Some(&state), Some(&state))
                    && transport.screen(&payload, state_len)
                {
                    let ex = payload[num_params..].to_vec();
                    payload.truncate(num_params);
                    results.push((client, payload, ex, weight));
                }
            }
            // An empty survivor set leaves θ, h and the duals as they are;
            // the round still evaluates and checkpoints below.
            if !results.is_empty() {
                // Server state from the surviving uploads.
                let s = results.len() as f64;
                let mut mean_w = vec![0.0f64; num_params];
                for (_, w, _, _) in &results {
                    for j in 0..num_params {
                        mean_w[j] += w[j] as f64 / s;
                    }
                }
                for j in 0..num_params {
                    h[j] -= self.alpha * (mean_w[j] as f32 - state[j]);
                }
                for j in 0..num_params {
                    state[j] = mean_w[j] as f32 - h[j] / self.alpha;
                }
                if state_len > num_params {
                    let items: Vec<(&[f32], f32)> = results
                        .iter()
                        .map(|(_, _, ex, weight)| (ex.as_slice(), *weight))
                        .collect();
                    let avg = crate::engine::weighted_average(&items);
                    state[num_params..].copy_from_slice(&avg);
                }
            }

            if cfg.should_eval(round) {
                let per_client = evaluate_clients(fd, &template, |_| &state[..]);
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::FedDyn {
                    state: state.clone(),
                    h: h.clone(),
                    lambdas: lambdas.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = evaluate_clients(fd, &template, |_| &state[..]);
        Ok(RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(1),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    fn tiny_fd(seed: u64) -> FederatedDataset {
        FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.5 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed,
            },
        )
    }

    #[test]
    fn feddyn_learns_at_fedavg_communication_cost() {
        let fd = tiny_fd(0);
        let mut cfg = FlConfig::tiny(0);
        cfg.rounds = 5;
        let r = FedDyn::default().run(&fd, &cfg);
        assert!(r.final_acc > 0.15, "acc {}", r.final_acc);
        let fedavg = crate::methods::FedAvg.run(&fd, &cfg);
        assert!(
            (r.total_mb - fedavg.total_mb).abs() < 1e-9,
            "FedDyn moves no extra bytes"
        );
    }

    #[test]
    fn feddyn_is_deterministic_and_finite() {
        let fd = tiny_fd(1);
        let cfg = FlConfig::tiny(1);
        let a = FedDyn::default().run(&fd, &cfg);
        let b = FedDyn::default().run(&fd, &cfg);
        assert_eq!(a.per_client_acc, b.per_client_acc);
        assert!(a.final_acc.is_finite());
    }
}
