//! IFCA (Ghosh et al. 2020): iterative federated clustering with a fixed
//! number of cluster models.
//!
//! The server keeps `k` models. Each round it broadcasts **all k models**
//! to every sampled client (the k× downlink cost the paper's Table 5
//! penalises); the client picks the model with the lowest loss on its own
//! training data, trains it, and uploads the result tagged with the chosen
//! cluster. The server averages per cluster.

use crate::checkpoint::{
    check_len, run_without_checkpoints, Checkpoint, CheckpointError, Checkpointer, MethodState,
};
use crate::config::FlConfig;
use crate::engine::{average_accuracy, init_model, local_train, sample_clients, weighted_average};
use crate::faults::Transport;
use crate::methods::FlMethod;
use crate::metrics::{RoundRecord, RunResult};
use fedclust_data::FederatedDataset;
use fedclust_nn::optim::Sgd;
use fedclust_nn::Model;
use fedclust_tensor::rng::{derive, streams};
use rayon::prelude::*;

/// IFCA with `k` cluster models.
#[derive(Debug, Clone, Copy)]
pub struct Ifca {
    /// Number of cluster models (must be fixed in advance — the
    /// inflexibility the paper criticises).
    pub k: usize,
}

impl Default for Ifca {
    fn default() -> Self {
        Ifca { k: 4 }
    }
}

impl Ifca {
    /// Pick the best cluster model for a client by training-set loss.
    pub(crate) fn best_cluster(
        template: &Model,
        states: &[Vec<f32>],
        data: &fedclust_data::ClientData,
    ) -> usize {
        let idx: Vec<usize> = (0..data.train.len()).collect();
        let (x, y) = data.train.batch(&idx);
        let mut best = 0usize;
        let mut best_loss = f32::INFINITY;
        for (ci, state) in states.iter().enumerate() {
            let mut model = template.clone();
            model.set_state_vec(state);
            let (loss, _) = model.evaluate(x.clone(), &y);
            if loss < best_loss {
                best_loss = loss;
                best = ci;
            }
        }
        best
    }
}

impl Ifca {
    /// Run and also return the k trained cluster states, for assigning
    /// unseen clients post-hoc (Table 6).
    pub fn run_detailed(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
    ) -> (RunResult, Vec<Vec<f32>>) {
        run_without_checkpoints(|ckpt| self.run_detailed_resumable(fd, cfg, ckpt))
    }

    /// [`Ifca::run_detailed`] with checkpoint/resume support.
    pub fn run_detailed_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<(RunResult, Vec<Vec<f32>>), CheckpointError> {
        assert!(self.k >= 1, "IFCA needs at least one cluster");
        let template = init_model(fd, cfg);
        let state_len = template.state_len();
        // k independently initialised cluster models (IFCA random inits).
        let mut states: Vec<Vec<f32>> = (0..self.k)
            .map(|ci| {
                let mut rng = derive(cfg.seed, &[streams::MODEL_INIT, 100 + ci as u64]);
                cfg.model
                    .build(fd.channels, fd.height, fd.width, fd.num_classes, &mut rng)
                    .state_vec()
            })
            .collect();
        let mut transport = Transport::new(cfg);
        let mut history = Vec::new();
        let mut start_round = 0;

        if let Some(cp) = ckpt.resume_point(self.name(), cfg.seed)? {
            let MethodState::Ifca { states: ss } = cp.state else {
                return Err(CheckpointError::WrongState(format!(
                    "IFCA cannot resume from a {} checkpoint",
                    cp.state.kind()
                )));
            };
            check_len("cluster models", ss.len(), self.k)?;
            for s in &ss {
                check_len("cluster model", s.len(), state_len)?;
            }
            states = ss;
            start_round = cp.next_round;
            history = cp.history;
            transport.restore_comm_state(cp.meter, cp.telemetry, cp.residuals);
        }

        for round in start_round..cfg.rounds {
            let sampled = sample_clients(fd.num_clients(), cfg, round);
            // All k models go down in one bundle per client.
            let delivered = transport.broadcast(round, &sampled, self.k * state_len);
            let trained: Vec<(usize, usize, Vec<f32>, f32)> = delivered
                .par_iter()
                .map(|&client| {
                    let data = &fd.clients[client];
                    let ci = Self::best_cluster(&template, &states, data);
                    let mut model = template.clone();
                    model.set_state_vec(&states[ci]);
                    let mut opt = Sgd::new(cfg.sgd());
                    local_train(
                        &mut model,
                        data,
                        &mut opt,
                        cfg.local_epochs,
                        cfg.batch_size,
                        cfg.seed,
                        client,
                        round,
                    );
                    (client, ci, model.state_vec(), data.train_samples() as f32)
                })
                .collect();
            let mut updates: Vec<(usize, Vec<f32>, f32)> = Vec::with_capacity(trained.len());
            for (client, ci, mut state, w) in trained {
                // Stale corruption replays the cluster model the client
                // started from (still unaggregated at upload time).
                if transport.uplink(
                    round,
                    client,
                    &mut state,
                    Some(&states[ci]),
                    Some(&states[ci]),
                ) && transport.screen(&state, state_len)
                {
                    updates.push((ci, state, w));
                }
            }
            for (ci, state) in states.iter_mut().enumerate() {
                let items: Vec<(&[f32], f32)> = updates
                    .iter()
                    .filter(|(c, _, _)| *c == ci)
                    .map(|(_, s, w)| (s.as_slice(), *w))
                    .collect();
                if !items.is_empty() {
                    *state = weighted_average(&items);
                }
            }

            if cfg.should_eval(round) {
                let per_client = self.evaluate(fd, &template, &states);
                history.push(RoundRecord {
                    round: round + 1,
                    avg_acc: average_accuracy(&per_client),
                    cum_mb: transport.meter().total_mb(),
                });
            }

            ckpt.on_round_end(round, || Checkpoint {
                method: self.name().to_string(),
                seed: cfg.seed,
                next_round: round + 1,
                meter: transport.meter().clone(),
                telemetry: transport.telemetry(),
                history: history.clone(),
                state: MethodState::Ifca {
                    states: states.clone(),
                },
                residuals: transport.codec_residuals(),
            })?;
        }

        let per_client_acc = self.evaluate(fd, &template, &states);
        let result = RunResult {
            method: self.name().to_string(),
            final_acc: average_accuracy(&per_client_acc),
            per_client_acc,
            history,
            num_clusters: Some(self.k),
            total_mb: transport.meter().total_mb(),
            faults: transport.telemetry(),
        };
        Ok((result, states))
    }
}

impl FlMethod for Ifca {
    fn name(&self) -> &'static str {
        "IFCA"
    }

    fn run(&self, fd: &FederatedDataset, cfg: &FlConfig) -> RunResult {
        self.run_detailed(fd, cfg).0
    }

    fn run_resumable(
        &self,
        fd: &FederatedDataset,
        cfg: &FlConfig,
        ckpt: &mut Checkpointer,
    ) -> Result<RunResult, CheckpointError> {
        Ok(self.run_detailed_resumable(fd, cfg, ckpt)?.0)
    }
}

impl Ifca {
    fn evaluate(&self, fd: &FederatedDataset, template: &Model, states: &[Vec<f32>]) -> Vec<f32> {
        (0..fd.num_clients())
            .into_par_iter()
            .map(|client| {
                let data = &fd.clients[client];
                let ci = Self::best_cluster(template, states, data);
                let mut model = template.clone();
                model.set_state_vec(&states[ci]);
                let test = &data.test;
                if test.is_empty() {
                    return 0.0;
                }
                let idx: Vec<usize> = (0..test.len()).collect();
                let (x, y) = test.batch(&idx);
                model.evaluate(x, &y).1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedclust_data::{DatasetProfile, Partition};

    #[test]
    fn ifca_downlink_is_k_times_fedavg() {
        let fd = FederatedDataset::build(
            DatasetProfile::FmnistLike,
            Partition::LabelSkew { fraction: 0.3 },
            &fedclust_data::federated::FederatedConfig {
                num_clients: 6,
                samples_per_class: 30,
                train_fraction: 0.8,
                seed: 0,
            },
        );
        let cfg = FlConfig::tiny(0);
        let ifca = Ifca { k: 3 }.run(&fd, &cfg);
        let fedavg = crate::methods::FedAvg.run(&fd, &cfg);
        // IFCA total = (k·down + up)·rounds; FedAvg = (down + up)·rounds.
        // With k=3 this is 2× FedAvg.
        let ratio = ifca.total_mb / fedavg.total_mb;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {}", ratio);
        assert_eq!(ifca.num_clusters, Some(3));
    }
}
